#include "serving/server_sim.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "common/random.hh"
#include "stats/summary.hh"

namespace skipsim::serving
{

ServingResult
simulateServing(const LatencyModel &latency, const ServingConfig &config)
{
    if (config.arrivalRatePerSec <= 0.0)
        fatal("simulateServing: arrival rate must be positive");
    if (config.horizonSec <= 0.0)
        fatal("simulateServing: horizon must be positive");
    if (config.maxBatch <= 0)
        fatal("simulateServing: maxBatch must be positive");
    if (config.maxWaitNs < 0.0)
        fatal("simulateServing: maxWaitNs must be non-negative");

    // Poisson arrivals: exponential inter-arrival gaps.
    Rng rng(config.seed);
    double horizon_ns = config.horizonSec * 1e9;
    double mean_gap_ns = 1e9 / config.arrivalRatePerSec;
    std::vector<double> arrivals;
    double t = 0.0;
    while (true) {
        double u = rng.uniform();
        if (u <= 0.0)
            u = 1e-12;
        t += -std::log(u) * mean_gap_ns;
        if (t >= horizon_ns)
            break;
        arrivals.push_back(t);
    }

    ServingResult result;
    if (arrivals.empty())
        return result;

    std::vector<double> latencies;
    double server_free = 0.0;
    double busy_ns = 0.0;
    std::size_t next = 0; // first request not yet dispatched
    stats::Summary batch_sizes;

    while (next < arrivals.size()) {
        double oldest = arrivals[next];

        // Earliest instant the server could start this batch.
        double ready = std::max(server_free, oldest);

        // The batch fills when the maxBatch-th request arrives (if it
        // does); otherwise the oldest request's wait deadline fires.
        double deadline = oldest + config.maxWaitNs;
        std::size_t full_idx =
            next + static_cast<std::size_t>(config.maxBatch) - 1;
        double full_time = full_idx < arrivals.size()
            ? arrivals[full_idx]
            : std::numeric_limits<double>::infinity();

        double dispatch = std::max(ready,
                                   std::min(deadline, full_time));
        if (dispatch > horizon_ns)
            break;

        // Everyone arrived by the dispatch instant rides along.
        std::size_t count = 0;
        while (next + count < arrivals.size() &&
               count < static_cast<std::size_t>(config.maxBatch) &&
               arrivals[next + count] <= dispatch) {
            ++count;
        }
        if (count == 0)
            count = 1; // the oldest request itself

        double exec = latency.latencyNs(static_cast<int>(count));
        double done = dispatch + exec;
        busy_ns += exec;
        batch_sizes.add(static_cast<double>(count));

        for (std::size_t i = 0; i < count; ++i)
            latencies.push_back(done - arrivals[next + i]);

        next += count;
        server_free = done;
    }

    result.completed = latencies.size();
    result.leftInQueue = arrivals.size() - next;
    if (latencies.empty())
        return result;

    result.throughputRps =
        static_cast<double>(result.completed) / config.horizonSec;
    std::vector<double> ps =
        stats::percentiles(latencies, {50.0, 95.0, 99.0});
    result.p50LatencyNs = ps[0];
    result.p95LatencyNs = ps[1];
    result.p99LatencyNs = ps[2];
    // One forward pass serves the whole request: the first token is
    // the completed batch, so TTFT == end-to-end latency (see header).
    result.p50TtftNs = ps[0];
    result.p95TtftNs = ps[1];
    result.p99TtftNs = ps[2];
    stats::Summary lat;
    lat.addAll(latencies);
    result.meanLatencyNs = lat.mean();
    result.meanBatch = batch_sizes.mean();
    result.utilization = std::min(1.0, busy_ns / horizon_ns);
    return result;
}

} // namespace skipsim::serving
