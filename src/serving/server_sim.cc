#include "serving/server_sim.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "core/engine.hh"
#include "obs/collector.hh"
#include "stats/summary.hh"

namespace skipsim::serving
{

namespace
{

/** One dispatched batch, for post-hoc probe replay. */
struct BatchRec
{
    double dispatchNs = 0.0;
    double doneNs = 0.0;
    int count = 0;
};

/**
 * Replay the recorded batches/completions over the collector's
 * deterministic sampling boundaries. Runs after the simulation so the
 * probes cannot perturb it.
 */
void
emitServingObs(obs::Collector &obs, const std::vector<double> &arrivals,
               const std::vector<BatchRec> &batches,
               const std::vector<std::pair<double, double>> &completions,
               double horizon_ns)
{
    obs::Registry &metrics = obs.metrics();
    metrics.counter("serving.requests_offered")
        .add(static_cast<double>(arrivals.size()));
    metrics.counter("serving.requests_completed")
        .add(static_cast<double>(completions.size()));
    metrics.counter("serving.batches")
        .add(static_cast<double>(batches.size()));
    obs::Histogram &lat_hist = metrics.histogram(
        "serving.latency_ms", obs::defaultLatencyBucketsMs());
    for (const auto &completion : completions)
        lat_hist.observe(completion.second / 1e6);

    for (const BatchRec &batch : batches)
        obs.span("batch b=" + std::to_string(batch.count), 0,
                 std::llround(batch.dispatchNs),
                 std::llround(batch.doneNs - batch.dispatchNs));

    // Boundary replay: arrivals, dispatches, and completions are all
    // time-sorted (the server is serial), so one pass suffices.
    obs::Ticker tick = obs.ticker();
    const double window_sec =
        static_cast<double>(obs.intervalNs()) / 1e9;
    std::size_t arr_i = 0;
    std::size_t batch_i = 0;
    std::size_t comp_i = 0;
    long long dispatched = 0;
    // Visit through the first boundary at or past the horizon so the
    // final partial window is represented.
    const double stop =
        horizon_ns + static_cast<double>(obs.intervalNs()) - 1.0;
    tick.advanceTo(stop, [&](std::int64_t t) {
        const double now = static_cast<double>(t);
        while (arr_i < arrivals.size() && arrivals[arr_i] <= now)
            ++arr_i;
        while (batch_i < batches.size() &&
               batches[batch_i].dispatchNs <= now) {
            dispatched += batches[batch_i].count;
            ++batch_i;
        }
        double inflight = 0.0;
        if (batch_i > 0 && batches[batch_i - 1].doneNs > now)
            inflight = static_cast<double>(batches[batch_i - 1].count);

        const std::size_t window_begin = comp_i;
        double window_latency_ns = 0.0;
        while (comp_i < completions.size() &&
               completions[comp_i].first <= now) {
            window_latency_ns += completions[comp_i].second;
            ++comp_i;
        }
        const std::size_t window_count = comp_i - window_begin;

        obs.sample("serving.queue_depth", {}, t,
                   static_cast<double>(arr_i) -
                       static_cast<double>(dispatched));
        obs.sample("serving.batch_inflight", {}, t, inflight);
        obs.sample("serving.throughput_rps", {}, t,
                   static_cast<double>(window_count) / window_sec);
        // TTFT == end-to-end latency for the dynamic batcher (see
        // ServingResult); windowed mean, 0 when the window is empty.
        obs.sample("serving.ttft_ms", {}, t,
                   window_count > 0
                       ? window_latency_ns /
                           static_cast<double>(window_count) / 1e6
                       : 0.0);
    });
}

} // namespace

ServingResult
simulateServing(const LatencyModel &latency, const ServingConfig &config,
                obs::Collector *obs)
{
    if (config.arrivalRatePerSec <= 0.0)
        fatal("simulateServing: arrival rate must be positive");
    if (config.horizonSec <= 0.0)
        fatal("simulateServing: horizon must be positive");
    if (config.maxBatch <= 0)
        fatal("simulateServing: maxBatch must be positive");
    if (config.maxWaitNs < 0.0)
        fatal("simulateServing: maxWaitNs must be non-negative");

    // Poisson arrivals: exponential inter-arrival gaps.
    Rng rng(config.seed);
    double horizon_ns = config.horizonSec * 1e9;
    double mean_gap_ns = 1e9 / config.arrivalRatePerSec;
    std::vector<double> arrivals;
    double t = 0.0;
    while (true) {
        double u = rng.uniform();
        if (u <= 0.0)
            u = 1e-12;
        t += -std::log(u) * mean_gap_ns;
        if (t >= horizon_ns)
            break;
        arrivals.push_back(t);
    }

    ServingResult result;
    std::vector<BatchRec> obs_batches;
    std::vector<std::pair<double, double>> obs_completions;
    if (arrivals.empty()) {
        if (obs != nullptr)
            emitServingObs(*obs, arrivals, obs_batches, obs_completions,
                           horizon_ns);
        return result;
    }

    std::vector<double> latencies;
    double busy_ns = 0.0;
    std::size_t next = 0; // first request not yet dispatched
    bool server_busy = false;
    stats::Summary batch_sizes;

    // Event-driven dynamic batcher on the core engine. A batch
    // dispatches at the first instant the server is free AND either
    // the oldest waiting request's deadline has passed or the batch
    // is full. Three event kinds can create that instant, in
    // tie-break order at equal timestamps: an arrival (may fill the
    // batch), the server coming free, and a wait-deadline wake.
    enum
    {
        PrioArrival = 0,
        PrioServerFree = 1,
        PrioWake = 2,
    };

    core::Engine engine;

    // tryDispatch runs at each candidate instant; dispatch times are
    // monotone, so the first candidate past the horizon means no
    // batch ever dispatches again.
    std::function<void(double)> try_dispatch = [&](double now) {
        if (server_busy || next >= arrivals.size() ||
            now > horizon_ns)
            return;
        double oldest = arrivals[next];
        if (oldest > now)
            return; // nothing waiting yet
        std::size_t full_idx =
            next + static_cast<std::size_t>(config.maxBatch) - 1;
        bool full = full_idx < arrivals.size() &&
            arrivals[full_idx] <= now;
        bool due = now >= oldest + config.maxWaitNs;
        if (!full && !due)
            return;

        // Everyone arrived by the dispatch instant rides along.
        std::size_t count = 0;
        while (next + count < arrivals.size() &&
               count < static_cast<std::size_t>(config.maxBatch) &&
               arrivals[next + count] <= now) {
            ++count;
        }

        double exec = latency.latencyNs(static_cast<int>(count));
        double done = now + exec;
        busy_ns += exec;
        batch_sizes.add(static_cast<double>(count));

        for (std::size_t i = 0; i < count; ++i) {
            latencies.push_back(done - arrivals[next + i]);
            if (obs != nullptr)
                obs_completions.emplace_back(done,
                                             done - arrivals[next + i]);
        }
        if (obs != nullptr)
            obs_batches.push_back({now, done,
                                   static_cast<int>(count)});

        next += count;
        server_busy = true;
        engine.at(done, PrioServerFree, [&](double t) {
            server_busy = false;
            try_dispatch(t);
        });
    };

    for (double arrival : arrivals) {
        engine.at(arrival, PrioArrival, try_dispatch);
        // The wake fires when this request, as the oldest waiting one,
        // has waited out the batching window.
        engine.at(arrival + config.maxWaitNs, PrioWake, try_dispatch);
    }
    engine.run();

    if (obs != nullptr)
        emitServingObs(*obs, arrivals, obs_batches, obs_completions,
                       horizon_ns);

    result.completed = latencies.size();
    result.leftInQueue = arrivals.size() - next;
    if (latencies.empty())
        return result;

    result.throughputRps =
        static_cast<double>(result.completed) / config.horizonSec;
    std::vector<double> ps =
        stats::percentiles(latencies, {50.0, 95.0, 99.0});
    result.p50LatencyNs = ps[0];
    result.p95LatencyNs = ps[1];
    result.p99LatencyNs = ps[2];
    // One forward pass serves the whole request: the first token is
    // the completed batch, so TTFT == end-to-end latency (see header).
    result.p50TtftNs = ps[0];
    result.p95TtftNs = ps[1];
    result.p99TtftNs = ps[2];
    stats::Summary lat;
    lat.addAll(latencies);
    result.meanLatencyNs = lat.mean();
    result.meanBatch = batch_sizes.mean();
    result.utilization = std::min(1.0, busy_ns / horizon_ns);
    return result;
}

} // namespace skipsim::serving
