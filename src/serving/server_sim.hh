/**
 * @file
 * Request-level serving simulation: Poisson arrivals into a dynamic
 * batching queue in front of one model instance. Connects the paper's
 * per-batch latency characterization to the user-visible quantities a
 * serving operator cares about — p50/p99 request latency (queueing +
 * batching delay + execution) and sustained throughput — under a
 * Triton-style "max batch + max wait" batching policy.
 */

#ifndef SKIPSIM_SERVING_SERVER_SIM_HH
#define SKIPSIM_SERVING_SERVER_SIM_HH

#include <cstdint>
#include <vector>

#include "serving/latency_model.hh"

namespace skipsim::obs
{
class Collector;
}

namespace skipsim::serving
{

/**
 * Dynamic-batching server configuration.
 *
 * @deprecated Thin compatibility carrier. New code should build an
 * exec::RunSpec (options "rate", "horizon-sec", "max-batch",
 * "max-wait-ms"; the arrival seed comes from RunSpec::seed()) and
 * convert with RunSpec::servingConfig(); this struct stays so
 * out-of-tree callers keep compiling.
 */
struct ServingConfig
{
    /** Mean Poisson arrival rate, requests per second. */
    double arrivalRatePerSec = 50.0;

    /** Simulated horizon, seconds. */
    double horizonSec = 20.0;

    /** Largest batch the server forms. */
    int maxBatch = 32;

    /**
     * Longest a pending request may wait for batch-mates before the
     * batch dispatches anyway, ns.
     */
    double maxWaitNs = 5e6;

    /** Arrival-process seed (deterministic given the seed). */
    std::uint64_t seed = 42;
};

/** Outcome of a serving simulation. */
struct ServingResult
{
    /** Requests completed within the horizon. */
    std::size_t completed = 0;

    /** Completed requests per second of simulated time. */
    double throughputRps = 0.0;

    /** Request latency percentiles (arrival to batch completion), ns. */
    double p50LatencyNs = 0.0;
    double p95LatencyNs = 0.0;
    double p99LatencyNs = 0.0;
    double meanLatencyNs = 0.0;

    /**
     * Time-to-first-token percentiles (arrival to first decode step),
     * ns. The dynamic batcher serves a request with one forward pass,
     * so its first token appears when the batch completes and TTFT
     * equals end-to-end latency here; the fields exist so
     * single-instance and cluster reports share one latency
     * vocabulary (cluster::ClusterResult separates the two).
     */
    double p50TtftNs = 0.0;
    double p95TtftNs = 0.0;
    double p99TtftNs = 0.0;

    /** Mean dispatched batch size. */
    double meanBatch = 0.0;

    /** Fraction of the horizon the model instance was busy. */
    double utilization = 0.0;

    /** Requests still queued when the horizon ended (overload sign). */
    std::size_t leftInQueue = 0;
};

/**
 * Simulate a dynamic-batching server against a latency model.
 *
 * Policy: when the server is free and requests are pending, the batch
 * dispatches as soon as either maxBatch requests have arrived or the
 * oldest pending request has waited maxWaitNs; the batch contains
 * every request arrived by the dispatch instant (capped at maxBatch).
 *
 * When @p obs is non-null the simulation additionally records probes
 * into it: per-batch duration spans, boundary samples of
 * serving.queue_depth / serving.batch_inflight and windowed
 * serving.throughput_rps / serving.ttft_ms, plus registry totals
 * (serving.requests_offered/completed, serving.batches) and a
 * serving.latency_ms histogram. Probes never perturb the result.
 *
 * @throws skipsim::FatalError on non-positive rate/horizon/batch.
 */
ServingResult simulateServing(const LatencyModel &latency,
                              const ServingConfig &config,
                              obs::Collector *obs = nullptr);

} // namespace skipsim::serving

#endif // SKIPSIM_SERVING_SERVER_SIM_HH
