#include "sim/simulator.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"

namespace skipsim::sim
{

namespace
{

/** Internal execution state for one run. */
class Runner
{
  public:
    Runner(const hw::Platform &platform, const SimOptions &opts)
        : p(platform), o(opts), rng(opts.seed)
    {}

    SimResult
    run(const workload::OperatorGraph &graph)
    {
        for (const auto &root : graph.roots)
            execOp(root);
        deviceSynchronize();

        SimResult result;
        result.wallNs = static_cast<double>(std::max(cpuNow, streamFree));
        result.numKernels = numKernels;
        result.gpuBusyNs = gpuBusy;
        result.trace = std::move(out);
        result.trace.setMeta("platform", p.name);
        result.trace.sortByTime();
        return result;
    }

  private:
    const hw::Platform &p;
    const SimOptions &o;
    Rng rng;

    trace::Trace out;
    std::int64_t cpuNow = 0;
    std::int64_t streamFree = 0;
    bool streamUsed = false;
    std::uint64_t nextCorrelation = 1;
    std::size_t numKernels = 0;
    double gpuBusy = 0.0;

    /** Jittered duration: multiplicative noise, clamped near 1. */
    std::int64_t
    jitterNs(double ns)
    {
        if (ns <= 0.0)
            return 0;
        if (!o.jitter)
            return static_cast<std::int64_t>(std::llround(ns));
        double mult = rng.gaussian(1.0, o.jitterFrac);
        mult = std::clamp(mult, 1.0 - 4.0 * o.jitterFrac,
                          1.0 + 4.0 * o.jitterFrac);
        return static_cast<std::int64_t>(std::llround(ns * mult));
    }

    void
    execOp(const workload::OpNode &node)
    {
        trace::TraceEvent op;
        op.kind = trace::EventKind::Operator;
        op.name = node.name;
        op.tid = o.threadId;
        op.tsBeginNs = cpuNow;

        double total_cpu = p.cpuOpNs(node.cpuNs);
        double pre = total_cpu * node.preFraction;
        double post = total_cpu - pre;

        cpuNow += jitterNs(pre);
        for (const auto &child : node.children)
            execOp(child);
        for (const auto &launch : node.launches)
            execLaunch(launch);
        cpuNow += jitterNs(post);

        op.durNs = cpuNow - op.tsBeginNs;
        out.add(std::move(op));
    }

    /**
     * Start time for the next kernel: the launch-to-start latency on
     * an idle stream, or the previous kernel's end plus the GPU's
     * inter-kernel scheduling gap when the stream is backed up.
     */
    std::int64_t
    kernelStart(std::int64_t launch_begin)
    {
        std::int64_t earliest =
            launch_begin + jitterNs(p.cpu.launchOverheadNs);
        std::int64_t queued = streamUsed
            ? streamFree + jitterNs(p.gpu.interKernelGapNs)
            : 0;
        return std::max(earliest, queued);
    }

    /**
     * Jitter for a (possibly fused) kernel: a fused kernel's duration
     * is a sum of n independent component durations, so its relative
     * noise shrinks with sqrt(n).
     */
    std::int64_t
    jitterComponentsNs(double ns, std::size_t components)
    {
        if (!o.jitter || components <= 1)
            return jitterNs(ns);
        double frac =
            o.jitterFrac / std::sqrt(static_cast<double>(components));
        double mult = rng.gaussian(1.0, frac);
        mult = std::clamp(mult, 1.0 - 4.0 * frac, 1.0 + 4.0 * frac);
        return static_cast<std::int64_t>(std::llround(ns * mult));
    }

    void
    execLaunch(const workload::KernelLaunch &launch)
    {
        if (launch.isMemcpy) {
            execMemcpy(launch);
            return;
        }

        std::uint64_t corr = nextCorrelation++;

        trace::TraceEvent rt;
        rt.kind = trace::EventKind::Runtime;
        rt.name = "cudaLaunchKernel";
        rt.tid = o.threadId;
        rt.correlationId = corr;
        rt.tsBeginNs = cpuNow;
        rt.durNs = jitterNs(p.cpu.launchCpuNs);
        cpuNow += rt.durNs;

        std::int64_t start = kernelStart(rt.tsBeginNs);

        trace::TraceEvent k;
        k.kind = trace::EventKind::Kernel;
        k.name = launch.kernelName;
        k.tid = o.threadId;
        k.streamId = o.streamId;
        k.correlationId = corr;
        k.tsBeginNs = start;
        k.durNs = jitterComponentsNs(
            hw::kernelDurationNs(p.gpu, launch.work),
            launch.work.size());
        k.flops = launch.totalFlops();
        k.bytes = launch.totalBytes();
        streamFree = k.tsEndNs();
        streamUsed = true;
        gpuBusy += static_cast<double>(k.durNs);
        ++numKernels;

        out.add(std::move(rt));
        out.add(std::move(k));
    }

    void
    execMemcpy(const workload::KernelLaunch &launch)
    {
        // Unified-memory platforms (CC/TC) access host data in place:
        // no staging copy is issued at all.
        if (p.unifiedMemory)
            return;

        std::uint64_t corr = nextCorrelation++;

        trace::TraceEvent rt;
        rt.kind = trace::EventKind::Runtime;
        rt.name = "cudaMemcpyAsync";
        rt.tid = o.threadId;
        rt.correlationId = corr;
        rt.tsBeginNs = cpuNow;
        rt.durNs = jitterNs(p.cpu.launchCpuNs);
        cpuNow += rt.durNs;

        std::int64_t start = kernelStart(rt.tsBeginNs);

        trace::TraceEvent mc;
        mc.kind = trace::EventKind::Memcpy;
        mc.name = "Memcpy HtoD";
        mc.tid = o.threadId;
        mc.streamId = o.streamId;
        mc.correlationId = corr;
        mc.tsBeginNs = start;
        mc.durNs = jitterNs(p.transferNs(launch.totalBytes()));
        mc.bytes = launch.totalBytes();
        streamFree = mc.tsEndNs();
        streamUsed = true;

        out.add(std::move(rt));
        out.add(std::move(mc));
    }

    void
    deviceSynchronize()
    {
        trace::TraceEvent rt;
        rt.kind = trace::EventKind::Runtime;
        rt.name = "cudaDeviceSynchronize";
        rt.tid = o.threadId;
        rt.tsBeginNs = cpuNow;

        std::int64_t call = jitterNs(p.cpu.syncCallNs);
        std::int64_t done = std::max(cpuNow + call, streamFree + call);
        rt.durNs = done - cpuNow;
        cpuNow = done;
        out.add(std::move(rt));
    }
};

} // namespace

Simulator::Simulator(const hw::Platform &platform, SimOptions opts)
    : _platform(platform), _opts(opts)
{
    if (_opts.jitterFrac < 0.0 || _opts.jitterFrac > 0.25)
        fatal("Simulator: jitterFrac must be within [0, 0.25]");
}

SimResult
Simulator::run(const workload::OperatorGraph &graph)
{
    Runner runner(_platform, _opts);
    return runner.run(graph);
}

} // namespace skipsim::sim
