#include "sim/simulator.hh"

#include <algorithm>

#include "common/jitter.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "core/clock.hh"
#include "core/engine.hh"
#include "core/resource.hh"

namespace skipsim::sim
{

namespace
{

/**
 * Internal execution state for one run: a two-resource process pair on
 * the core engine. The CPU dispatch thread is a synchronous process
 * advancing a core::Clock (it never blocks mid-walk, so it needs no
 * scheduled events of its own); the GPU stream is a core::FifoResource
 * whose kernel completions are events on the core::EventQueue, drained
 * at cudaDeviceSynchronize like a real in-order stream. The
 * (time, priority, seq) queue order is exactly kernel issue order
 * here, so the port preserves the pre-core trace byte-for-byte.
 */
class Runner
{
  public:
    Runner(const hw::Platform &platform, const SimOptions &opts)
        : p(platform), o(opts), rng(opts.seed)
    {}

    SimResult
    run(const workload::OperatorGraph &graph)
    {
        for (const auto &root : graph.roots)
            execOp(root);
        deviceSynchronize();

        SimResult result;
        result.wallNs = std::max(cpu.nowNs(), stream.freeNs());
        result.numKernels = numKernels;
        result.gpuBusyNs = gpuBusy;
        result.trace = std::move(out);
        result.trace.setMeta("platform", p.name);
        result.trace.sortByTime();
        return result;
    }

  private:
    const hw::Platform &p;
    const SimOptions &o;
    Rng rng;

    core::Engine engine;       ///< carries GPU completion events
    core::Clock cpu;           ///< CPU dispatch-thread cursor
    core::FifoResource stream; ///< in-order GPU stream

    trace::Trace out;
    std::uint64_t nextCorrelation = 1;
    std::size_t numKernels = 0;
    double gpuBusy = 0.0;

    /** CPU cursor as integer ns (exact: only integer ns are added). */
    std::int64_t
    cpuNowI() const
    {
        return static_cast<std::int64_t>(cpu.nowNs());
    }

    /** Jittered duration on the run's RNG stream. */
    std::int64_t
    jitter(double ns)
    {
        return jitterNs(rng, ns, o.jitterFrac, o.jitter);
    }

    void
    execOp(const workload::OpNode &node)
    {
        trace::TraceEvent op;
        op.kind = trace::EventKind::Operator;
        op.name = node.name;
        op.tid = o.threadId;
        op.tsBeginNs = cpuNowI();

        double total_cpu = p.cpuOpNs(node.cpuNs);
        double pre = total_cpu * node.preFraction;
        double post = total_cpu - pre;

        cpu.advanceBy(static_cast<double>(jitter(pre)));
        for (const auto &child : node.children)
            execOp(child);
        for (const auto &launch : node.launches)
            execLaunch(launch);
        cpu.advanceBy(static_cast<double>(jitter(post)));

        op.durNs = cpuNowI() - op.tsBeginNs;
        out.add(std::move(op));
    }

    /**
     * Start time for the next kernel: the launch-to-start latency on
     * an idle stream, or the previous kernel's end plus the GPU's
     * inter-kernel scheduling gap when the stream is backed up — the
     * observed launch-to-start latency t_l stretches into queuing
     * time, exactly what TKLQT accumulates.
     */
    std::int64_t
    kernelStart(std::int64_t launch_begin)
    {
        double earliest = static_cast<double>(
            launch_begin + jitter(p.cpu.launchOverheadNs));
        // The gap draw happens only on a backed-up stream, as before.
        double gap = stream.everUsed()
            ? static_cast<double>(jitter(p.gpu.interKernelGapNs))
            : 0.0;
        return static_cast<std::int64_t>(stream.startFor(earliest, gap));
    }

    void
    execLaunch(const workload::KernelLaunch &launch)
    {
        if (launch.isMemcpy) {
            execMemcpy(launch);
            return;
        }

        std::uint64_t corr = nextCorrelation++;

        trace::TraceEvent rt;
        rt.kind = trace::EventKind::Runtime;
        rt.name = "cudaLaunchKernel";
        rt.tid = o.threadId;
        rt.correlationId = corr;
        rt.tsBeginNs = cpuNowI();
        rt.durNs = jitter(p.cpu.launchCpuNs);
        cpu.advanceBy(static_cast<double>(rt.durNs));

        std::int64_t start = kernelStart(rt.tsBeginNs);

        trace::TraceEvent k;
        k.kind = trace::EventKind::Kernel;
        k.name = launch.kernelName;
        k.tid = o.threadId;
        k.streamId = o.streamId;
        k.correlationId = corr;
        k.tsBeginNs = start;
        k.durNs = jitterComponentsNs(
            rng, hw::kernelDurationNs(p.gpu, launch.work), o.jitterFrac,
            o.jitter, launch.work.size());
        k.flops = launch.totalFlops();
        k.bytes = launch.totalBytes();
        stream.occupyUntil(static_cast<double>(k.tsEndNs()));
        // The stream-process half: the kernel's completion is an event
        // on the core queue, applied when the stream drains.
        engine.at(static_cast<double>(k.tsEndNs()), 0,
                  [this, dur = k.durNs](double) {
                      gpuBusy += static_cast<double>(dur);
                      ++numKernels;
                  });

        out.add(std::move(rt));
        out.add(std::move(k));
    }

    void
    execMemcpy(const workload::KernelLaunch &launch)
    {
        // Unified-memory platforms (CC/TC) access host data in place:
        // no staging copy is issued at all.
        if (p.unifiedMemory)
            return;

        std::uint64_t corr = nextCorrelation++;

        trace::TraceEvent rt;
        rt.kind = trace::EventKind::Runtime;
        rt.name = "cudaMemcpyAsync";
        rt.tid = o.threadId;
        rt.correlationId = corr;
        rt.tsBeginNs = cpuNowI();
        rt.durNs = jitter(p.cpu.launchCpuNs);
        cpu.advanceBy(static_cast<double>(rt.durNs));

        std::int64_t start = kernelStart(rt.tsBeginNs);

        trace::TraceEvent mc;
        mc.kind = trace::EventKind::Memcpy;
        mc.name = "Memcpy HtoD";
        mc.tid = o.threadId;
        mc.streamId = o.streamId;
        mc.correlationId = corr;
        mc.tsBeginNs = start;
        mc.durNs = jitter(p.transferNs(launch.totalBytes()));
        mc.bytes = launch.totalBytes();
        stream.occupyUntil(static_cast<double>(mc.tsEndNs()));
        // Copies occupy the stream but are not kernels: the completion
        // event carries no counter updates.
        engine.at(static_cast<double>(mc.tsEndNs()), 0, nullptr);

        out.add(std::move(rt));
        out.add(std::move(mc));
    }

    void
    deviceSynchronize()
    {
        // Drain the stream process: every outstanding completion event
        // applies before the synchronize returns.
        engine.run();

        trace::TraceEvent rt;
        rt.kind = trace::EventKind::Runtime;
        rt.name = "cudaDeviceSynchronize";
        rt.tid = o.threadId;
        rt.tsBeginNs = cpuNowI();

        double call = static_cast<double>(jitter(p.cpu.syncCallNs));
        double done =
            std::max(cpu.nowNs() + call, stream.freeNs() + call);
        rt.durNs = static_cast<std::int64_t>(done) - rt.tsBeginNs;
        cpu.advanceTo(done);
        out.add(std::move(rt));
    }
};

} // namespace

Simulator::Simulator(const hw::Platform &platform, SimOptions opts)
    : _platform(platform), _opts(opts)
{
    if (_opts.jitterFrac < 0.0 || _opts.jitterFrac > 0.25)
        fatal("Simulator: jitterFrac must be within [0, 0.25]");
}

SimResult
Simulator::run(const workload::OperatorGraph &graph)
{
    Runner runner(_platform, _opts);
    return runner.run(graph);
}

} // namespace skipsim::sim
