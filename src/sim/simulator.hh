/**
 * @file
 * Discrete-event execution simulator. Replays an operator graph on a
 * platform model the way single-threaded PyTorch eager dispatch does:
 * the CPU thread walks the operator tree depth-first, paying framework
 * dispatch cost per operator (scaled by the platform's single-thread
 * speed), issuing cudaLaunchKernel calls that enqueue kernels into an
 * in-order GPU stream. Kernels start after the launch-to-start latency
 * and after the stream drains (queuing). The run ends with a device
 * synchronize. The output is a Kineto-style Trace, the same artifact a
 * real PyTorch Profiler session would produce, which SKIP then
 * analyzes (Fig. 4 of the paper shows exactly this timing structure).
 */

#ifndef SKIPSIM_SIM_SIMULATOR_HH
#define SKIPSIM_SIM_SIMULATOR_HH

#include <cstdint>

#include "hw/platform.hh"
#include "trace/trace.hh"
#include "workload/op_graph.hh"

namespace skipsim::sim
{

/**
 * Knobs of one simulation run.
 *
 * @deprecated as a public entry-point currency: new code should build
 * an exec::RunSpec and convert with RunSpec::simOptions(), so seeds
 * and jitter settings follow the one project-wide convention. The
 * struct itself remains the simulator's internal knob carrier (and
 * keeps out-of-tree callers compiling).
 */
struct SimOptions
{
    /** PRNG seed for timing jitter; same seed -> identical trace. */
    std::uint64_t seed = 42;

    /**
     * Apply multiplicative timing jitter. Off by default so that an
     * identical configuration always yields an identical trace; noisy
     * runs are an explicit opt-in (e.g. for calibration-robustness
     * studies), not something a caller has to remember to disable.
     */
    bool jitter = false;

    /** Relative jitter magnitude (stddev of the multiplier). */
    double jitterFrac = 0.02;

    /** CUDA stream id recorded in the trace. */
    int streamId = 7;

    /** CPU thread id recorded in the trace. */
    int threadId = 1;
};

/** Result of a simulation run. */
struct SimResult
{
    trace::Trace trace;

    /** End-to-end simulated wall time (to sync completion), ns. */
    double wallNs = 0.0;

    /** Kernels executed (excluding memcpys). */
    std::size_t numKernels = 0;

    /** Total GPU busy time (kernel execution), ns. */
    double gpuBusyNs = 0.0;
};

/**
 * Executes operator graphs on a platform model.
 *
 * Timing semantics per kernel launch (paper Fig. 4):
 *  - the CPU is busy for the launch call (CpuModel::launchCpuNs);
 *  - the kernel may start launchOverheadNs after the call began, on an
 *    idle stream (the Table V nullKernel anchor);
 *  - on a busy stream it starts when the previous kernel finishes, so
 *    the observed launch-to-start latency t_l stretches into queuing
 *    time — exactly what TKLQT accumulates.
 */
class Simulator
{
  public:
    explicit Simulator(const hw::Platform &platform, SimOptions opts = {});

    /**
     * Run one forward pass.
     * @param graph the operator graph to execute.
     * @return the trace and summary timings.
     */
    SimResult run(const workload::OperatorGraph &graph);

    const hw::Platform &platform() const { return _platform; }

  private:
    hw::Platform _platform;
    SimOptions _opts;
};

} // namespace skipsim::sim

#endif // SKIPSIM_SIM_SIMULATOR_HH
