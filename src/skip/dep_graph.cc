#include "skip/dep_graph.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace skipsim::skip
{

DependencyGraph
DependencyGraph::build(trace::Trace trace)
{
    DependencyGraph g;
    trace.sortByTime();
    g._trace = std::move(trace);

    const auto &events = g._trace.events();
    std::size_t max_id = 0;
    for (const auto &ev : events)
        max_id = std::max<std::size_t>(max_id, ev.id);
    g._parents.assign(max_id + 1, std::nullopt);
    g._children.assign(max_id + 1, {});

    // --- CPU containment per thread -------------------------------
    // Events are processed in (begin asc, end desc) order so that a
    // parent precedes children sharing its begin timestamp.
    std::vector<const trace::TraceEvent *> cpu_events;
    for (const auto &ev : events) {
        if (ev.onCpu())
            cpu_events.push_back(&ev);
    }
    std::stable_sort(cpu_events.begin(), cpu_events.end(),
                     [](const trace::TraceEvent *a,
                        const trace::TraceEvent *b) {
                         if (a->tsBeginNs != b->tsBeginNs)
                             return a->tsBeginNs < b->tsBeginNs;
                         return a->tsEndNs() > b->tsEndNs();
                     });

    std::map<int, std::vector<const trace::TraceEvent *>> stacks;
    for (const auto *ev : cpu_events) {
        auto &stack = stacks[ev->tid];
        while (!stack.empty() && stack.back()->tsEndNs() <= ev->tsBeginNs)
            stack.pop_back();
        if (!stack.empty() && ev->tsEndNs() <= stack.back()->tsEndNs()) {
            g._parents[ev->id] = stack.back()->id;
            g._children[stack.back()->id].push_back(ev->id);
        }
        stack.push_back(ev);

        if (!g._parents[ev->id] &&
            ev->kind == trace::EventKind::Operator) {
            g._rootOps.push_back(ev->id);
        }
    }

    // --- Kernel linkage via correlation ids -----------------------
    std::map<std::uint64_t, const trace::TraceEvent *> launches;
    for (const auto &ev : events) {
        if (ev.kind == trace::EventKind::Runtime && ev.correlationId != 0)
            launches[ev.correlationId] = &ev;
    }

    for (const auto &ev : events) {
        if (!ev.onGpu())
            continue;
        auto it = launches.find(ev.correlationId);
        if (it == launches.end()) {
            fatal(strprintf(
                "dependency graph: kernel '%s' (id %llu) has no runtime "
                "launch with correlation id %llu",
                ev.name.c_str(),
                static_cast<unsigned long long>(ev.id),
                static_cast<unsigned long long>(ev.correlationId)));
        }
        KernelLink link;
        link.kernelId = ev.id;
        link.runtimeId = it->second->id;
        link.launchToStartNs = ev.tsBeginNs - it->second->tsBeginNs;
        if (auto parent = g._parents[it->second->id]) {
            link.leafOpId = parent;
            link.rootOpId = g.rootAncestorOf(*parent);
        }
        g._kernels.push_back(link);
    }

    // Stream (execution) order.
    std::stable_sort(g._kernels.begin(), g._kernels.end(),
                     [&](const KernelLink &a, const KernelLink &b) {
                         return g._trace.byId(a.kernelId).tsBeginNs <
                             g._trace.byId(b.kernelId).tsBeginNs;
                     });
    return g;
}

std::optional<std::uint64_t>
DependencyGraph::parentOf(std::uint64_t id) const
{
    if (id >= _parents.size())
        fatal("DependencyGraph::parentOf: unknown event id");
    return _parents[id];
}

const std::vector<std::uint64_t> &
DependencyGraph::childrenOf(std::uint64_t id) const
{
    if (id >= _children.size())
        fatal("DependencyGraph::childrenOf: unknown event id");
    return _children[id];
}

std::uint64_t
DependencyGraph::rootAncestorOf(std::uint64_t id) const
{
    std::uint64_t cur = id;
    while (auto parent = parentOf(cur))
        cur = *parent;
    return cur;
}

std::vector<KernelLink>
DependencyGraph::computeKernelsOnly() const
{
    std::vector<KernelLink> out;
    for (const auto &link : _kernels) {
        if (_trace.byId(link.kernelId).kind == trace::EventKind::Kernel)
            out.push_back(link);
    }
    return out;
}

} // namespace skipsim::skip
