/**
 * @file
 * SKIP's operator-kernel dependency graph (paper Sec. IV-A). From a
 * timestamped trace it derives:
 *  - CPU parent/child operator relationships by interval containment
 *    per thread ("an ATen operator p is designated the parent of a
 *    subsequent child operator c and/or CUDA runtime call l if their
 *    start times fall within p's duration");
 *  - launch-to-kernel links via CUDA correlation IDs.
 */

#ifndef SKIPSIM_SKIP_DEP_GRAPH_HH
#define SKIPSIM_SKIP_DEP_GRAPH_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "trace/trace.hh"

namespace skipsim::skip
{

/** One kernel with its resolved launch chain. */
struct KernelLink
{
    /** The GPU kernel (or memcpy) event id. */
    std::uint64_t kernelId = 0;

    /** The cudaLaunchKernel / cudaMemcpyAsync runtime event id. */
    std::uint64_t runtimeId = 0;

    /** The operator that directly performed the launch (if any). */
    std::optional<std::uint64_t> leafOpId;

    /** The top-level (root) ATen operator the launch belongs to. */
    std::optional<std::uint64_t> rootOpId;

    /**
     * Launch-to-start latency t_l = ts_b(kernel) - ts_b(launch), ns
     * (paper Eq. 1): launch call cost + driver overhead, stretched by
     * queuing when the stream is busy.
     */
    std::int64_t launchToStartNs = 0;
};

/**
 * The dependency graph over one trace. Owns a time-sorted copy of the
 * trace; all ids refer to TraceEvent::id.
 */
class DependencyGraph
{
  public:
    /**
     * Build the graph from a trace.
     * @throws skipsim::FatalError when a GPU event's correlation id
     *         cannot be resolved to a runtime call.
     */
    static DependencyGraph build(trace::Trace trace);

    const trace::Trace &trace() const { return _trace; }

    /** Containment parent of a CPU event (nullopt for roots). */
    std::optional<std::uint64_t> parentOf(std::uint64_t id) const;

    /** Direct children of a CPU event. */
    const std::vector<std::uint64_t> &childrenOf(std::uint64_t id) const;

    /** Topmost ancestor of a CPU event (itself when already a root). */
    std::uint64_t rootAncestorOf(std::uint64_t id) const;

    /** Ids of top-level CPU operator events, in time order. */
    const std::vector<std::uint64_t> &rootOps() const { return _rootOps; }

    /** Kernel links in GPU execution (stream) order. */
    const std::vector<KernelLink> &kernels() const { return _kernels; }

    /** Kernel links excluding memcpys, in stream order. */
    std::vector<KernelLink> computeKernelsOnly() const;

  private:
    DependencyGraph() = default;

    trace::Trace _trace;
    std::vector<std::optional<std::uint64_t>> _parents;
    std::vector<std::vector<std::uint64_t>> _children;
    std::vector<std::uint64_t> _rootOps;
    std::vector<KernelLink> _kernels;
};

} // namespace skipsim::skip

#endif // SKIPSIM_SKIP_DEP_GRAPH_HH
