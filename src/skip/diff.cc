#include "skip/diff.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "common/table.hh"

namespace skipsim::skip
{

RunDiff
diffRuns(const MetricsReport &before, const MetricsReport &after)
{
    if (after.ilNs <= 0.0)
        fatal("diffRuns: candidate run has no inference latency");

    RunDiff diff;
    diff.ilDeltaNs = after.ilNs - before.ilNs;
    diff.tklqtDeltaNs = after.tklqtNs - before.tklqtNs;
    diff.kernelCountDelta = static_cast<long>(after.numKernels) -
        static_cast<long>(before.numKernels);
    diff.gpuBusyDeltaNs = after.gpuBusyNs - before.gpuBusyNs;
    diff.speedup = before.ilNs / after.ilNs;

    std::map<std::string, KernelDelta> deltas;
    for (const auto &stat : before.byKernel) {
        KernelDelta &d = deltas[stat.name];
        d.name = stat.name;
        d.countBefore = stat.count;
        d.durBeforeNs = stat.totalDurNs;
    }
    for (const auto &stat : after.byKernel) {
        KernelDelta &d = deltas[stat.name];
        d.name = stat.name;
        d.countAfter = stat.count;
        d.durAfterNs = stat.totalDurNs;
    }

    diff.byKernel.reserve(deltas.size());
    for (auto &[name, d] : deltas) {
        (void)name;
        diff.byKernel.push_back(d);
    }
    std::stable_sort(diff.byKernel.begin(), diff.byKernel.end(),
                     [](const KernelDelta &a, const KernelDelta &b) {
                         return std::abs(a.durDeltaNs()) >
                             std::abs(b.durDeltaNs());
                     });
    return diff;
}

std::string
RunDiff::render(std::size_t max_rows) const
{
    std::string out = strprintf(
        "Run diff: IL %+0.3f ms (%.2fx), TKLQT %+0.3f ms, "
        "kernels %+ld, GPU busy %+0.3f ms\n",
        ilDeltaNs / 1e6, speedup, tklqtDeltaNs / 1e6,
        kernelCountDelta, gpuBusyDeltaNs / 1e6);

    TextTable table;
    table.setHeader({"Kernel", "count", "", "time before", "after",
                     "delta"});
    std::size_t rows = 0;
    for (const auto &d : byKernel) {
        if (rows++ >= max_rows)
            break;
        table.addRow({d.name,
                      strprintf("%zu->%zu", d.countBefore,
                                d.countAfter),
                      d.countAfter > d.countBefore
                          ? "+"
                          : (d.countAfter < d.countBefore ? "-" : "="),
                      formatNs(d.durBeforeNs),
                      formatNs(d.durAfterNs),
                      strprintf("%+0.1f us", d.durDeltaNs() / 1e3)});
    }
    out += table.render();
    return out;
}

} // namespace skipsim::skip
