/**
 * @file
 * Run comparison: diff two profiled runs (e.g. eager vs
 * FlashAttention2, or the same model on two platforms) at the
 * kernel-name level — count/duration/launch-overhead deltas plus the
 * headline metric movements. The "what changed" question every
 * optimization loop asks.
 */

#ifndef SKIPSIM_SKIP_DIFF_HH
#define SKIPSIM_SKIP_DIFF_HH

#include <string>
#include <vector>

#include "skip/metrics.hh"

namespace skipsim::skip
{

/** Per-kernel-name delta between two runs. */
struct KernelDelta
{
    std::string name;

    /** Launch counts in the baseline and candidate runs. */
    std::size_t countBefore = 0;
    std::size_t countAfter = 0;

    /** Total execution time in each run, ns. */
    double durBeforeNs = 0.0;
    double durAfterNs = 0.0;

    /** durAfter - durBefore: negative means time saved. */
    double durDeltaNs() const { return durAfterNs - durBeforeNs; }
};

/** Complete diff between a baseline and a candidate run. */
struct RunDiff
{
    /** IL delta (after - before), ns; negative = faster. */
    double ilDeltaNs = 0.0;

    /** TKLQT delta, ns. */
    double tklqtDeltaNs = 0.0;

    /** Kernel-count delta (launch savings show up negative). */
    long kernelCountDelta = 0;

    /** GPU busy delta, ns. */
    double gpuBusyDeltaNs = 0.0;

    /** End-to-end speedup (before / after). */
    double speedup = 1.0;

    /**
     * Per-kernel deltas sorted by |duration delta| descending;
     * kernels present in only one run appear with zero on the other
     * side.
     */
    std::vector<KernelDelta> byKernel;

    /** Aligned text rendering (top @p max_rows kernel rows). */
    std::string render(std::size_t max_rows = 12) const;
};

/**
 * Diff two metric reports (baseline first).
 * @throws skipsim::FatalError when the candidate has zero IL.
 */
RunDiff diffRuns(const MetricsReport &before, const MetricsReport &after);

} // namespace skipsim::skip

#endif // SKIPSIM_SKIP_DIFF_HH
