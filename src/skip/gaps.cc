#include "skip/gaps.hh"

#include <algorithm>
#include <map>

#include "common/strutil.hh"
#include "common/table.hh"

namespace skipsim::skip
{

GapReport
analyzeGaps(const DependencyGraph &graph, double long_gap_ns)
{
    GapReport report;
    const trace::Trace &trace = graph.trace();

    // GPU events (kernels and memcpys) in stream order.
    std::vector<const trace::TraceEvent *> gpu_events;
    for (const auto &ev : trace.events()) {
        if (ev.onGpu())
            gpu_events.push_back(&ev);
    }
    std::stable_sort(gpu_events.begin(), gpu_events.end(),
                     [](const trace::TraceEvent *a,
                        const trace::TraceEvent *b) {
                         return a->tsBeginNs < b->tsBeginNs;
                     });
    if (gpu_events.size() < 2)
        return report;

    // Root operators in time order for blame attribution.
    std::vector<const trace::TraceEvent *> roots;
    for (std::uint64_t id : graph.rootOps())
        roots.push_back(&trace.byId(id));
    std::stable_sort(roots.begin(), roots.end(),
                     [](const trace::TraceEvent *a,
                        const trace::TraceEvent *b) {
                         return a->tsBeginNs < b->tsBeginNs;
                     });

    auto blame = [&](std::int64_t when) -> std::string {
        const trace::TraceEvent *best = nullptr;
        for (const auto *op : roots) {
            if (op->tsBeginNs > when)
                break;
            if (op->tsEndNs() > when)
                best = op;
            else
                best = best ? best : op; // nearest preceding op
        }
        return best ? best->name : "(no operator)";
    };

    std::map<std::string, double> blame_totals;
    for (std::size_t i = 1; i < gpu_events.size(); ++i) {
        std::int64_t prev_end = gpu_events[i - 1]->tsEndNs();
        std::int64_t next_begin = gpu_events[i]->tsBeginNs;
        if (next_begin <= prev_end)
            continue;
        GpuGap gap;
        gap.beginNs = prev_end;
        gap.durNs = next_begin - prev_end;
        gap.blamedOp = blame(prev_end);
        report.totalGapNs += static_cast<double>(gap.durNs);
        report.maxGapNs = std::max(report.maxGapNs,
                                   static_cast<double>(gap.durNs));
        if (static_cast<double>(gap.durNs) >= long_gap_ns)
            ++report.longGaps;
        blame_totals[gap.blamedOp] +=
            static_cast<double>(gap.durNs);
        report.gaps.push_back(std::move(gap));
    }

    report.blameByOp.assign(blame_totals.begin(), blame_totals.end());
    std::stable_sort(report.blameByOp.begin(), report.blameByOp.end(),
                     [](const auto &a, const auto &b) {
                         return a.second > b.second;
                     });
    return report;
}

std::string
GapReport::render(std::size_t max_rows) const
{
    std::string out = strprintf(
        "GPU gaps: %zu total (%zu long), %s idle inside the stream, "
        "worst %s\n",
        gaps.size(), longGaps, formatNs(totalGapNs).c_str(),
        formatNs(maxGapNs).c_str());

    TextTable table;
    table.setHeader({"Blamed operator", "GPU wait", "share"});
    std::size_t rows = 0;
    for (const auto &[op, total] : blameByOp) {
        if (rows++ >= max_rows)
            break;
        table.addRow({op, formatNs(total),
                      strprintf("%.1f%%",
                                totalGapNs > 0.0
                                    ? 100.0 * total / totalGapNs
                                    : 0.0)});
    }
    out += table.render();
    return out;
}

} // namespace skipsim::skip
