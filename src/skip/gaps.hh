/**
 * @file
 * GPU gap analysis: where does the GPU idle time of Eq. 5 actually
 * sit? This pass extracts the idle intervals between consecutive GPU
 * events inside the inference window and attributes each gap to the
 * CPU-side operator running when the gap began — pinpointing which
 * operators starve the GPU (the actionable form of "CPU-bound").
 */

#ifndef SKIPSIM_SKIP_GAPS_HH
#define SKIPSIM_SKIP_GAPS_HH

#include <string>
#include <vector>

#include "skip/dep_graph.hh"

namespace skipsim::skip
{

/** One idle interval on the GPU stream. */
struct GpuGap
{
    /** Gap begin (previous kernel end), ns. */
    std::int64_t beginNs = 0;

    /** Gap length, ns. */
    std::int64_t durNs = 0;

    /** Top-level operator active on the CPU when the gap began. */
    std::string blamedOp;
};

/** Aggregate gap statistics. */
struct GapReport
{
    /** All gaps inside the inference window, in time order. */
    std::vector<GpuGap> gaps;

    /** Total gap time, ns (the interior share of GPU idle). */
    double totalGapNs = 0.0;

    /** Largest single gap, ns. */
    double maxGapNs = 0.0;

    /** Gaps longer than the long-gap threshold passed to the pass. */
    std::size_t longGaps = 0;

    /**
     * Per-operator blame totals, sorted descending: which operators'
     * CPU time the GPU spent waiting on.
     */
    std::vector<std::pair<std::string, double>> blameByOp;

    /** Aligned text rendering (top @p max_rows blamed ops). */
    std::string render(std::size_t max_rows = 8) const;
};

/**
 * Analyze the GPU idle gaps of a run.
 * @param graph dependency graph of the trace.
 * @param long_gap_ns gaps at or above this length count as "long"
 *        (default 50 us — several launch overheads).
 */
GapReport analyzeGaps(const DependencyGraph &graph,
                      double long_gap_ns = 50e3);

} // namespace skipsim::skip

#endif // SKIPSIM_SKIP_GAPS_HH
