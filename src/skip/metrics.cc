#include "skip/metrics.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "stats/summary.hh"

namespace skipsim::skip
{

std::vector<KernelStat>
MetricsReport::topK(std::size_t k, TopKBy by) const
{
    std::vector<KernelStat> sorted = byKernel;
    auto key = [by](const KernelStat &s) -> double {
        switch (by) {
          case TopKBy::Count: return static_cast<double>(s.count);
          case TopKBy::LaunchOverhead: return s.totalLaunchNs;
          case TopKBy::Duration: return s.totalDurNs;
        }
        return 0.0;
    };
    std::stable_sort(sorted.begin(), sorted.end(),
                     [&](const KernelStat &a, const KernelStat &b) {
                         return key(a) > key(b);
                     });
    if (sorted.size() > k)
        sorted.resize(k);
    return sorted;
}

std::string
MetricsReport::render() const
{
    std::string out;
    out += strprintf("Inference latency (IL)      : %s\n",
                     formatNs(ilNs).c_str());
    out += strprintf("TKLQT                       : %s\n",
                     formatNs(tklqtNs).c_str());
    out += strprintf("  of which queuing          : %s\n",
                     formatNs(tklqtQueueNs).c_str());
    out += strprintf("Average kernel dur. (AKD)   : %s\n",
                     formatNs(akdNs).c_str());
    out += strprintf("GPU busy / idle             : %s / %s\n",
                     formatNs(gpuBusyNs).c_str(),
                     formatNs(gpuIdleNs).c_str());
    out += strprintf("CPU busy / idle             : %s / %s\n",
                     formatNs(cpuBusyNs).c_str(),
                     formatNs(cpuIdleNs).c_str());
    out += strprintf("Kernels / operators         : %zu / %zu\n",
                     numKernels, numOps);
    out += strprintf("Mean launch-to-start        : %s\n",
                     formatNs(avgLaunchNs).c_str());
    return out;
}

json::Value
MetricsReport::toJson() const
{
    json::Object obj;
    obj.set("tklqt_ns", tklqtNs);
    obj.set("tklqt_queue_ns", tklqtQueueNs);
    obj.set("launch_baseline_ns", launchBaselineNs);
    obj.set("akd_ns", akdNs);
    obj.set("il_ns", ilNs);
    obj.set("gpu_idle_ns", gpuIdleNs);
    obj.set("cpu_idle_ns", cpuIdleNs);
    obj.set("gpu_busy_ns", gpuBusyNs);
    obj.set("cpu_busy_ns", cpuBusyNs);
    obj.set("num_kernels", static_cast<unsigned long long>(numKernels));
    obj.set("num_ops", static_cast<unsigned long long>(numOps));
    obj.set("avg_launch_ns", avgLaunchNs);

    json::Value::Array kernels;
    for (const auto &stat : byKernel) {
        json::Object k;
        k.set("name", stat.name);
        k.set("count", static_cast<unsigned long long>(stat.count));
        k.set("total_dur_ns", stat.totalDurNs);
        k.set("total_launch_ns", stat.totalLaunchNs);
        kernels.push_back(json::Value(std::move(k)));
    }
    obj.set("kernels", json::Value(std::move(kernels)));
    return json::Value(std::move(obj));
}

MetricsReport
computeMetrics(const DependencyGraph &graph)
{
    MetricsReport report;
    const trace::Trace &trace = graph.trace();

    report.numOps = trace.countOf(trace::EventKind::Operator);

    // First root ATen operator begin (Eq. 4's ts_b(p_1)).
    std::int64_t first_op_begin = 0;
    bool have_op = false;
    for (std::uint64_t root : graph.rootOps()) {
        std::int64_t b = trace.byId(root).tsBeginNs;
        if (!have_op || b < first_op_begin) {
            first_op_begin = b;
            have_op = true;
        }
    }

    std::map<std::string, KernelStat> stats;
    std::int64_t last_kernel_end = 0;
    bool have_kernel = false;
    std::vector<double> launch_latencies;

    for (const auto &link : graph.computeKernelsOnly()) {
        const trace::TraceEvent &k = trace.byId(link.kernelId);
        report.tklqtNs += static_cast<double>(link.launchToStartNs);
        launch_latencies.push_back(
            static_cast<double>(link.launchToStartNs));
        report.gpuBusyNs += static_cast<double>(k.durNs);
        ++report.numKernels;
        last_kernel_end = std::max(last_kernel_end, k.tsEndNs());
        have_kernel = true;

        KernelStat &stat = stats[k.name];
        stat.name = k.name;
        ++stat.count;
        stat.totalDurNs += static_cast<double>(k.durNs);
        stat.totalLaunchNs += static_cast<double>(link.launchToStartNs);
    }

    if (!have_kernel)
        return report;

    // Queuing share of TKLQT: latency above the pure-launch baseline.
    report.launchBaselineNs =
        stats::percentile(launch_latencies, 10.0);
    for (double latency : launch_latencies) {
        report.tklqtQueueNs +=
            std::max(0.0, latency - report.launchBaselineNs);
    }

    report.akdNs =
        report.gpuBusyNs / static_cast<double>(report.numKernels);
    report.avgLaunchNs =
        report.tklqtNs / static_cast<double>(report.numKernels);

    if (have_op) {
        report.ilNs =
            static_cast<double>(last_kernel_end - first_op_begin);
        report.gpuIdleNs = std::max(0.0, report.ilNs - report.gpuBusyNs);

        for (std::uint64_t root : graph.rootOps()) {
            const trace::TraceEvent &op = trace.byId(root);
            // Only CPU time inside the IL window counts as busy.
            std::int64_t end = std::min(op.tsEndNs(), last_kernel_end);
            if (end > op.tsBeginNs)
                report.cpuBusyNs += static_cast<double>(
                    end - op.tsBeginNs);
        }
        report.cpuIdleNs = std::max(0.0, report.ilNs - report.cpuBusyNs);
    }

    report.byKernel.reserve(stats.size());
    for (auto &[name, stat] : stats) {
        (void)name;
        report.byKernel.push_back(stat);
    }
    std::stable_sort(report.byKernel.begin(), report.byKernel.end(),
                     [](const KernelStat &a, const KernelStat &b) {
                         return a.count > b.count;
                     });
    return report;
}

} // namespace skipsim::skip
