/**
 * @file
 * SKIP's fine-grained kernel metrics (paper Sec. III-A, Eqs. 1-5):
 * Total Kernel Launch and Queuing Time (TKLQT), Average Kernel
 * Duration (AKD), Inference Latency (IL), GPU idle time, CPU idle
 * time, and top-k kernel tracking.
 */

#ifndef SKIPSIM_SKIP_METRICS_HH
#define SKIPSIM_SKIP_METRICS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "json/value.hh"
#include "skip/dep_graph.hh"

namespace skipsim::skip
{

/** Aggregated statistics for one kernel name. */
struct KernelStat
{
    std::string name;
    std::size_t count = 0;
    double totalDurNs = 0.0;
    double totalLaunchNs = 0.0; ///< summed launch-to-start latency

    double meanDurNs() const
    {
        return count ? totalDurNs / static_cast<double>(count) : 0.0;
    }

    double meanLaunchNs() const
    {
        return count ? totalLaunchNs / static_cast<double>(count) : 0.0;
    }
};

/** Criteria for top-k kernel selection. */
enum class TopKBy { Count, LaunchOverhead, Duration };

/** The full metric report for one trace. */
struct MetricsReport
{
    /** Eq. 2: sum of launch-to-start latencies over all kernels, ns. */
    double tklqtNs = 0.0;

    /**
     * Queuing component of TKLQT, ns: the part of each launch-to-start
     * latency above the pure-launch baseline. Near zero in the
     * CPU-bound region; dominates past the inflection (Sec. V-B).
     */
    double tklqtQueueNs = 0.0;

    /**
     * Estimated pure launch overhead per kernel, ns (10th percentile
     * of observed launch-to-start latencies — queuing can only
     * lengthen them, so the low tail estimates the launch cost).
     */
    double launchBaselineNs = 0.0;

    /** Eq. 3: mean kernel execution duration, ns. */
    double akdNs = 0.0;

    /** Eq. 4: last kernel end - first root operator begin, ns. */
    double ilNs = 0.0;

    /** Eq. 5: IL - total kernel execution time, ns. */
    double gpuIdleNs = 0.0;

    /** IL - CPU busy (root operator) time, ns. */
    double cpuIdleNs = 0.0;

    /** Total kernel execution time, ns. */
    double gpuBusyNs = 0.0;

    /** Total root-operator CPU time, ns. */
    double cpuBusyNs = 0.0;

    /** Kernels executed (memcpys excluded). */
    std::size_t numKernels = 0;

    /** Total operator events. */
    std::size_t numOps = 0;

    /** Mean launch-to-start latency, ns (TKLQT / kernels). */
    double avgLaunchNs = 0.0;

    /** Per-kernel-name statistics, sorted by count descending. */
    std::vector<KernelStat> byKernel;

    /** Top-k kernels by the given criterion (Sec. III-A.5). */
    std::vector<KernelStat> topK(std::size_t k, TopKBy by) const;

    /** Aligned text rendering of the headline metrics. */
    std::string render() const;

    /** JSON serialization of the full report. */
    json::Value toJson() const;
};

/**
 * Compute the metric report for a dependency graph.
 * Traces with no kernels yield an all-zero report.
 */
MetricsReport computeMetrics(const DependencyGraph &graph);

} // namespace skipsim::skip

#endif // SKIPSIM_SKIP_METRICS_HH
