#include "skip/op_breakdown.hh"

#include <algorithm>
#include <map>

#include "common/strutil.hh"
#include "common/table.hh"

namespace skipsim::skip
{

std::string
OpBreakdown::render(std::size_t max_rows) const
{
    TextTable table("Per-operator breakdown (top-level ATen ops)");
    table.setHeader({"Operator", "calls", "CPU", "CPU %", "GPU",
                     "launches", "launch+queue"});
    std::size_t rows = 0;
    for (const auto &stat : byOp) {
        if (rows++ >= max_rows)
            break;
        double share =
            totalCpuNs > 0.0 ? 100.0 * stat.cpuNs / totalCpuNs : 0.0;
        table.addRow({stat.opName, std::to_string(stat.count),
                      formatNs(stat.cpuNs), strprintf("%.1f", share),
                      formatNs(stat.gpuNs),
                      std::to_string(stat.kernelLaunches),
                      formatNs(stat.launchNs)});
    }
    return table.render();
}

json::Value
OpBreakdown::toJson() const
{
    json::Value::Array ops;
    for (const auto &stat : byOp) {
        json::Object obj;
        obj.set("op", stat.opName);
        obj.set("count", static_cast<unsigned long long>(stat.count));
        obj.set("cpu_ns", stat.cpuNs);
        obj.set("gpu_ns", stat.gpuNs);
        obj.set("kernel_launches",
                static_cast<unsigned long long>(stat.kernelLaunches));
        obj.set("launch_ns", stat.launchNs);
        ops.push_back(json::Value(std::move(obj)));
    }
    json::Object root;
    root.set("total_cpu_ns", totalCpuNs);
    root.set("ops", json::Value(std::move(ops)));
    return json::Value(std::move(root));
}

OpBreakdown
computeOpBreakdown(const DependencyGraph &graph)
{
    const trace::Trace &trace = graph.trace();
    std::map<std::string, OpStat> stats;
    std::map<std::uint64_t, std::string> root_names;

    OpBreakdown breakdown;
    for (std::uint64_t root : graph.rootOps()) {
        const trace::TraceEvent &op = trace.byId(root);
        root_names[root] = op.name;
        OpStat &stat = stats[op.name];
        stat.opName = op.name;
        ++stat.count;
        stat.cpuNs += static_cast<double>(op.durNs);
        breakdown.totalCpuNs += static_cast<double>(op.durNs);
    }

    for (const auto &link : graph.computeKernelsOnly()) {
        if (!link.rootOpId)
            continue;
        auto it = root_names.find(*link.rootOpId);
        if (it == root_names.end())
            continue;
        OpStat &stat = stats[it->second];
        stat.gpuNs += static_cast<double>(
            trace.byId(link.kernelId).durNs);
        ++stat.kernelLaunches;
        stat.launchNs += static_cast<double>(link.launchToStartNs);
    }

    breakdown.byOp.reserve(stats.size());
    for (auto &[name, stat] : stats) {
        (void)name;
        breakdown.byOp.push_back(stat);
    }
    std::stable_sort(breakdown.byOp.begin(), breakdown.byOp.end(),
                     [](const OpStat &a, const OpStat &b) {
                         return a.cpuNs > b.cpuNs;
                     });
    return breakdown;
}

} // namespace skipsim::skip
