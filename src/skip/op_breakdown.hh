/**
 * @file
 * Operator-level breakdown: aggregate CPU time, GPU kernel time and
 * launch counts per top-level ATen operator. This is exactly the
 * visibility the paper notes industry tools lack ("Nsight Systems ...
 * lacks visibility into the PyTorch Aten operators on the CPU",
 * Sec. II-D) and that SKIP's dependency graph makes possible.
 */

#ifndef SKIPSIM_SKIP_OP_BREAKDOWN_HH
#define SKIPSIM_SKIP_OP_BREAKDOWN_HH

#include <string>
#include <vector>

#include "json/value.hh"
#include "skip/dep_graph.hh"

namespace skipsim::skip
{

/** Aggregated statistics for one top-level operator name. */
struct OpStat
{
    std::string opName;

    /** Invocations of this operator at top level. */
    std::size_t count = 0;

    /** Total CPU time across invocations (operator durations), ns. */
    double cpuNs = 0.0;

    /** Total GPU time of kernels attributed to this operator, ns. */
    double gpuNs = 0.0;

    /** Kernel launches attributed to this operator. */
    std::size_t kernelLaunches = 0;

    /** Accumulated launch-to-start latency of those kernels, ns. */
    double launchNs = 0.0;
};

/** Per-operator attribution of a whole trace. */
struct OpBreakdown
{
    /** Statistics per operator name, sorted by CPU time descending. */
    std::vector<OpStat> byOp;

    /** Total CPU time across all top-level operators, ns. */
    double totalCpuNs = 0.0;

    /** Aligned text rendering (top @p max_rows rows). */
    std::string render(std::size_t max_rows = 12) const;

    /** JSON serialization. */
    json::Value toJson() const;
};

/**
 * Compute the per-operator breakdown of a dependency graph: each
 * top-level operator's duration counts as its CPU time; kernels are
 * attributed to the root ancestor of their launching call.
 */
OpBreakdown computeOpBreakdown(const DependencyGraph &graph);

} // namespace skipsim::skip

#endif // SKIPSIM_SKIP_OP_BREAKDOWN_HH
