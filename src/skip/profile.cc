#include "skip/profile.hh"

#include "common/strutil.hh"

namespace skipsim::skip
{

ProfileResult
profile(const ProfileConfig &config)
{
    workload::BuildOptions build;
    build.batch = config.batch;
    build.seqLen = config.seqLen;
    build.mode = config.mode;
    workload::OperatorGraph graph =
        workload::buildPrefillGraph(config.model, build);

    sim::Simulator simulator(config.platform, config.sim);
    sim::SimResult sim_result = simulator.run(graph);

    sim_result.trace.setMeta("model", config.model.name);
    sim_result.trace.setMeta("batch", std::to_string(config.batch));
    sim_result.trace.setMeta("seq_len", std::to_string(config.seqLen));
    sim_result.trace.setMeta("mode",
                             workload::execModeName(config.mode));

    DependencyGraph dep = DependencyGraph::build(sim_result.trace);

    ProfileResult result;
    result.modelName = config.model.name;
    result.platformName = config.platform.name;
    result.batch = config.batch;
    result.seqLen = config.seqLen;
    result.mode = config.mode;
    result.metrics = computeMetrics(dep);
    result.trace = dep.trace();
    result.kernelLaunches = graph.numKernelLaunches();
    result.wallNs = sim_result.wallNs;
    return result;
}

ProfileResult
profilePrefill(const workload::ModelConfig &model,
               const hw::Platform &platform, int batch, int seq_len,
               workload::ExecMode mode)
{
    ProfileConfig config;
    config.model = model;
    config.platform = platform;
    config.batch = batch;
    config.seqLen = seq_len;
    config.mode = mode;
    return profile(config);
}

} // namespace skipsim::skip
