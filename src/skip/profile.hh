/**
 * @file
 * ProfileSession: SKIP's one-call public API. Builds the workload
 * graph, runs it on a platform model, constructs the dependency graph
 * and returns the metric report together with the trace — the same
 * flow a SKIP user runs against a real system with PyTorch Profiler.
 */

#ifndef SKIPSIM_SKIP_PROFILE_HH
#define SKIPSIM_SKIP_PROFILE_HH

#include <string>

#include "hw/platform.hh"
#include "sim/simulator.hh"
#include "skip/metrics.hh"
#include "workload/builder.hh"
#include "workload/model_config.hh"

namespace skipsim::skip
{

/**
 * Everything identifying one profiling run.
 *
 * @deprecated Thin compatibility carrier. New code should build an
 * exec::RunSpec (the unified run description shared by every entry
 * point) and convert with RunSpec::profileConfig(); this struct stays
 * so out-of-tree callers keep compiling.
 */
struct ProfileConfig
{
    workload::ModelConfig model;
    hw::Platform platform;
    int batch = 1;
    int seqLen = 512;
    workload::ExecMode mode = workload::ExecMode::Eager;
    sim::SimOptions sim;
};

/** Result of one profiling run. */
struct ProfileResult
{
    /** Run identity. */
    std::string modelName;
    std::string platformName;
    int batch = 1;
    int seqLen = 512;
    workload::ExecMode mode = workload::ExecMode::Eager;

    /** SKIP's metric report. */
    MetricsReport metrics;

    /** The underlying trace (annotated with run metadata). */
    trace::Trace trace;

    /** Eager-equivalent kernel launch count (K_eager when eager). */
    std::size_t kernelLaunches = 0;

    /** End-to-end simulated wall time including final sync, ns. */
    double wallNs = 0.0;

    /** TTFT/prefill latency, ns (the paper reports IL for this). */
    double ttftNs() const { return metrics.ilNs; }
};

/**
 * Run one profiling session: build graph -> simulate -> analyze.
 * @throws skipsim::FatalError on invalid configuration.
 */
ProfileResult profile(const ProfileConfig &config);

/**
 * Profile a prefill run for a model/platform/batch in one call.
 * Convenience wrapper over profile().
 */
ProfileResult profilePrefill(const workload::ModelConfig &model,
                             const hw::Platform &platform, int batch,
                             int seq_len = 512,
                             workload::ExecMode mode =
                                 workload::ExecMode::Eager);

} // namespace skipsim::skip

#endif // SKIPSIM_SKIP_PROFILE_HH
