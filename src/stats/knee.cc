#include "stats/knee.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "stats/summary.hh"

namespace skipsim::stats
{

KneeResult
detectKnee(const Series &s, double margin, std::size_t seed_points)
{
    if (s.empty())
        fatal("detectKnee on empty series");
    if (margin <= 1.0)
        fatal("detectKnee margin must be > 1");

    const auto &pts = s.points();
    seed_points = std::max<std::size_t>(1, std::min(seed_points,
                                                    pts.size()));

    std::vector<double> plateau_ys;
    for (std::size_t i = 0; i < seed_points; ++i)
        plateau_ys.push_back(pts[i].y);
    double level = median(plateau_ys);

    KneeResult result;
    result.plateauLevel = level;
    result.lastPlateauX = pts[seed_points - 1].x;
    result.kneeX = std::nullopt;

    for (std::size_t i = seed_points; i < pts.size(); ++i) {
        if (pts[i].y > margin * level) {
            result.kneeX = pts[i].x;
            break;
        }
        // Still on the plateau: refine the estimate.
        plateau_ys.push_back(pts[i].y);
        level = median(plateau_ys);
        result.plateauLevel = level;
        result.lastPlateauX = pts[i].x;
    }
    return result;
}

} // namespace skipsim::stats
