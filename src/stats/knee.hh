/**
 * @file
 * Plateau/knee detection for TKLQT-vs-batch-size curves. The paper's
 * PU-boundedness classification (Sec. V-B, Fig. 6) rests on finding the
 * inflection batch size where TKLQT leaves its low-batch plateau (kernel
 * launch dominated) and starts growing (kernel queuing dominated).
 */

#ifndef SKIPSIM_STATS_KNEE_HH
#define SKIPSIM_STATS_KNEE_HH

#include <optional>

#include "stats/series.hh"

namespace skipsim::stats
{

/** Result of a plateau/knee search over an ascending-x series. */
struct KneeResult
{
    /** Level of the low-x plateau (median of plateau points). */
    double plateauLevel;

    /** x of the last point still on the plateau. */
    double lastPlateauX;

    /**
     * First x whose y exceeds margin * plateauLevel — the knee/star
     * marker; unset when the series never leaves the plateau.
     */
    std::optional<double> kneeX;
};

/**
 * Detect the plateau-then-rise knee of a series.
 *
 * The plateau level is estimated from the first @p seed_points points
 * (median). The knee is the first x where y > margin * plateau; the
 * plateau estimate is extended with every point that stays within the
 * margin, making the detector robust to slow drift.
 *
 * @param s series sorted by x (batch size).
 * @param margin multiplicative threshold, e.g. 1.5 means "50% above the
 *        plateau counts as having left it".
 * @param seed_points number of initial points seeding the plateau
 *        estimate (clamped to the series size).
 * @throws skipsim::FatalError on an empty series or margin <= 1.
 */
KneeResult detectKnee(const Series &s, double margin = 1.5,
                      std::size_t seed_points = 2);

} // namespace skipsim::stats

#endif // SKIPSIM_STATS_KNEE_HH
