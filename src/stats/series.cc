#include "stats/series.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace skipsim::stats
{

void
Series::add(double x, double y)
{
    SeriesPoint p{x, y};
    auto it = std::lower_bound(
        _points.begin(), _points.end(), p,
        [](const SeriesPoint &lhs, const SeriesPoint &rhs) {
            return lhs.x < rhs.x;
        });
    _points.insert(it, p);
}

double
Series::at(double x) const
{
    for (const auto &p : _points) {
        if (p.x == x)
            return p.y;
    }
    fatal(strprintf("Series '%s': no point at x=%g", _name.c_str(), x));
}

bool
Series::hasX(double x) const
{
    return std::any_of(_points.begin(), _points.end(),
                       [&](const SeriesPoint &p) { return p.x == x; });
}

std::vector<double>
Series::xs() const
{
    std::vector<double> out;
    out.reserve(_points.size());
    for (const auto &p : _points)
        out.push_back(p.x);
    return out;
}

std::vector<double>
Series::ys() const
{
    std::vector<double> out;
    out.reserve(_points.size());
    for (const auto &p : _points)
        out.push_back(p.y);
    return out;
}

double
Series::interpolate(double x) const
{
    if (_points.empty())
        fatal("Series::interpolate on empty series");
    if (x <= _points.front().x)
        return _points.front().y;
    if (x >= _points.back().x)
        return _points.back().y;
    for (std::size_t i = 1; i < _points.size(); ++i) {
        if (x <= _points[i].x) {
            const auto &lo = _points[i - 1];
            const auto &hi = _points[i];
            double span = hi.x - lo.x;
            if (span <= 0.0)
                return lo.y;
            double frac = (x - lo.x) / span;
            return lo.y * (1.0 - frac) + hi.y * frac;
        }
    }
    return _points.back().y;
}

std::optional<double>
firstCrossBelow(const Series &a, const Series &b)
{
    // Shared ascending x grid.
    std::vector<double> shared;
    for (const auto &p : a.points()) {
        if (b.hasX(p.x))
            shared.push_back(p.x);
    }
    for (double x : shared) {
        if (a.at(x) < b.at(x))
            return x;
    }
    return std::nullopt;
}

} // namespace skipsim::stats
