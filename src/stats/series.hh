/**
 * @file
 * An (x, y) series keyed by a sweep parameter (typically batch size).
 * Provides lookup, interpolation and the crossover search used to find
 * the paper's latency crossover points (CPs) between platforms.
 */

#ifndef SKIPSIM_STATS_SERIES_HH
#define SKIPSIM_STATS_SERIES_HH

#include <optional>
#include <string>
#include <vector>

namespace skipsim::stats
{

/** One sample of a sweep: parameter value x, measurement y. */
struct SeriesPoint
{
    double x;
    double y;
};

/**
 * A named, x-sorted series of measurements. Appending out of order is
 * allowed; points are kept sorted by x.
 */
class Series
{
  public:
    Series() = default;
    explicit Series(std::string name)
        : _name(std::move(name))
    {}

    const std::string &name() const { return _name; }

    /** Insert a point, keeping the series sorted by x. */
    void add(double x, double y);

    std::size_t size() const { return _points.size(); }
    bool empty() const { return _points.empty(); }

    const std::vector<SeriesPoint> &points() const { return _points; }

    /** Exact-x lookup. @throws skipsim::FatalError when x is absent. */
    double at(double x) const;

    /** @return true when a point with this exact x exists. */
    bool hasX(double x) const;

    /** All x values in ascending order. */
    std::vector<double> xs() const;

    /** All y values in x order. */
    std::vector<double> ys() const;

    /**
     * Piecewise-linear interpolation at @p x; clamps to end values
     * outside the x range.
     * @throws skipsim::FatalError on an empty series.
     */
    double interpolate(double x) const;

  private:
    std::string _name;
    std::vector<SeriesPoint> _points;
};

/**
 * Find the first crossover where series @p a stops being larger than
 * series @p b (i.e. a(x) >= b(x) before, a(x) < b(x) after), scanning
 * the shared x grid in ascending order.
 *
 * This matches the paper's crossover point (CP): the batch size beyond
 * which GH200's latency drops below the loosely-coupled system's.
 *
 * @return the first shared x where a(x) < b(x), provided some earlier
 *         shared x had a(x) >= b(x) or it is the first shared x;
 *         std::nullopt when a never drops below b.
 */
std::optional<double> firstCrossBelow(const Series &a, const Series &b);

} // namespace skipsim::stats

#endif // SKIPSIM_STATS_SERIES_HH
