#include "stats/summary.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace skipsim::stats
{

void
Summary::add(double x)
{
    if (_count == 0) {
        _min = x;
        _max = x;
    } else {
        _min = std::min(_min, x);
        _max = std::max(_max, x);
    }
    ++_count;
    _sum += x;
    double delta = x - _mean;
    _mean += delta / static_cast<double>(_count);
    _m2 += delta * (x - _mean);
}

void
Summary::addAll(const std::vector<double> &xs)
{
    for (double x : xs)
        add(x);
}

double
Summary::min() const
{
    if (_count == 0)
        fatal("Summary::min on empty accumulator");
    return _min;
}

double
Summary::max() const
{
    if (_count == 0)
        fatal("Summary::max on empty accumulator");
    return _max;
}

double
Summary::mean() const
{
    if (_count == 0)
        fatal("Summary::mean on empty accumulator");
    return _mean;
}

double
Summary::variance() const
{
    if (_count < 2)
        return 0.0;
    return _m2 / static_cast<double>(_count - 1);
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

namespace
{

/** Percentile of an already-sorted sample vector. */
double
sortedPercentile(const std::vector<double> &xs, double p)
{
    // Negated form so NaN (every comparison false) is rejected too,
    // instead of flowing into the rank arithmetic as UB.
    if (!(p >= 0.0 && p <= 100.0))
        fatal("percentile p must be within [0, 100]");
    if (xs.size() == 1)
        return xs[0];
    double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

} // namespace

double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        fatal("percentile on empty sample set");
    std::sort(xs.begin(), xs.end());
    return sortedPercentile(xs, p);
}

std::vector<double>
percentiles(std::vector<double> xs, const std::vector<double> &ps)
{
    if (xs.empty())
        fatal("percentiles on empty sample set");
    std::sort(xs.begin(), xs.end());
    std::vector<double> out;
    out.reserve(ps.size());
    for (double p : ps)
        out.push_back(sortedPercentile(xs, p));
    return out;
}

double
median(std::vector<double> xs)
{
    return percentile(std::move(xs), 50.0);
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        fatal("geomean on empty sample set");
    double acc = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            fatal("geomean requires strictly positive samples");
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(xs.size()));
}

LinearFit
fitLinear(const std::vector<double> &xs, const std::vector<double> &ys)
{
    if (xs.size() != ys.size())
        fatal("fitLinear: x and y sizes differ");
    if (xs.size() < 2)
        fatal("fitLinear: need at least 2 points");
    double n = static_cast<double>(xs.size());
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
    }
    double denom = n * sxx - sx * sx;
    if (std::abs(denom) < 1e-12)
        fatal("fitLinear: degenerate x values");
    double slope = (n * sxy - sx * sy) / denom;
    double intercept = (sy - slope * sx) / n;
    return {intercept, slope};
}

} // namespace skipsim::stats
