/**
 * @file
 * Scalar summary statistics: online accumulation of count/mean/variance
 * (Welford), min/max, and batch helpers for percentiles and geometric
 * mean. Used by the SKIP metric reports and bench harnesses.
 */

#ifndef SKIPSIM_STATS_SUMMARY_HH
#define SKIPSIM_STATS_SUMMARY_HH

#include <cstddef>
#include <vector>

namespace skipsim::stats
{

/**
 * Online accumulator for scalar samples. Numerically stable mean and
 * variance via Welford's algorithm.
 */
class Summary
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Add many samples. */
    void addAll(const std::vector<double> &xs);

    std::size_t count() const { return _count; }
    double sum() const { return _sum; }
    double min() const;
    double max() const;
    double mean() const;

    /** Sample variance (n-1 denominator); 0 for fewer than 2 samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

  private:
    std::size_t _count = 0;
    double _sum = 0.0;
    double _mean = 0.0;
    double _m2 = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/**
 * Percentile with linear interpolation between order statistics.
 * @param xs samples (not required to be sorted; copied internally).
 * @param p percentile in [0, 100].
 * @throws skipsim::FatalError on empty input or p outside [0, 100].
 */
double percentile(std::vector<double> xs, double p);

/**
 * Several percentiles of one sample set, sorting the samples once
 * (percentile() re-copies and re-sorts per call; result code asking
 * for p50/p95/p99 of the same latency vector should use this).
 * @param xs samples (not required to be sorted; copied internally).
 * @param ps percentiles, each in [0, 100], in any order.
 * @return one value per entry of @p ps, in the same order.
 * @throws skipsim::FatalError on empty input or any p outside [0, 100].
 */
std::vector<double> percentiles(std::vector<double> xs,
                                const std::vector<double> &ps);

/** Median shorthand (50th percentile). */
double median(std::vector<double> xs);

/**
 * Geometric mean of strictly positive samples.
 * @throws skipsim::FatalError on empty input or non-positive samples.
 */
double geomean(const std::vector<double> &xs);

/**
 * Ordinary least-squares fit y = a + b*x.
 * @return {intercept a, slope b}.
 * @throws skipsim::FatalError with fewer than 2 points or degenerate x.
 */
struct LinearFit
{
    double intercept;
    double slope;

    double at(double x) const { return intercept + slope * x; }
};

LinearFit fitLinear(const std::vector<double> &xs,
                    const std::vector<double> &ys);

} // namespace skipsim::stats

#endif // SKIPSIM_STATS_SUMMARY_HH
