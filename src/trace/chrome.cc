#include "trace/chrome.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "json/parser.hh"
#include "json/writer.hh"

namespace skipsim::trace
{

namespace
{

json::Value
eventToJson(const TraceEvent &ev)
{
    json::Object obj;
    obj.set("ph", "X");
    obj.set("name", ev.name);
    obj.set("cat", kindName(ev.kind));
    obj.set("pid", 0);
    obj.set("tid", ev.onGpu() ? 1000 + ev.streamId : ev.tid);
    obj.set("ts", static_cast<double>(ev.tsBeginNs) / 1000.0);
    obj.set("dur", static_cast<double>(ev.durNs) / 1000.0);

    json::Object args;
    args.set("ts_ns", static_cast<long long>(ev.tsBeginNs));
    args.set("dur_ns", static_cast<long long>(ev.durNs));
    args.set("thread", ev.tid);
    if (ev.correlationId != 0)
        args.set("correlation",
                 static_cast<unsigned long long>(ev.correlationId));
    if (ev.onGpu())
        args.set("stream", ev.streamId);
    if (ev.flops > 0.0)
        args.set("flops", ev.flops);
    if (ev.bytes > 0.0)
        args.set("bytes", ev.bytes);
    obj.set("args", json::Value(std::move(args)));
    return json::Value(std::move(obj));
}

json::Value
counterToJson(const CounterEvent &counter)
{
    json::Object obj;
    obj.set("ph", "C");
    obj.set("name", counter.name);
    obj.set("pid", 0);
    obj.set("tid", counter.tid);
    obj.set("ts", static_cast<double>(counter.tsNs) / 1000.0);
    // Exact nanosecond timestamp as a top-level extra field: viewers
    // ignore it, and it cannot live in args because every args member
    // of a "C" event renders as its own counter series.
    obj.set("ts_ns", static_cast<long long>(counter.tsNs));
    json::Object args;
    args.set("value", counter.value);
    obj.set("args", json::Value(std::move(args)));
    return json::Value(std::move(obj));
}

json::Value
instantToJson(const InstantEvent &instant)
{
    json::Object obj;
    obj.set("ph", "i");
    obj.set("name", instant.name);
    obj.set("pid", 0);
    obj.set("tid", instant.tid);
    obj.set("ts", static_cast<double>(instant.tsNs) / 1000.0);
    obj.set("ts_ns", static_cast<long long>(instant.tsNs));
    obj.set("s", "t"); // thread-scoped marker
    return json::Value(std::move(obj));
}

/** Timestamp in ns: exact ts_ns when present, else microsecond ts. */
std::int64_t
timestampNs(const json::Object &obj)
{
    if (obj.has("ts_ns"))
        return obj.at("ts_ns").asInt();
    return static_cast<std::int64_t>(
        std::llround(obj.at("ts").asDouble() * 1000.0));
}

CounterEvent
counterFromJson(const json::Object &obj)
{
    CounterEvent counter;
    counter.name = obj.at("name").asString();
    counter.tsNs = timestampNs(obj);
    counter.tid =
        static_cast<int>(obj.get("tid", json::Value(0)).asInt());
    const json::Value null_value;
    const json::Value &args_value = obj.get("args", null_value);
    if (args_value.isObject()) {
        const json::Object &args = args_value.asObject();
        if (args.has("value")) {
            counter.value = args.at("value").asDouble();
        } else {
            // Kineto-style counters name their series arbitrarily;
            // take the first numeric member.
            for (const auto &key : args.keys()) {
                if (args.at(key).isNumber()) {
                    counter.value = args.at(key).asDouble();
                    break;
                }
            }
        }
    }
    return counter;
}

InstantEvent
instantFromJson(const json::Object &obj)
{
    InstantEvent instant;
    instant.name = obj.at("name").asString();
    instant.tsNs = timestampNs(obj);
    instant.tid =
        static_cast<int>(obj.get("tid", json::Value(0)).asInt());
    return instant;
}

TraceEvent
eventFromJson(const json::Object &obj)
{
    TraceEvent ev;
    ev.name = obj.at("name").asString();
    ev.kind = kindFromName(obj.at("cat").asString());

    const json::Value null_value;
    const json::Value &args_value = obj.get("args", null_value);
    const json::Object *args =
        args_value.isObject() ? &args_value.asObject() : nullptr;

    auto arg_int = [&](const char *key, std::int64_t def) -> std::int64_t {
        if (args && args->has(key))
            return args->at(key).asInt();
        return def;
    };
    auto arg_double = [&](const char *key, double def) -> double {
        if (args && args->has(key))
            return args->at(key).asDouble();
        return def;
    };

    if (args && args->has("ts_ns")) {
        ev.tsBeginNs = args->at("ts_ns").asInt();
        ev.durNs = args->at("dur_ns").asInt();
    } else {
        ev.tsBeginNs = static_cast<std::int64_t>(
            std::llround(obj.at("ts").asDouble() * 1000.0));
        ev.durNs = static_cast<std::int64_t>(
            std::llround(obj.at("dur").asDouble() * 1000.0));
    }

    ev.tid = static_cast<int>(arg_int("thread",
                                      obj.get("tid", json::Value(0))
                                          .asInt()));
    ev.streamId = ev.onGpu() ? static_cast<int>(arg_int("stream", 0)) : -1;
    ev.correlationId =
        static_cast<std::uint64_t>(arg_int("correlation", 0));
    ev.flops = arg_double("flops", 0.0);
    ev.bytes = arg_double("bytes", 0.0);
    return ev;
}

} // namespace

json::Value
toChromeJson(const Trace &trace)
{
    json::Object root;

    json::Object meta;
    for (const auto &[key, value] : trace.metaEntries())
        meta.set(key, value);
    root.set("skipsimMeta", json::Value(std::move(meta)));

    json::Value::Array events;
    events.reserve(trace.size() + trace.counters().size() +
                   trace.instants().size());
    for (const auto &ev : trace.events())
        events.push_back(eventToJson(ev));
    for (const auto &counter : trace.counters())
        events.push_back(counterToJson(counter));
    for (const auto &instant : trace.instants())
        events.push_back(instantToJson(instant));
    root.set("traceEvents", json::Value(std::move(events)));
    root.set("displayTimeUnit", "ns");
    return json::Value(std::move(root));
}

std::string
toChromeText(const Trace &trace)
{
    return json::write(toChromeJson(trace));
}

void
writeChromeFile(const std::string &path, const Trace &trace)
{
    json::writeFile(path, toChromeJson(trace), false);
}

Trace
fromChromeJson(const json::Value &doc)
{
    Trace trace;

    // Chrome tracing has two container formats: the object form with a
    // "traceEvents" member, and the legacy bare-array form (which is
    // also what many exporters emit and what truncated captures get
    // repaired into). Accept both.
    const json::Value::Array *events = nullptr;
    if (doc.isArray()) {
        events = &doc.asArray();
    } else if (doc.isObject()) {
        const json::Object &root = doc.asObject();
        if (root.has("skipsimMeta")) {
            const json::Object &meta =
                root.at("skipsimMeta").asObject();
            for (const auto &key : meta.keys())
                trace.setMeta(key, meta.at(key).asString());
        }
        if (!root.has("traceEvents"))
            fatal("chrome trace: missing 'traceEvents' member (and "
                  "the document is not a bare event array)");
        if (!root.at("traceEvents").isArray())
            fatal("chrome trace: 'traceEvents' must be an array");
        events = &root.at("traceEvents").asArray();
    } else {
        fatal("chrome trace: top level must be an object with "
              "'traceEvents' or an event array");
    }

    std::size_t index = 0;
    for (const auto &item : *events) {
        // Malformed events (wrong kinds, missing timestamps) surface
        // as FatalError from the json accessors; re-throw with the
        // event index so a bad record in a megabyte export is
        // findable.
        try {
            if (!item.isObject())
                fatal("event is not a JSON object");
            const json::Object &obj = item.asObject();
            const std::string ph =
                obj.get("ph", json::Value("X")).asString();
            if (ph == "C") {
                trace.addCounter(counterFromJson(obj));
            } else if (ph == "i" || ph == "I") {
                trace.addInstant(instantFromJson(obj));
            } else if (ph == "X" && obj.has("cat")) {
                // Skip categories we do not model (python_function,
                // user_annotation...)
                const std::string cat = obj.at("cat").asString();
                if (cat == "cpu_op" || cat == "cuda_runtime" ||
                    cat == "kernel" || cat == "gpu_memcpy")
                    trace.add(eventFromJson(obj));
            }
        } catch (const FatalError &err) {
            fatal(strprintf("chrome trace: event %zu: %s", index,
                            err.what()));
        }
        ++index;
    }
    trace.sortByTime();
    return trace;
}

Trace
fromChromeText(const std::string &text)
{
    return fromChromeJson(json::parse(text));
}

Trace
readChromeFile(const std::string &path)
{
    return fromChromeJson(json::parseFile(path));
}

} // namespace skipsim::trace
