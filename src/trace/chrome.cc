#include "trace/chrome.hh"

#include <cmath>

#include "common/logging.hh"
#include "json/parser.hh"
#include "json/writer.hh"

namespace skipsim::trace
{

namespace
{

json::Value
eventToJson(const TraceEvent &ev)
{
    json::Object obj;
    obj.set("ph", "X");
    obj.set("name", ev.name);
    obj.set("cat", kindName(ev.kind));
    obj.set("pid", 0);
    obj.set("tid", ev.onGpu() ? 1000 + ev.streamId : ev.tid);
    obj.set("ts", static_cast<double>(ev.tsBeginNs) / 1000.0);
    obj.set("dur", static_cast<double>(ev.durNs) / 1000.0);

    json::Object args;
    args.set("ts_ns", static_cast<long long>(ev.tsBeginNs));
    args.set("dur_ns", static_cast<long long>(ev.durNs));
    args.set("thread", ev.tid);
    if (ev.correlationId != 0)
        args.set("correlation",
                 static_cast<unsigned long long>(ev.correlationId));
    if (ev.onGpu())
        args.set("stream", ev.streamId);
    if (ev.flops > 0.0)
        args.set("flops", ev.flops);
    if (ev.bytes > 0.0)
        args.set("bytes", ev.bytes);
    obj.set("args", json::Value(std::move(args)));
    return json::Value(std::move(obj));
}

TraceEvent
eventFromJson(const json::Object &obj)
{
    TraceEvent ev;
    ev.name = obj.at("name").asString();
    ev.kind = kindFromName(obj.at("cat").asString());

    const json::Value null_value;
    const json::Value &args_value = obj.get("args", null_value);
    const json::Object *args =
        args_value.isObject() ? &args_value.asObject() : nullptr;

    auto arg_int = [&](const char *key, std::int64_t def) -> std::int64_t {
        if (args && args->has(key))
            return args->at(key).asInt();
        return def;
    };
    auto arg_double = [&](const char *key, double def) -> double {
        if (args && args->has(key))
            return args->at(key).asDouble();
        return def;
    };

    if (args && args->has("ts_ns")) {
        ev.tsBeginNs = args->at("ts_ns").asInt();
        ev.durNs = args->at("dur_ns").asInt();
    } else {
        ev.tsBeginNs = static_cast<std::int64_t>(
            std::llround(obj.at("ts").asDouble() * 1000.0));
        ev.durNs = static_cast<std::int64_t>(
            std::llround(obj.at("dur").asDouble() * 1000.0));
    }

    ev.tid = static_cast<int>(arg_int("thread",
                                      obj.get("tid", json::Value(0))
                                          .asInt()));
    ev.streamId = ev.onGpu() ? static_cast<int>(arg_int("stream", 0)) : -1;
    ev.correlationId =
        static_cast<std::uint64_t>(arg_int("correlation", 0));
    ev.flops = arg_double("flops", 0.0);
    ev.bytes = arg_double("bytes", 0.0);
    return ev;
}

} // namespace

json::Value
toChromeJson(const Trace &trace)
{
    json::Object root;

    json::Object meta;
    for (const auto &[key, value] : trace.metaEntries())
        meta.set(key, value);
    root.set("skipsimMeta", json::Value(std::move(meta)));

    json::Value::Array events;
    events.reserve(trace.size());
    for (const auto &ev : trace.events())
        events.push_back(eventToJson(ev));
    root.set("traceEvents", json::Value(std::move(events)));
    root.set("displayTimeUnit", "ns");
    return json::Value(std::move(root));
}

std::string
toChromeText(const Trace &trace)
{
    return json::write(toChromeJson(trace));
}

void
writeChromeFile(const std::string &path, const Trace &trace)
{
    json::writeFile(path, toChromeJson(trace), false);
}

Trace
fromChromeJson(const json::Value &doc)
{
    Trace trace;
    const json::Object &root = doc.asObject();

    if (root.has("skipsimMeta")) {
        const json::Object &meta = root.at("skipsimMeta").asObject();
        for (const auto &key : meta.keys())
            trace.setMeta(key, meta.at(key).asString());
    }

    if (!root.has("traceEvents"))
        fatal("chrome trace: missing 'traceEvents'");
    for (const auto &item : root.at("traceEvents").asArray()) {
        const json::Object &obj = item.asObject();
        if (obj.get("ph", json::Value("X")).asString() != "X")
            continue;
        if (!obj.has("cat"))
            continue;
        // Skip categories we do not model (python_function, user_annotation...)
        const std::string cat = obj.at("cat").asString();
        if (cat != "cpu_op" && cat != "cuda_runtime" && cat != "kernel" &&
            cat != "gpu_memcpy") {
            continue;
        }
        trace.add(eventFromJson(obj));
    }
    trace.sortByTime();
    return trace;
}

Trace
fromChromeText(const std::string &text)
{
    return fromChromeJson(json::parse(text));
}

Trace
readChromeFile(const std::string &path)
{
    return fromChromeJson(json::parseFile(path));
}

} // namespace skipsim::trace
