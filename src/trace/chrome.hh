/**
 * @file
 * Chrome-trace (about://tracing, Perfetto-compatible) import/export for
 * Traces. The exporter writes complete "X" events with exact nanosecond
 * timestamps carried in args (ts_ns/dur_ns) alongside the conventional
 * microsecond ts/dur, so a round trip is lossless while the file stays
 * loadable in standard viewers; the importer also accepts traces that
 * only carry microsecond fields (e.g. real PyTorch Kineto exports).
 * Counter events ("ph":"C", one args member "value") and instant
 * markers ("ph":"i") round-trip too, carrying their exact nanosecond
 * timestamp in a top-level "ts_ns" field.
 */

#ifndef SKIPSIM_TRACE_CHROME_HH
#define SKIPSIM_TRACE_CHROME_HH

#include <string>

#include "json/value.hh"
#include "trace/trace.hh"

namespace skipsim::trace
{

/** Serialize a trace to a Chrome-trace JSON document. */
json::Value toChromeJson(const Trace &trace);

/** Serialize a trace to Chrome-trace JSON text. */
std::string toChromeText(const Trace &trace);

/** Write a Chrome-trace JSON file. */
void writeChromeFile(const std::string &path, const Trace &trace);

/**
 * Parse a Chrome-trace JSON document into a Trace. "X" events of the
 * modeled categories become TraceEvents; "C" events become counters
 * and "i"/"I" events instant markers. Unknown event categories and
 * other phases are skipped.
 * @throws skipsim::FatalError on malformed documents.
 */
Trace fromChromeJson(const json::Value &doc);

/** Parse Chrome-trace JSON text. */
Trace fromChromeText(const std::string &text);

/** Read a Chrome-trace JSON file. */
Trace readChromeFile(const std::string &path);

} // namespace skipsim::trace

#endif // SKIPSIM_TRACE_CHROME_HH
