#include "trace/event.hh"

#include "common/logging.hh"

namespace skipsim::trace
{

const char *
kindName(EventKind kind)
{
    switch (kind) {
      case EventKind::Operator: return "cpu_op";
      case EventKind::Runtime: return "cuda_runtime";
      case EventKind::Kernel: return "kernel";
      case EventKind::Memcpy: return "gpu_memcpy";
    }
    panic("kindName: invalid EventKind");
}

EventKind
kindFromName(const std::string &name)
{
    if (name == "cpu_op")
        return EventKind::Operator;
    if (name == "cuda_runtime")
        return EventKind::Runtime;
    if (name == "kernel")
        return EventKind::Kernel;
    if (name == "gpu_memcpy")
        return EventKind::Memcpy;
    fatal("unknown trace event category '" + name + "'");
}

} // namespace skipsim::trace
