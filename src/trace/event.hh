/**
 * @file
 * The timestamped event model shared by the execution simulator (which
 * produces events) and the SKIP profiler (which consumes them). It
 * mirrors the information PyTorch Profiler / Kineto exposes via CUPTI:
 * CPU-side operator intervals, CUDA runtime (launch) call intervals,
 * and GPU kernel execution intervals, linked by correlation IDs.
 */

#ifndef SKIPSIM_TRACE_EVENT_HH
#define SKIPSIM_TRACE_EVENT_HH

#include <cstdint>
#include <string>

namespace skipsim::trace
{

/** Kinds of trace events, matching PyTorch profiler categories. */
enum class EventKind
{
    /** CPU-side framework operator (e.g. aten::linear). */
    Operator,
    /** CPU-side CUDA runtime call (e.g. cudaLaunchKernel). */
    Runtime,
    /** GPU kernel execution on a stream. */
    Kernel,
    /** GPU-side memory copy (treated like a kernel for queuing). */
    Memcpy,
};

/** @return the Kineto-style category string for a kind. */
const char *kindName(EventKind kind);

/** Parse a category string. @throws skipsim::FatalError when unknown. */
EventKind kindFromName(const std::string &name);

/**
 * One timestamped interval in a trace. Times are nanoseconds from the
 * trace origin. CPU events carry a thread id; GPU events carry a stream
 * id. Runtime launch calls and the kernels they trigger share a nonzero
 * correlation id, exactly as CUPTI reports.
 */
struct TraceEvent
{
    /** Dense id assigned by the owning Trace (insertion order). */
    std::uint64_t id = 0;

    EventKind kind = EventKind::Operator;

    /** Operator / runtime-call / kernel name. */
    std::string name;

    /** Interval begin, ns from trace origin. */
    std::int64_t tsBeginNs = 0;

    /** Interval duration in ns (>= 0). */
    std::int64_t durNs = 0;

    /** CPU thread id (Operator/Runtime events; kernels keep issuing tid). */
    int tid = 0;

    /** GPU stream id for Kernel/Memcpy events; -1 for CPU events. */
    int streamId = -1;

    /** CUPTI correlation id linking a Runtime launch to its kernel. */
    std::uint64_t correlationId = 0;

    /** Kernel floating-point work (model metadata; 0 when unknown). */
    double flops = 0.0;

    /** Kernel bytes moved to/from device memory (model metadata). */
    double bytes = 0.0;

    /** Interval end, ns from trace origin. */
    std::int64_t tsEndNs() const { return tsBeginNs + durNs; }

    /** True for CPU-side events (Operator/Runtime). */
    bool onCpu() const
    {
        return kind == EventKind::Operator || kind == EventKind::Runtime;
    }

    /** True for GPU-side events (Kernel/Memcpy). */
    bool onGpu() const { return !onCpu(); }
};

/**
 * One sampled counter value (Chrome-trace "ph":"C"). Counter tracks
 * are keyed by name; per-entity series fold their labels into the
 * name (e.g. cluster.queue_depth{replica="0"}) so every series gets
 * its own Perfetto counter track.
 */
struct CounterEvent
{
    std::string name;

    /** Sample instant, ns from trace origin. */
    std::int64_t tsNs = 0;

    double value = 0.0;

    /** Track hint (thread/replica id); counters render per name. */
    int tid = 0;
};

/** A zero-duration marker (Chrome-trace "ph":"i"), e.g. a fault. */
struct InstantEvent
{
    std::string name;

    /** Marker instant, ns from trace origin. */
    std::int64_t tsNs = 0;

    int tid = 0;
};

} // namespace skipsim::trace

#endif // SKIPSIM_TRACE_EVENT_HH
