#include "trace/timeline.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace skipsim::trace
{

namespace
{

char
occupancyChar(double fraction)
{
    if (fraction <= 0.0)
        return ' ';
    if (fraction < 0.25)
        return '.';
    if (fraction < 0.5)
        return '-';
    if (fraction < 0.75)
        return '+';
    return '#';
}

/** Accumulate busy time per column for events matching a predicate. */
template <typename Pred>
std::vector<double>
occupancy(const Trace &trace, std::int64_t begin, std::int64_t end,
          std::size_t width, Pred pred)
{
    std::vector<double> busy(width, 0.0);
    double slice =
        static_cast<double>(end - begin) / static_cast<double>(width);
    for (const auto &ev : trace.events()) {
        if (!pred(ev) || ev.durNs <= 0)
            continue;
        std::int64_t ev_begin = std::max(ev.tsBeginNs, begin);
        std::int64_t ev_end = std::min(ev.tsEndNs(), end);
        if (ev_end <= ev_begin)
            continue;
        double col_begin =
            static_cast<double>(ev_begin - begin) / slice;
        double col_end = static_cast<double>(ev_end - begin) / slice;
        auto first = static_cast<std::size_t>(col_begin);
        auto last = std::min(width - 1,
                             static_cast<std::size_t>(col_end));
        for (std::size_t col = first; col <= last; ++col) {
            double lo = std::max(col_begin, static_cast<double>(col));
            double hi =
                std::min(col_end, static_cast<double>(col + 1));
            if (hi > lo)
                busy[col] += hi - lo;
        }
    }
    return busy;
}

std::string
row(const char *label, const std::vector<double> &busy)
{
    std::string out = strprintf("%-9s|", label);
    for (double fraction : busy)
        out.push_back(occupancyChar(fraction));
    out += "|\n";
    return out;
}

} // namespace

std::string
renderTimeline(const Trace &trace, const TimelineOptions &opts)
{
    if (trace.empty())
        fatal("renderTimeline: empty trace");
    if (opts.width == 0)
        fatal("renderTimeline: width must be positive");

    std::int64_t begin =
        opts.endNs > opts.beginNs ? opts.beginNs : trace.beginNs();
    std::int64_t end =
        opts.endNs > opts.beginNs ? opts.endNs : trace.endNs();
    if (end <= begin)
        fatal("renderTimeline: empty time window");

    auto cpu = occupancy(trace, begin, end, opts.width,
                         [](const TraceEvent &ev) {
                             return ev.kind == EventKind::Operator;
                         });
    auto api = occupancy(trace, begin, end, opts.width,
                         [](const TraceEvent &ev) {
                             return ev.kind == EventKind::Runtime;
                         });
    auto gpu = occupancy(trace, begin, end, opts.width,
                         [](const TraceEvent &ev) {
                             return ev.onGpu();
                         });

    std::string out;
    out += strprintf("timeline %s .. %s (%zu columns, %s/column)\n",
                     formatNs(static_cast<double>(begin)).c_str(),
                     formatNs(static_cast<double>(end)).c_str(),
                     opts.width,
                     formatNs(static_cast<double>(end - begin) /
                              static_cast<double>(opts.width))
                         .c_str());
    out += row("CPU ops", cpu);
    out += row("CUDA API", api);
    out += row("GPU", gpu);
    return out;
}

} // namespace skipsim::trace
