/**
 * @file
 * Plain-text timeline rendering of a trace: CPU-operator, CUDA-API
 * and GPU-stream occupancy rows over a fixed-width character axis.
 * Gives an at-a-glance view of the CPU-bound (dense CPU row, sparse
 * GPU row) vs GPU-bound (inverse) regimes without leaving the
 * terminal.
 */

#ifndef SKIPSIM_TRACE_TIMELINE_HH
#define SKIPSIM_TRACE_TIMELINE_HH

#include <string>

#include "trace/trace.hh"

namespace skipsim::trace
{

/** Options for timeline rendering. */
struct TimelineOptions
{
    /** Character columns of the rendered axis. */
    std::size_t width = 96;

    /** Render only [beginNs, endNs); 0/0 means the full trace. */
    std::int64_t beginNs = 0;
    std::int64_t endNs = 0;
};

/**
 * Render the trace as occupancy rows. Each column covers an equal time
 * slice; its character encodes the busy fraction of that slice:
 * ' ' (idle), '.' (<25%), '-' (<50%), '+' (<75%), '#' (>=75%).
 * @throws skipsim::FatalError on an empty trace or zero width.
 */
std::string renderTimeline(const Trace &trace,
                           const TimelineOptions &opts = {});

} // namespace skipsim::trace

#endif // SKIPSIM_TRACE_TIMELINE_HH
