#include "trace/trace.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace skipsim::trace
{

void
Trace::setMeta(const std::string &key, const std::string &value)
{
    for (auto &entry : _meta) {
        if (entry.first == key) {
            entry.second = value;
            return;
        }
    }
    _meta.emplace_back(key, value);
}

std::string
Trace::meta(const std::string &key) const
{
    for (const auto &entry : _meta) {
        if (entry.first == key)
            return entry.second;
    }
    return {};
}

std::uint64_t
Trace::add(TraceEvent event)
{
    event.id = _events.size();
    _events.push_back(std::move(event));
    return _events.back().id;
}

void
Trace::addCounter(CounterEvent counter)
{
    _counters.push_back(std::move(counter));
}

void
Trace::addInstant(InstantEvent instant)
{
    _instants.push_back(std::move(instant));
}

void
Trace::sortByTime()
{
    std::stable_sort(_events.begin(), _events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         if (a.tsBeginNs != b.tsBeginNs)
                             return a.tsBeginNs < b.tsBeginNs;
                         return a.id < b.id;
                     });
    std::stable_sort(_counters.begin(), _counters.end(),
                     [](const CounterEvent &a, const CounterEvent &b) {
                         return a.tsNs < b.tsNs;
                     });
    std::stable_sort(_instants.begin(), _instants.end(),
                     [](const InstantEvent &a, const InstantEvent &b) {
                         return a.tsNs < b.tsNs;
                     });
}

const TraceEvent &
Trace::byId(std::uint64_t id) const
{
    // Events may be reordered by sortByTime(); search for the id.
    if (id < _events.size() && _events[id].id == id)
        return _events[id];
    for (const auto &ev : _events) {
        if (ev.id == id)
            return ev;
    }
    fatal(strprintf("Trace: no event with id %llu",
                    static_cast<unsigned long long>(id)));
}

std::vector<TraceEvent>
Trace::ofKind(EventKind kind) const
{
    std::vector<TraceEvent> out;
    for (const auto &ev : _events) {
        if (ev.kind == kind)
            out.push_back(ev);
    }
    return out;
}

std::size_t
Trace::countOf(EventKind kind) const
{
    std::size_t n = 0;
    for (const auto &ev : _events) {
        if (ev.kind == kind)
            ++n;
    }
    return n;
}

std::int64_t
Trace::beginNs() const
{
    if (_events.empty())
        fatal("Trace::beginNs on empty trace");
    std::int64_t ts = _events.front().tsBeginNs;
    for (const auto &ev : _events)
        ts = std::min(ts, ev.tsBeginNs);
    return ts;
}

std::int64_t
Trace::endNs() const
{
    if (_events.empty())
        fatal("Trace::endNs on empty trace");
    std::int64_t ts = _events.front().tsEndNs();
    for (const auto &ev : _events)
        ts = std::max(ts, ev.tsEndNs());
    return ts;
}

std::vector<std::string>
Trace::validate() const
{
    std::vector<std::string> problems;

    std::map<std::uint64_t, int> launch_corr;
    std::map<std::uint64_t, int> kernel_corr;

    for (const auto &ev : _events) {
        if (ev.durNs < 0) {
            problems.push_back(strprintf(
                "event %llu '%s' has negative duration",
                static_cast<unsigned long long>(ev.id), ev.name.c_str()));
        }
        if (ev.onGpu() && ev.streamId < 0) {
            problems.push_back(strprintf(
                "GPU event %llu '%s' has no stream id",
                static_cast<unsigned long long>(ev.id), ev.name.c_str()));
        }
        if (ev.kind == EventKind::Runtime && ev.correlationId != 0)
            ++launch_corr[ev.correlationId];
        if (ev.onGpu() && ev.correlationId != 0)
            ++kernel_corr[ev.correlationId];
    }

    for (const auto &[corr, count] : launch_corr) {
        if (count > 1) {
            problems.push_back(strprintf(
                "correlation id %llu used by %d runtime calls",
                static_cast<unsigned long long>(corr), count));
        }
        auto it = kernel_corr.find(corr);
        if (it == kernel_corr.end())
            continue; // launch without kernel is legal (e.g. cudaMemset)
        if (it->second > 1) {
            problems.push_back(strprintf(
                "correlation id %llu matches %d kernels",
                static_cast<unsigned long long>(corr), it->second));
        }
    }
    for (const auto &[corr, count] : kernel_corr) {
        (void)count;
        if (!launch_corr.count(corr)) {
            problems.push_back(strprintf(
                "kernel correlation id %llu has no runtime launch",
                static_cast<unsigned long long>(corr)));
        }
    }
    return problems;
}

} // namespace skipsim::trace
