/**
 * @file
 * Trace container: owns TraceEvents in insertion order, assigns ids,
 * and offers kind-filtered views and basic integrity validation.
 */

#ifndef SKIPSIM_TRACE_TRACE_HH
#define SKIPSIM_TRACE_TRACE_HH

#include <string>
#include <vector>

#include "trace/event.hh"

namespace skipsim::trace
{

/**
 * An execution trace. Events keep their insertion ids; sortByTime()
 * orders them by (tsBeginNs, id) which downstream consumers (SKIP's
 * dependency-graph builder) rely on.
 */
class Trace
{
  public:
    Trace() = default;

    /** Optional free-form metadata (platform name, model, batch...). */
    void setMeta(const std::string &key, const std::string &value);

    /** @return metadata value or empty string when absent. */
    std::string meta(const std::string &key) const;

    /** All metadata keys in insertion order. */
    const std::vector<std::pair<std::string, std::string>> &
    metaEntries() const
    {
        return _meta;
    }

    /**
     * Append an event. The event's id field is overwritten with the
     * next dense id.
     * @return the assigned id.
     */
    std::uint64_t add(TraceEvent event);

    /** Append a sampled counter value ("ph":"C" in Chrome traces). */
    void addCounter(CounterEvent counter);

    /** Append an instant marker ("ph":"i" in Chrome traces). */
    void addInstant(InstantEvent instant);

    /** Counter samples in current order. */
    const std::vector<CounterEvent> &counters() const
    {
        return _counters;
    }

    /** Instant markers in current order. */
    const std::vector<InstantEvent> &instants() const
    {
        return _instants;
    }

    /**
     * Stable-sort events by (tsBeginNs, id); counters and instants
     * stable-sort by timestamp.
     */
    void sortByTime();

    std::size_t size() const { return _events.size(); }
    bool empty() const { return _events.empty(); }

    const std::vector<TraceEvent> &events() const { return _events; }

    /** Event lookup by dense id. @throws skipsim::FatalError when absent. */
    const TraceEvent &byId(std::uint64_t id) const;

    /** Copies of all events of one kind, in current order. */
    std::vector<TraceEvent> ofKind(EventKind kind) const;

    /** Count of events of one kind. */
    std::size_t countOf(EventKind kind) const;

    /** Earliest begin timestamp; @throws skipsim::FatalError when empty. */
    std::int64_t beginNs() const;

    /** Latest end timestamp; @throws skipsim::FatalError when empty. */
    std::int64_t endNs() const;

    /**
     * Validate internal consistency: non-negative durations, kernels
     * carrying stream ids, runtime launches with nonzero correlation
     * ids that match exactly one kernel.
     * @return list of human-readable problems (empty when valid).
     */
    std::vector<std::string> validate() const;

  private:
    std::vector<TraceEvent> _events;
    std::vector<CounterEvent> _counters;
    std::vector<InstantEvent> _instants;
    std::vector<std::pair<std::string, std::string>> _meta;
};

} // namespace skipsim::trace

#endif // SKIPSIM_TRACE_TRACE_HH
