#include "workload/builder.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/strutil.hh"

namespace skipsim::workload
{

namespace
{

constexpr double f16 = 2.0;
constexpr double f32 = 4.0;
constexpr double idx64 = 8.0;

using hw::KernelClass;
using hw::KernelWork;

/** @name Kernel work constructors (shapes -> flops/bytes) @{ */

KernelWork
gemmWork(double m, double n, double k)
{
    KernelWork w;
    w.cls = KernelClass::Gemm;
    w.flops = 2.0 * m * n * k;
    w.bytes = f16 * (m * k + k * n + m * n);
    w.rows = m;
    return w;
}

KernelWork
bmmWork(double b, double m, double n, double k)
{
    KernelWork w;
    w.cls = KernelClass::Gemm;
    w.flops = 2.0 * b * m * n * k;
    w.bytes = f16 * b * (m * k + k * n + m * n);
    w.rows = b * m;
    return w;
}

KernelWork
ewWork(double elems, double reads, double writes, double dtype = f16)
{
    KernelWork w;
    w.cls = KernelClass::Elementwise;
    w.flops = elems;
    w.bytes = elems * dtype * (reads + writes);
    return w;
}

KernelWork
castWork(double elems, double from, double to)
{
    KernelWork w;
    w.cls = KernelClass::Elementwise;
    w.flops = elems;
    w.bytes = elems * (from + to);
    return w;
}

KernelWork
softmaxWork(double rows, double cols, double dtype)
{
    KernelWork w;
    w.cls = KernelClass::Softmax;
    w.flops = 5.0 * rows * cols;
    w.bytes = rows * cols * dtype * 2.0;
    return w;
}

KernelWork
normWork(double rows, double width, double dtype)
{
    KernelWork w;
    w.cls = KernelClass::Norm;
    w.flops = 8.0 * rows * width;
    w.bytes = rows * width * dtype * 2.0 + width * 2.0 * f16;
    return w;
}

KernelWork
copyWork(double elems)
{
    KernelWork w;
    w.cls = KernelClass::Copy;
    w.bytes = elems * f16 * 2.0;
    return w;
}

KernelWork
embeddingWork(double rows, double width)
{
    KernelWork w;
    w.cls = KernelClass::Embedding;
    w.bytes = rows * (width * f16 * 2.0 + idx64);
    return w;
}

KernelWork
reduceWork(double in_elems, double out_elems, double dtype)
{
    KernelWork w;
    w.cls = KernelClass::Reduction;
    w.flops = in_elems;
    w.bytes = in_elems * dtype + out_elems * dtype;
    return w;
}

KernelWork
whereWork(double elems)
{
    KernelWork w;
    w.cls = KernelClass::Elementwise;
    w.flops = elems;
    w.bytes = elems * (f16 * 3.0 + 1.0);
    return w;
}

KernelWork
flashAttentionWork(double b, double heads, double s, double hd,
                   double hidden)
{
    KernelWork w;
    w.cls = KernelClass::Attention;
    w.flops = 4.0 * b * heads * s * s * hd; // QK^T and PV matmuls
    // IO-aware: only Q, K, V, O round trips plus the log-sum-exp rows.
    w.bytes = 4.0 * b * s * hidden * f16 + b * heads * s * f32;
    w.rows = b * heads * s;
    return w;
}

/** @} */

std::string
num(double v)
{
    return strprintf("%lld", static_cast<long long>(v));
}

/** Builds one forward-pass graph for a model/options pair. */
class GraphEmitter
{
  public:
    GraphEmitter(const ModelConfig &model, const BuildOptions &opts)
        : m(model), o(opts),
          B(opts.batch), S(opts.seqLen), H(model.hidden),
          I(model.intermediate), NH(model.heads), KVH(model.kvHeads),
          HD(model.headDim()), TP(opts.tensorParallel)
    {
        if (opts.batch <= 0)
            fatal("buildPrefillGraph: batch must be positive");
        if (opts.seqLen <= 0)
            fatal("buildPrefillGraph: seqLen must be positive");
        if (TP < 1)
            fatal("buildPrefillGraph: tensorParallel must be >= 1");
        if (TP > 1) {
            if (model.heads % opts.tensorParallel != 0 ||
                model.intermediate % opts.tensorParallel != 0 ||
                model.vocab % opts.tensorParallel != 0) {
                fatal("buildPrefillGraph: heads, intermediate and vocab "
                      "must be divisible by the tensor-parallel degree");
            }
            // Per-rank shards: attention heads, grouped KV heads
            // (replicated when fewer than the degree) and MLP columns.
            NH /= TP;
            KVH = std::max(1.0, KVH / TP);
            I /= TP;
        }
    }

    OperatorGraph
    buildPrefill()
    {
        OperatorGraph graph;
        emitInputTransfer(graph.roots);
        if (m.family == ModelFamily::EncoderOnly) {
            emitEncoderPrologue(graph.roots);
            for (int i = 0; i < m.layers; ++i)
                emitEncoderLayer(graph.roots);
            emitEncoderEpilogue(graph.roots);
        } else {
            emitDecoderPrologue(graph.roots);
            for (int i = 0; i < m.layers; ++i)
                emitDecoderLayer(graph.roots);
            emitDecoderEpilogue(graph.roots);
        }
        return graph;
    }

  private:
    const ModelConfig &m;
    const BuildOptions &o;
    double B, S, H, I, NH, KVH, HD;
    int TP;

    /** Per-rank attention width (NH_local * head_dim). */
    double attnWidth() const { return NH * HD; }

    /** All-reduce of a [rows, H] activation across the TP group. */
    void
    emitAllReduce(std::vector<OpNode> &ops, double rows) const
    {
        if (TP <= 1)
            return;
        KernelWork w;
        w.cls = KernelClass::Collective;
        // Ring all-reduce wire volume per rank: 2 (TP-1)/TP x payload.
        w.bytes = 2.0 * (TP - 1.0) / TP * rows * H * f16;
        w.flops = rows * H;
        ops.push_back(makeParentOp(
            "c10d::allreduce_", cost(opParentCpuNs),
            {makeKernelOp("nccl::all_reduce", cost(opLeafCpuNs),
                          "nccl_all_reduce_f16", w)}));
    }

    /**
     * Per-instance kernel-variant stream. Real CUDA elementwise and
     * copy kernels are template instantiations selected by pointer
     * alignment and vector width, so the "same" site can run _v4, _v2
     * or _v1 variants across layers. This deterministic stream
     * reproduces that: it is what keeps long kernel chains from being
     * trivially periodic, exactly as in real eager traces.
     */
    mutable Rng variantRng{0x5eedc0dedeadbeefULL};

    std::string
    variantSuffix() const
    {
        std::uint64_t roll = variantRng.below(100);
        if (roll < 92)
            return "_v4";
        if (roll < 98)
            return "_v2";
        return "_v1";
    }

    bool flash() const { return o.mode == ExecMode::FlashAttention2; }

    double
    cost(double base_ns) const
    {
        return base_ns * o.cpuCostScale;
    }

    /** @name Small op factories @{ */

    OpNode
    view(const std::string &name) const
    {
        return makeCpuOp(name, cost(opViewCpuNs));
    }

    OpNode
    leaf(const std::string &op, const std::string &kernel,
         KernelWork work) const
    {
        return makeKernelOp(op, cost(opLeafCpuNs), kernel, work);
    }

    OpNode
    parent(const std::string &op, std::vector<OpNode> children) const
    {
        return makeParentOp(op, cost(opParentCpuNs), std::move(children));
    }

    /** aten::linear -> { aten::t, aten::addmm[gemm] }. */
    OpNode
    linear(double mrows, double k, double n) const
    {
        std::string kname =
            "gemm_f16_" + num(mrows) + "x" + num(n) + "x" + num(k);
        std::vector<OpNode> kids;
        kids.push_back(view("aten::t"));
        kids.push_back(leaf("aten::addmm", kname, gemmWork(mrows, n, k)));
        return parent("aten::linear", std::move(kids));
    }

    /** aten::matmul -> { aten::bmm[gemm] } for 4D attention matmuls. */
    OpNode
    matmulBmm(double batch, double mrows, double n, double k) const
    {
        std::string kname = "bmm_f16_" + num(batch) + "x" + num(mrows) +
            "x" + num(n) + "x" + num(k);
        std::vector<OpNode> kids;
        kids.push_back(view("aten::expand"));
        kids.push_back(
            leaf("aten::bmm", kname, bmmWork(batch, mrows, n, k)));
        return parent("aten::matmul", std::move(kids));
    }

    OpNode
    elementwise(const std::string &aten, const std::string &tag,
                KernelWork work, double elems) const
    {
        (void)elems;
        return leaf(aten, "elementwise_" + tag + variantSuffix(), work);
    }

    OpNode
    contiguous(double elems) const
    {
        std::vector<OpNode> kids;
        kids.push_back(leaf("aten::clone",
                            "copy_f16" + variantSuffix(),
                            copyWork(elems)));
        return parent("aten::contiguous", std::move(kids));
    }

    OpNode
    castTo(double elems, double from, double to) const
    {
        std::string tag = from < to ? "cast_f16f32" : "cast_f32f16";
        return leaf("aten::to", tag + variantSuffix(),
                    castWork(elems, from, to));
    }

    /**
     * LayerNorm (fp32 compute with casts) or RMSNorm (cast + variance
     * reduction + apply). Both expand to 3 kernels, as fp16 HF models
     * upcast normalization to fp32.
     */
    void
    emitNorm(std::vector<OpNode> &ops, double rows) const
    {
        double elems = rows * H;
        if (m.norm == NormKind::LayerNorm) {
            std::vector<OpNode> kids;
            kids.push_back(castTo(elems, f16, f32));
            kids.push_back(leaf("aten::native_layer_norm",
                                "layer_norm_f32",
                                normWork(rows, H, f32)));
            kids.push_back(castTo(elems, f32, f16));
            ops.push_back(parent("aten::layer_norm", std::move(kids)));
        } else {
            ops.push_back(castTo(elems, f16, f32));
            ops.push_back(leaf("aten::mean", "reduce_variance_f32",
                               reduceWork(elems, rows, f32)));
            ops.push_back(elementwise("aten::mul", "rmsnorm_apply_f32",
                                      ewWork(elems, 2, 1, f32), elems));
        }
    }

    /** @} */

    void
    emitInputTransfer(std::vector<OpNode> &ops) const
    {
        // Token ids (+ attention mask for encoders) staged to the GPU.
        double bytes = B * S * idx64;
        if (m.family == ModelFamily::EncoderOnly)
            bytes *= 2.0;
        OpNode node;
        node.name = "aten::to";
        node.cpuNs = cost(opLeafCpuNs);
        KernelLaunch launch;
        launch.kernelName = "memcpy_h2d";
        launch.isMemcpy = true;
        KernelWork w;
        w.cls = KernelClass::Memcpy;
        w.bytes = bytes;
        launch.work.push_back(w);
        node.launches.push_back(std::move(launch));
        ops.push_back(std::move(node));
    }

    // ---------------- Encoder (BERT / XLM-R) ----------------

    void
    emitEncoderPrologue(std::vector<OpNode> &ops) const
    {
        double rows = B * S;
        double elems = rows * H;
        // Embedding gathers are distinct template instantiations per
        // table (word / position / token-type differ in table size).
        auto gather = [&](const char *label, int table) {
            return leaf(std::string("aten::embedding(") + label + ")",
                        "embedding_gather_" + num(table) + "t_" +
                            num(rows) + "x" + num(H),
                        embeddingWork(rows, H));
        };
        ops.push_back(gather("word", m.vocab));
        ops.push_back(gather("position", 512));
        ops.push_back(gather("token_type", 2));
        ops.push_back(elementwise("aten::add", "add_f16",
                                  ewWork(elems, 2, 1), elems));
        ops.push_back(elementwise("aten::add", "add_f16",
                                  ewWork(elems, 2, 1), elems));
        // Embedding LayerNorm runs natively in fp16 in HF BERT.
        ops.push_back(leaf("aten::native_layer_norm", "layer_norm_f16",
                           normWork(rows, H, f16)));
        // Extended attention mask: (1 - mask) * min_value, cast to f16.
        double mask_elems = B * S;
        ops.push_back(elementwise("aten::rsub", "rsub_f32",
                                  ewWork(mask_elems, 1, 1, f32),
                                  mask_elems));
        ops.push_back(elementwise("aten::mul", "mul_f32",
                                  ewWork(mask_elems, 1, 1, f32),
                                  mask_elems));
        ops.push_back(castTo(mask_elems, f32, f16));
    }

    void
    emitEncoderLayer(std::vector<OpNode> &ops) const
    {
        double rows = B * S;
        double hid_elems = rows * H;
        double bheads = B * NH;
        double score_elems = bheads * S * S;

        // Self-attention projections (column-parallel under TP).
        double attn_elems = rows * attnWidth();
        for (const char *label : {"q", "k", "v"}) {
            (void)label;
            ops.push_back(linear(rows, H, attnWidth()));
            ops.push_back(view("aten::view"));
            ops.push_back(view("aten::permute"));
            if (!flash())
                ops.push_back(contiguous(attn_elems));
        }

        if (flash()) {
            ops.push_back(parent(
                "flash_attn::_flash_attn_forward",
                {leaf("flash_attn::fwd",
                      "flash_fwd_kernel_f16_hd" + num(HD),
                      flashAttentionWork(B, NH, S, HD, attnWidth()))}));
            ops.push_back(view("aten::view"));
        } else {
            ops.push_back(matmulBmm(bheads, S, S, HD));
            ops.push_back(elementwise("aten::div", "div_f16",
                                      ewWork(score_elems, 1, 1),
                                      score_elems));
            ops.push_back(elementwise("aten::add", "add_f16",
                                      ewWork(score_elems, 2, 1),
                                      score_elems));
            // BERT keeps softmax in fp16.
            ops.push_back(parent(
                "aten::softmax",
                {leaf("aten::_softmax", "softmax_f16",
                      softmaxWork(bheads * S, S, f16))}));
            ops.push_back(matmulBmm(bheads, S, HD, S));
            ops.push_back(view("aten::permute"));
            ops.push_back(contiguous(attn_elems));
            ops.push_back(view("aten::view"));
        }

        // Output projection (row-parallel) + residual + LN (fp32).
        ops.push_back(linear(rows, attnWidth(), H));
        emitAllReduce(ops, rows);
        ops.push_back(elementwise("aten::add", "add_f16",
                                  ewWork(hid_elems, 2, 1), hid_elems));
        emitNorm(ops, rows);

        // MLP.
        ops.push_back(linear(rows, H, I));
        double mlp_elems = rows * I;
        ops.push_back(elementwise("aten::gelu", "gelu_f16",
                                  ewWork(mlp_elems, 1, 1), mlp_elems));
        ops.push_back(linear(rows, I, H));
        emitAllReduce(ops, rows);
        ops.push_back(elementwise("aten::add", "add_f16",
                                  ewWork(hid_elems, 2, 1), hid_elems));
        emitNorm(ops, rows);
    }

    void
    emitEncoderEpilogue(std::vector<OpNode> &ops) const
    {
        if (!m.pooler)
            return;
        // Pooler: dense over the [CLS] token + tanh.
        ops.push_back(view("aten::select"));
        ops.push_back(linear(B, H, H));
        ops.push_back(elementwise("aten::tanh", "tanh_f16",
                                  ewWork(B * H, 1, 1), B * H));
    }

    // ---------------- Decoder (GPT2 / Llama / Gemma / 7B) -------------

    bool
    gpt2Style() const
    {
        // Learned positions + fused QKV + where-style causal mask.
        return !m.rotary;
    }

    void
    emitDecoderPrologue(std::vector<OpNode> &ops) const
    {
        double rows = B * S;
        double elems = rows * H;
        ops.push_back(leaf("aten::embedding(word)",
                           "embedding_gather_" + num(m.vocab) + "t_" +
                               num(rows) + "x" + num(H),
                           embeddingWork(rows, H)));
        if (gpt2Style()) {
            ops.push_back(
                leaf("aten::embedding(position)",
                     "embedding_gather_1024t_" + num(S) + "x" + num(H),
                     embeddingWork(S, H)));
            ops.push_back(elementwise("aten::add", "add_f16",
                                      ewWork(elems, 2, 1), elems));
        } else {
            // Rotary cache: cos/sin tables for the sequence.
            double rope_elems = S * HD;
            ops.push_back(elementwise("aten::cos", "cos_f32",
                                      ewWork(rope_elems, 1, 1, f32),
                                      rope_elems));
            ops.push_back(elementwise("aten::sin", "sin_f32",
                                      ewWork(rope_elems, 1, 1, f32),
                                      rope_elems));
            // Causal additive mask.
            double mask_elems = S * S;
            ops.push_back(elementwise("aten::full", "fill_f32",
                                      ewWork(mask_elems, 0, 1, f32),
                                      mask_elems));
        }
    }

    void
    emitRope(std::vector<OpNode> &ops, double rows_heads) const
    {
        // rotate_half + q*cos + rot*sin + add, for one of Q or K.
        double elems = rows_heads * HD;
        ops.push_back(parent("aten::cat",
                             {leaf("aten::neg",
                                   "copy_rotate_half" + variantSuffix(),
                                   copyWork(elems))}));
        ops.push_back(elementwise("aten::mul", "mul_f16",
                                  ewWork(elems, 2, 1), elems));
        ops.push_back(elementwise("aten::mul", "mul_f16",
                                  ewWork(elems, 2, 1), elems));
        ops.push_back(elementwise("aten::add", "add_f16",
                                  ewWork(elems, 2, 1), elems));
    }

    void
    emitDecoderLayer(std::vector<OpNode> &ops) const
    {
        double rows = B * S;
        double hid_elems = rows * H;
        double bheads = B * NH;
        double kv_dim = KVH * HD;
        double score_elems = bheads * S * S;
        double score_rows = bheads * S;

        // Pre-attention norm.
        emitNorm(ops, rows);

        double attn_elems = rows * attnWidth();

        // QKV projections.
        if (m.fusedQkv) {
            double qkv_n = attnWidth() + 2.0 * kv_dim;
            std::vector<OpNode> kids;
            kids.push_back(view("aten::view"));
            kids.push_back(leaf("aten::addmm",
                                "gemm_f16_" + num(rows) + "x" +
                                    num(qkv_n) + "x" + num(H),
                                gemmWork(rows, qkv_n, H)));
            ops.push_back(parent("transformers::Conv1D", std::move(kids)));
            ops.push_back(view("aten::split"));
            for (int i = 0; i < 3; ++i)
                ops.push_back(contiguous(
                    rows * (i == 0 ? attnWidth() : kv_dim)));
            ops.push_back(view("aten::view"));
            ops.push_back(contiguous(attn_elems)); // head layout for bmm
        } else {
            ops.push_back(linear(rows, H, attnWidth()));  // Q
            ops.push_back(linear(rows, H, kv_dim));       // K
            ops.push_back(linear(rows, H, kv_dim));       // V
            ops.push_back(view("aten::view"));
            ops.push_back(view("aten::transpose"));
        }

        if (m.rotary) {
            emitRope(ops, bheads * S);
            emitRope(ops, B * KVH * S);
        }

        bool gqa = m.kvHeads < m.heads;

        if (flash()) {
            ops.push_back(parent(
                "flash_attn::_flash_attn_forward",
                {leaf("flash_attn::fwd",
                      "flash_fwd_kernel_f16_hd" + num(HD),
                      flashAttentionWork(B, NH, S, HD, attnWidth()))}));
            ops.push_back(view("aten::view"));
        } else {
            if (gqa) {
                // repeat_kv expands grouped K/V to full head count.
                double kv_elems = B * KVH * S * HD *
                    (static_cast<double>(m.heads) / m.kvHeads);
                ops.push_back(contiguous(kv_elems));
                ops.push_back(contiguous(kv_elems));
            }
            ops.push_back(matmulBmm(bheads, S, S, HD));
            ops.push_back(elementwise("aten::div", "div_f16",
                                      ewWork(score_elems, 1, 1),
                                      score_elems));
            if (gpt2Style()) {
                ops.push_back(elementwise("aten::full_like",
                                          "fill_f16",
                                          ewWork(score_elems, 0, 1),
                                          score_elems));
                ops.push_back(parent(
                    "aten::where",
                    {leaf("aten::_s_where",
                          "elementwise_where_f16" + variantSuffix(),
                          whereWork(score_elems))}));
            } else {
                ops.push_back(elementwise("aten::add", "add_f32",
                                          ewWork(score_elems, 2, 1, f32),
                                          score_elems));
            }
            // Decoder softmax upcasts to fp32 (HF GPT2/Llama).
            ops.push_back(castTo(score_elems, f16, f32));
            ops.push_back(parent(
                "aten::softmax",
                {leaf("aten::_softmax", "softmax_f32",
                      softmaxWork(score_rows, S, f32))}));
            ops.push_back(castTo(score_elems, f32, f16));
            ops.push_back(matmulBmm(bheads, S, HD, S));
            ops.push_back(view("aten::permute"));
            ops.push_back(contiguous(attn_elems));
        }

        // Output projection (row-parallel under TP) + residual.
        if (m.fusedQkv) {
            std::vector<OpNode> kids;
            kids.push_back(view("aten::view"));
            kids.push_back(leaf("aten::addmm",
                                "gemm_f16_" + num(rows) + "x" + num(H) +
                                    "x" + num(attnWidth()),
                                gemmWork(rows, H, attnWidth())));
            ops.push_back(parent("transformers::Conv1D", std::move(kids)));
        } else {
            ops.push_back(linear(rows, attnWidth(), H));
        }
        emitAllReduce(ops, rows);
        ops.push_back(elementwise("aten::add", "add_f16",
                                  ewWork(hid_elems, 2, 1), hid_elems));

        // Pre-MLP norm.
        emitNorm(ops, rows);

        // MLP.
        double mlp_elems = rows * I;
        switch (m.activation) {
          case Activation::Gelu:
            ops.push_back(linear(rows, H, I));
            ops.push_back(elementwise("aten::gelu", "gelu_f16",
                                      ewWork(mlp_elems, 1, 1), mlp_elems));
            ops.push_back(linear(rows, I, H));
            break;
          case Activation::GeluNew: {
            ops.push_back(linear(rows, H, I));
            // tanh-approximated GELU, expanded op-by-op as HF GPT2 does.
            const char *stages[] = {"pow", "mul", "add", "mul",
                                    "tanh", "add", "mul", "mul"};
            for (const char *stage : stages) {
                ops.push_back(elementwise(
                    std::string("aten::") + stage, stage + std::string(
                        "_f16"),
                    ewWork(mlp_elems, 1, 1), mlp_elems));
            }
            ops.push_back(linear(rows, I, H));
            break;
          }
          case Activation::SwiGlu:
          case Activation::GeGlu: {
            ops.push_back(linear(rows, H, I)); // gate
            ops.push_back(linear(rows, H, I)); // up
            const char *act =
                m.activation == Activation::SwiGlu ? "silu" : "gelu";
            ops.push_back(elementwise(std::string("aten::") + act,
                                      act + std::string("_f16"),
                                      ewWork(mlp_elems, 1, 1), mlp_elems));
            ops.push_back(elementwise("aten::mul", "mul_f16",
                                      ewWork(mlp_elems, 2, 1), mlp_elems));
            ops.push_back(linear(rows, I, H)); // down
            break;
          }
        }
        emitAllReduce(ops, rows);
        ops.push_back(elementwise("aten::add", "add_f16",
                                  ewWork(hid_elems, 2, 1), hid_elems));
    }

    void
    emitDecoderEpilogue(std::vector<OpNode> &ops) const
    {
        double rows = B * S;
        emitNorm(ops, rows);
        // LM head over the full sequence (column-parallel under TP),
        // then last-position logits.
        ops.push_back(linear(rows, H, m.vocab / TP));
        if (TP > 1) {
            KernelWork w;
            w.cls = KernelClass::Collective;
            w.bytes = (TP - 1.0) / TP * rows * m.vocab * f16;
            w.flops = 0.0;
            ops.push_back(makeParentOp(
                "c10d::allgather_", cost(opParentCpuNs),
                {makeKernelOp("nccl::all_gather", cost(opLeafCpuNs),
                              "nccl_all_gather_f16", w)}));
        }
        ops.push_back(parent("aten::select",
                             {leaf("aten::clone",
                                   "copy_f16" + variantSuffix(),
                                   copyWork(B * m.vocab))}));
        ops.push_back(leaf("aten::argmax", "reduce_argmax",
                           reduceWork(B * m.vocab, B, f16)));
    }
};

/**
 * Inductor-style compile transform: drop layout copies, fuse runs of
 * memory-bound kernels into Triton kernels (reducing intermediate
 * round trips), optionally capture everything into one CUDA graph, and
 * optionally apply autotuned-GEMM speedups.
 */
class CompileTransform
{
  public:
    CompileTransform(bool cuda_graph, bool autotune)
        : cudaGraph(cuda_graph), autotune(autotune)
    {}

    OperatorGraph
    run(const OperatorGraph &eager, double cpu_cost_scale)
    {
        // 1. Flatten the eager launch list; drop copies; collect memcpys.
        std::vector<KernelLaunch> kernels;
        std::vector<KernelLaunch> memcpys;
        eager.forEachLaunch([&](const KernelLaunch &launch) {
            if (launch.isMemcpy) {
                memcpys.push_back(launch);
                return;
            }
            bool all_copies = true;
            for (const auto &w : launch.work) {
                if (w.cls != KernelClass::Copy)
                    all_copies = false;
            }
            if (all_copies)
                return; // layout copies are compiled away
            kernels.push_back(launch);
        });

        // 2. Fuse consecutive memory-bound kernels.
        std::vector<KernelLaunch> fused = fuseRuns(kernels);

        // 3. Autotune: faster GEMM/attention kernels.
        if (autotune) {
            for (auto &launch : fused) {
                for (auto &w : launch.work) {
                    if (w.cls == KernelClass::Gemm ||
                        w.cls == KernelClass::Attention) {
                        w.flops /= autotuneGemmSpeedup;
                    }
                }
            }
        }

        // 4. Rebuild the operator graph.
        OperatorGraph out;
        for (const auto &mc : memcpys) {
            OpNode node;
            node.name = "aten::to";
            node.cpuNs = opLeafCpuNs * cpu_cost_scale;
            node.launches.push_back(mc);
            out.roots.push_back(std::move(node));
        }

        double wrapper_cpu =
            static_cast<double>(eager.numOps()) * wrapperPerOpCpuNs;

        if (cudaGraph) {
            OpNode node;
            node.name = "CUDAGraph::replay";
            node.cpuNs =
                (graphReplayCpuNs + wrapper_cpu) * cpu_cost_scale;
            KernelLaunch graph_launch;
            graph_launch.kernelName = "cuda_graph_exec";
            for (const auto &launch : fused) {
                for (const auto &w : launch.work)
                    graph_launch.work.push_back(w);
            }
            node.launches.push_back(std::move(graph_launch));
            out.roots.push_back(std::move(node));
        } else {
            OpNode root;
            root.name = "CompiledModule::forward";
            root.cpuNs =
                (compiledRootCpuNs + wrapper_cpu) * cpu_cost_scale;
            for (const auto &launch : fused) {
                OpNode node;
                node.name = "inductor::launch";
                node.cpuNs = opCompiledCpuNs * cpu_cost_scale;
                node.launches.push_back(launch);
                root.children.push_back(std::move(node));
            }
            out.roots.push_back(std::move(root));
        }
        return out;
    }

  private:
    bool cudaGraph;
    bool autotune;

    static constexpr double fusionByteSaving = 0.30; ///< fused-run bytes x
    static constexpr double autotuneGemmSpeedup = 1.15;
    static constexpr double graphReplayCpuNs = 9000.0;
    static constexpr double compiledRootCpuNs = 16000.0;

    /**
     * Per-eager-operator guard/wrapper CPU cost every compiled
     * iteration still pays (Dynamo guards, Python wrapper, static
     * input staging). This is what keeps compiled small-model
     * inference from collapsing to pure GPU time.
     */
    static constexpr double wrapperPerOpCpuNs = 2800.0;

    static bool
    fusable(const KernelLaunch &launch)
    {
        for (const auto &w : launch.work) {
            switch (w.cls) {
              case KernelClass::Elementwise:
              case KernelClass::Softmax:
              case KernelClass::Norm:
              case KernelClass::Reduction:
              case KernelClass::Embedding:
                break;
              default:
                return false;
            }
        }
        return true;
    }

    std::vector<KernelLaunch>
    fuseRuns(const std::vector<KernelLaunch> &kernels)
    {
        std::vector<KernelLaunch> out;
        std::size_t i = 0;
        int fused_id = 0;
        while (i < kernels.size()) {
            if (!fusable(kernels[i])) {
                out.push_back(kernels[i]);
                ++i;
                continue;
            }
            std::size_t j = i;
            KernelWork merged;
            merged.cls = KernelClass::Elementwise;
            while (j < kernels.size() && fusable(kernels[j])) {
                for (const auto &w : kernels[j].work) {
                    merged.flops += w.flops;
                    merged.bytes += w.bytes;
                    if (w.cls == KernelClass::Softmax ||
                        w.cls == KernelClass::Reduction ||
                        w.cls == KernelClass::Norm) {
                        merged.cls = KernelClass::Softmax;
                    }
                }
                ++j;
            }
            if (j - i == 1) {
                out.push_back(kernels[i]);
            } else {
                merged.bytes *= fusionByteSaving;
                KernelLaunch launch;
                launch.kernelName =
                    "triton_fused_" + std::to_string(fused_id++) + "_n" +
                    std::to_string(j - i);
                launch.work.push_back(merged);
                out.push_back(std::move(launch));
            }
            i = j;
        }
        return out;
    }
};

} // namespace

OperatorGraph
buildPrefillGraph(const ModelConfig &model, const BuildOptions &opts)
{
    switch (opts.mode) {
      case ExecMode::Eager:
      case ExecMode::FlashAttention2: {
        GraphEmitter emitter(model, opts);
        return emitter.buildPrefill();
      }
      case ExecMode::CompileDefault:
      case ExecMode::CompileReduceOverhead:
      case ExecMode::CompileMaxAutotune: {
        BuildOptions eager_opts = opts;
        eager_opts.mode = ExecMode::Eager;
        GraphEmitter emitter(model, eager_opts);
        OperatorGraph eager = emitter.buildPrefill();
        bool cuda_graph = opts.mode != ExecMode::CompileDefault;
        bool autotune = opts.mode == ExecMode::CompileMaxAutotune;
        CompileTransform transform(cuda_graph, autotune);
        return transform.run(eager, opts.cpuCostScale);
      }
    }
    panic("buildPrefillGraph: invalid ExecMode");
}

OperatorGraph
buildDecodeStepGraph(const ModelConfig &model, const BuildOptions &opts,
                     int context_len)
{
    if (context_len <= 0)
        fatal("buildDecodeStepGraph: context_len must be positive");
    // A decode step is a sequence-length-1 forward over a KV cache of
    // context_len tokens. Reuse the prefill emitter with S=1, then the
    // attention matmuls see the full context; we approximate by
    // building with S=1 and adding the KV-sized attention work via a
    // dedicated graph. For the paper's prefill-centric evaluation this
    // is an extension point; the dominant effects (per-token launch
    // overhead, memory-bound attention) are captured.
    BuildOptions step = opts;
    step.seqLen = 1;
    OperatorGraph graph = buildPrefillGraph(model, step);

    // Patch attention matmul and softmax work to cover the context.
    double b = opts.batch;
    double nh = model.heads;
    double hd = model.headDim();
    double ctx = context_len;
    graph.forEachOp([&](const OpNode &) {});
    for (auto &root : graph.roots) {
        std::function<void(OpNode &)> patch = [&](OpNode &node) {
            for (auto &child : node.children)
                patch(child);
            for (auto &launch : node.launches) {
                for (auto &w : launch.work) {
                    if (w.cls == KernelClass::Attention) {
                        w.flops = 4.0 * b * nh * ctx * hd;
                        w.bytes = 2.0 * b * ctx * model.hidden * 2.0;
                    }
                }
                if (contains(launch.kernelName, "bmm_f16_")) {
                    for (auto &w : launch.work) {
                        w.flops = 2.0 * b * nh * ctx * hd;
                        w.bytes = 2.0 * b * nh * (ctx * hd + ctx + hd);
                    }
                }
                if (contains(launch.kernelName, "softmax_")) {
                    for (auto &w : launch.work) {
                        w.flops = 5.0 * b * nh * ctx;
                        w.bytes = b * nh * ctx * 4.0 * 2.0;
                    }
                }
            }
        };
        patch(root);
    }
    return graph;
}

OperatorGraph
buildNullKernelGraph(int count)
{
    if (count <= 0)
        fatal("buildNullKernelGraph: count must be positive");
    OperatorGraph graph;
    for (int i = 0; i < count; ++i) {
        KernelWork w;
        w.cls = KernelClass::Null;
        // A tight C++ launch loop: negligible framework cost per call.
        graph.roots.push_back(
            makeKernelOp("benchmark::launch_null", 500.0, "nullKernel",
                         w));
    }
    return graph;
}

} // namespace skipsim::workload
