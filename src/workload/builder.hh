/**
 * @file
 * Operator-graph builders: expand a ModelConfig into the ATen operator
 * tree and GPU kernel launch sequence a PyTorch forward pass executes,
 * under each execution mode (eager, FlashAttention2, torch.compile
 * variants). Kernel sequences follow the HuggingFace implementations:
 * e.g. GPT2's tanh-GELU expands into eight pointwise kernels and its
 * attention upcasts to fp32 around softmax, while BERT's softmax stays
 * in fp16 — details that drive both kernel counts (K_eager) and the
 * memory traffic that separates the platforms.
 */

#ifndef SKIPSIM_WORKLOAD_BUILDER_HH
#define SKIPSIM_WORKLOAD_BUILDER_HH

#include "workload/exec_mode.hh"
#include "workload/model_config.hh"
#include "workload/op_graph.hh"

namespace skipsim::workload
{

/** Parameters of one inference invocation. */
struct BuildOptions
{
    int batch = 1;
    int seqLen = 512;
    ExecMode mode = ExecMode::Eager;

    /**
     * Tensor-parallel degree (Megatron-style): attention heads and MLP
     * columns are sharded across this many GPUs, with one NCCL
     * all-reduce after the attention output and MLP down projections.
     * The built graph is ONE rank's view (all ranks are symmetric).
     * Requires heads, intermediate and vocab divisible by the degree,
     * and a platform with a peer GPU link (GpuModel::nvlinkGBs > 0).
     */
    int tensorParallel = 1;

    /**
     * Scale on framework CPU per-operator costs (1.0 = calibrated
     * PyTorch eager dispatch on the reference CPU). Exposed for
     * ablation studies.
     */
    double cpuCostScale = 1.0;
};

/** @name Framework CPU cost constants (reference CPU, ns)
 * Calibrated so BERT-base BS=1 prefill lands in the low-millisecond
 * range on the Intel reference platform, as measured eager-mode
 * HuggingFace inference does.
 * @{ */
constexpr double opParentCpuNs = 10000.0; ///< composite op (aten::linear)
constexpr double opLeafCpuNs = 7000.0;    ///< kernel-launching leaf op
constexpr double opViewCpuNs = 3000.0;    ///< metadata-only op
constexpr double opCompiledCpuNs = 2200.0; ///< per-launch cost, compiled
/** @} */

/**
 * Build the prefill (TTFT) forward-pass graph.
 * @param model architecture descriptor.
 * @param opts batch/sequence/mode.
 * @throws skipsim::FatalError on non-positive batch or sequence.
 */
OperatorGraph buildPrefillGraph(const ModelConfig &model,
                                const BuildOptions &opts);

/**
 * Build a single autoregressive decode step with a KV cache holding
 * @p context_len tokens (extension beyond the paper's prefill-only
 * evaluation).
 */
OperatorGraph buildDecodeStepGraph(const ModelConfig &model,
                                   const BuildOptions &opts,
                                   int context_len);

/**
 * Build the nullKernel microbenchmark graph: @p count back-to-back
 * empty-kernel launches (paper Sec. V-A / Table V).
 */
OperatorGraph buildNullKernelGraph(int count);

} // namespace skipsim::workload

#endif // SKIPSIM_WORKLOAD_BUILDER_HH
