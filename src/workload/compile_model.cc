#include "workload/compile_model.hh"

#include <set>
#include <string>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace skipsim::workload
{

std::size_t
uniqueGemmShapes(const OperatorGraph &graph)
{
    std::set<std::string> shapes;
    graph.forEachLaunch([&](const KernelLaunch &launch) {
        if (startsWith(launch.kernelName, "gemm_") ||
            startsWith(launch.kernelName, "bmm_")) {
            shapes.insert(launch.kernelName);
        }
    });
    return shapes.size();
}

double
compileTimeNs(ExecMode mode, const OperatorGraph &eager_graph,
              double cpu_score, const CompileTimeParams &params)
{
    if (cpu_score <= 0.0)
        fatal("compileTimeNs: cpu_score must be positive");

    double ops = static_cast<double>(eager_graph.numOps());
    double warmup = params.warmupBaseNs + ops * params.eagerPerOpNs;

    double total = warmup;
    switch (mode) {
      case ExecMode::Eager:
      case ExecMode::FlashAttention2:
        break;
      case ExecMode::CompileDefault:
        total += ops * params.inductorPerOpNs;
        break;
      case ExecMode::CompileReduceOverhead:
        total += ops * (params.inductorPerOpNs + params.cudaGraphPerOpNs);
        break;
      case ExecMode::CompileMaxAutotune:
        total += ops * (params.inductorPerOpNs + params.cudaGraphPerOpNs);
        total += static_cast<double>(uniqueGemmShapes(eager_graph)) *
            params.autotuneTrials * params.autotunePerTrialNs;
        break;
    }
    return total / cpu_score;
}

} // namespace skipsim::workload
