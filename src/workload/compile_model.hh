/**
 * @file
 * Compile-time cost model for torch.compile modes (paper Table I).
 * Models the one-off cost paid before the first optimized iteration:
 * eager warmup, Dynamo tracing + Inductor lowering (default), CUDA
 * graph capture with re-warmup (reduce-overhead), and per-GEMM-shape
 * autotuning search (max-autotune).
 */

#ifndef SKIPSIM_WORKLOAD_COMPILE_MODEL_HH
#define SKIPSIM_WORKLOAD_COMPILE_MODEL_HH

#include "workload/exec_mode.hh"
#include "workload/op_graph.hh"

namespace skipsim::workload
{

/** Tunable constants of the compile-time model (calibrated, Table I). */
struct CompileTimeParams
{
    /** Framework/cuDNN/cuBLAS first-touch initialization, ns. */
    double warmupBaseNs = 2.5e8;

    /** Per-operator first-iteration (eager warmup) cost, ns. */
    double eagerPerOpNs = 1.4e5;

    /** Per-operator Dynamo trace + Inductor lowering cost, ns. */
    double inductorPerOpNs = 5.28e6;

    /** Additional per-operator CUDA-graph capture/re-warmup cost, ns. */
    double cudaGraphPerOpNs = 5.80e6;

    /** Autotuning candidate configurations tried per GEMM shape. */
    double autotuneTrials = 50.0;

    /** Compile+benchmark cost of one autotune trial, ns. */
    double autotunePerTrialNs = 1.07e9;
};

/**
 * Total wall-clock cost before the first optimized iteration for a
 * given mode, ns. Eager's "compile time" is its warmup iteration, as
 * reported in the paper's Table I.
 *
 * @param mode execution mode.
 * @param eager_graph the eager-mode operator graph of the same model
 *        and batch (used for operator and unique-GEMM-shape counts).
 * @param cpu_score single-thread speed of the compiling CPU (1.0 =
 *        reference); compilation is CPU work and scales inversely.
 * @param params model constants.
 */
double compileTimeNs(ExecMode mode, const OperatorGraph &eager_graph,
                     double cpu_score,
                     const CompileTimeParams &params = {});

/** Count distinct GEMM/BMM kernel shapes in a graph (autotune targets). */
std::size_t uniqueGemmShapes(const OperatorGraph &graph);

} // namespace skipsim::workload

#endif // SKIPSIM_WORKLOAD_COMPILE_MODEL_HH
