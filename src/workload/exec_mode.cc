#include "workload/exec_mode.hh"

#include "common/logging.hh"
#include "common/strutil.hh"

namespace skipsim::workload
{

const char *
execModeName(ExecMode mode)
{
    switch (mode) {
      case ExecMode::Eager: return "eager";
      case ExecMode::FlashAttention2: return "flash-attention-2";
      case ExecMode::CompileDefault: return "compile-default";
      case ExecMode::CompileReduceOverhead: return "compile-reduce-overhead";
      case ExecMode::CompileMaxAutotune: return "compile-max-autotune";
    }
    panic("execModeName: invalid ExecMode");
}

std::vector<ExecMode>
allExecModes()
{
    return {ExecMode::Eager, ExecMode::FlashAttention2,
            ExecMode::CompileDefault, ExecMode::CompileReduceOverhead,
            ExecMode::CompileMaxAutotune};
}

ExecMode
execModeByName(const std::string &name)
{
    std::string needle = toLower(name);
    for (ExecMode mode : allExecModes()) {
        if (execModeName(mode) == needle)
            return mode;
    }
    fatal("unknown execution mode '" + name + "'");
}

} // namespace skipsim::workload
