/**
 * @file
 * Execution modes (paper Fig. 2): eager kernel-by-kernel offload,
 * domain-specific fusion (FlashAttention2), and graph synthesis
 * (torch.compile's default / reduce-overhead / max-autotune modes).
 */

#ifndef SKIPSIM_WORKLOAD_EXEC_MODE_HH
#define SKIPSIM_WORKLOAD_EXEC_MODE_HH

#include <string>
#include <vector>

namespace skipsim::workload
{

/** How a forward pass is lowered to kernels. */
enum class ExecMode
{
    /** Kernels launched one-by-one as operators execute. */
    Eager,

    /** Eager with the attention block fused into one kernel (FA2). */
    FlashAttention2,

    /**
     * torch.compile default: Triton-fused pointwise/norm chains, eager
     * launches (no CUDA graph).
     */
    CompileDefault,

    /**
     * torch.compile reduce-overhead: whole-graph CUDA-graph capture,
     * replayed with a single launch.
     */
    CompileReduceOverhead,

    /**
     * torch.compile max-autotune: CUDA graph plus autotuned (faster)
     * GEMM/fused kernels.
     */
    CompileMaxAutotune,
};

/** Stable display name, e.g. "eager", "flash-attention-2". */
const char *execModeName(ExecMode mode);

/** All modes in ascending compile-effort order. */
std::vector<ExecMode> allExecModes();

/**
 * Case-insensitive parse of an execution-mode name.
 * @throws skipsim::FatalError for unknown names.
 */
ExecMode execModeByName(const std::string &name);

} // namespace skipsim::workload

#endif // SKIPSIM_WORKLOAD_EXEC_MODE_HH
