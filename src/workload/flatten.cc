#include "workload/flatten.hh"

namespace skipsim::workload
{

double
Timeline::totalCpuNs() const
{
    double total = cpuTailNs;
    for (const auto &step : steps)
        total += step.cpuBeforeNs;
    return total;
}

std::size_t
Timeline::numKernelLaunches() const
{
    std::size_t n = 0;
    for (const auto &step : steps) {
        if (!step.launch.isMemcpy)
            ++n;
    }
    return n;
}

namespace
{

struct FlattenState
{
    Timeline timeline;
    double pending_cpu = 0.0;

    void
    visit(const OpNode &node)
    {
        double pre = node.cpuNs * node.preFraction;
        double post = node.cpuNs - pre;
        pending_cpu += pre;
        for (const auto &child : node.children)
            visit(child);
        for (const auto &launch : node.launches) {
            TimelineStep step;
            step.cpuBeforeNs = pending_cpu;
            step.opName = node.name;
            step.launch = launch;
            timeline.steps.push_back(std::move(step));
            pending_cpu = 0.0;
        }
        pending_cpu += post;
    }
};

} // namespace

Timeline
flattenGraph(const OperatorGraph &graph)
{
    FlattenState state;
    for (const auto &root : graph.roots)
        state.visit(root);
    state.timeline.cpuTailNs = state.pending_cpu;
    return state.timeline;
}

OperatorGraph
timelineToGraph(const Timeline &timeline)
{
    OperatorGraph graph;
    for (const auto &step : timeline.steps) {
        OpNode node;
        node.name = step.opName;
        node.cpuNs = step.cpuBeforeNs;
        node.preFraction = 1.0; // CPU runs fully before the launch
        node.launches.push_back(step.launch);
        graph.roots.push_back(std::move(node));
    }
    if (timeline.cpuTailNs > 0.0) {
        OpNode tail;
        tail.name = "timeline::tail";
        tail.cpuNs = timeline.cpuTailNs;
        graph.roots.push_back(std::move(tail));
    }
    return graph;
}

} // namespace skipsim::workload
