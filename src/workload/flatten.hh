/**
 * @file
 * Graph flattening: lower an operator tree into its execution
 * timeline — an alternating sequence of CPU-time segments and kernel
 * launches — and rebuild a flat OperatorGraph from such a timeline.
 * The flat form preserves the simulator-visible behaviour (CPU busy
 * intervals between launches) and is the representation the fusion
 * application pass rewrites.
 */

#ifndef SKIPSIM_WORKLOAD_FLATTEN_HH
#define SKIPSIM_WORKLOAD_FLATTEN_HH

#include <string>
#include <vector>

#include "workload/op_graph.hh"

namespace skipsim::workload
{

/** One step of a flattened execution timeline. */
struct TimelineStep
{
    /** Framework CPU time before the launch (reference CPU), ns. */
    double cpuBeforeNs = 0.0;

    /** Name of the operator that performed the launch. */
    std::string opName;

    /** The launch itself. */
    KernelLaunch launch;
};

/** A flattened graph: launches in order plus trailing CPU time. */
struct Timeline
{
    std::vector<TimelineStep> steps;

    /** CPU time after the last launch, ns. */
    double cpuTailNs = 0.0;

    /** Total framework CPU time across the timeline, ns. */
    double totalCpuNs() const;

    /** Kernel launches excluding memcpys. */
    std::size_t numKernelLaunches() const;
};

/**
 * Flatten an operator tree into its execution timeline. CPU time is
 * attributed in execution order (pre-dispatch, children, launches,
 * post-dispatch), so simulating the flattened graph produces the same
 * launch timestamps as the original tree.
 */
Timeline flattenGraph(const OperatorGraph &graph);

/**
 * Rebuild a flat OperatorGraph from a timeline: one operator per
 * launch carrying its preceding CPU segment, plus a tail operator.
 */
OperatorGraph timelineToGraph(const Timeline &timeline);

} // namespace skipsim::workload

#endif // SKIPSIM_WORKLOAD_FLATTEN_HH
