#include "workload/future_workloads.hh"

#include "common/logging.hh"
#include "common/strutil.hh"
#include "workload/builder.hh"

namespace skipsim::workload
{

namespace
{

constexpr double f16 = 2.0;
constexpr double f32 = 4.0;
constexpr double idx32 = 4.0;

using hw::KernelClass;
using hw::KernelWork;

std::string
num(double v)
{
    return strprintf("%lld", static_cast<long long>(v));
}

OpNode
gemmOp(double m, double n, double k)
{
    KernelWork w;
    w.cls = KernelClass::Gemm;
    w.flops = 2.0 * m * n * k;
    w.bytes = f16 * (m * k + k * n + m * n);
    w.rows = m;
    return makeParentOp(
        "aten::linear", opParentCpuNs,
        {makeKernelOp("aten::addmm", opLeafCpuNs,
                      "gemm_f16_" + num(m) + "x" + num(n) + "x" + num(k),
                      w)});
}

OpNode
reluOp(double elems)
{
    KernelWork w;
    w.cls = KernelClass::Elementwise;
    w.flops = elems;
    w.bytes = elems * f16 * 2.0;
    return makeKernelOp("aten::relu", opLeafCpuNs,
                        "elementwise_relu_f16", w);
}

} // namespace

DlrmConfig
dlrmRm2()
{
    return DlrmConfig{};
}

OperatorGraph
buildDlrmGraph(const DlrmConfig &config, int batch)
{
    if (batch <= 0)
        fatal("buildDlrmGraph: batch must be positive");

    OperatorGraph graph;
    double b = batch;

    // Sparse indices + dense features staged to the device.
    {
        OpNode node;
        node.name = "aten::to";
        node.cpuNs = opLeafCpuNs;
        KernelLaunch launch;
        launch.kernelName = "memcpy_h2d";
        launch.isMemcpy = true;
        KernelWork w;
        w.cls = KernelClass::Memcpy;
        w.bytes = b * (config.numTables * config.indicesPerLookup *
                           idx32 +
                       config.denseFeatures * f32);
        launch.work.push_back(w);
        node.launches.push_back(std::move(launch));
        graph.roots.push_back(std::move(node));
    }

    // Bottom MLP over the dense tower.
    double in_width = config.denseFeatures;
    for (int width : config.bottomMlp) {
        graph.roots.push_back(gemmOp(b, width, in_width));
        graph.roots.push_back(reluOp(b * width));
        in_width = width;
    }

    // One embedding-bag gather per sparse table.
    for (int t = 0; t < config.numTables; ++t) {
        KernelWork w;
        w.cls = KernelClass::Embedding;
        w.bytes = b * config.indicesPerLookup *
                (config.embDim * f16 + idx32) +
            b * config.embDim * f16;
        graph.roots.push_back(makeKernelOp(
            strprintf("aten::embedding_bag(table%d)", t), opLeafCpuNs,
            "embedding_bag_sum_" + num(config.embDim), w));
    }

    // Feature interaction: concat + pairwise dots (batched GEMM).
    double vectors = config.numTables + 1;
    {
        KernelWork cat;
        cat.cls = KernelClass::Copy;
        cat.bytes = b * vectors * config.embDim * f16 * 2.0;
        graph.roots.push_back(
            makeParentOp("aten::cat", opParentCpuNs,
                         {makeKernelOp("aten::copy_", opLeafCpuNs,
                                       "copy_f16_cat", cat)}));

        KernelWork bmm;
        bmm.cls = KernelClass::Gemm;
        bmm.flops = 2.0 * b * vectors * vectors * config.embDim;
        bmm.bytes = b * (2.0 * vectors * config.embDim * f16 +
                         vectors * vectors * f16);
        bmm.rows = b * vectors;
        graph.roots.push_back(makeParentOp(
            "aten::matmul", opParentCpuNs,
            {makeKernelOp("aten::bmm", opLeafCpuNs,
                          "bmm_f16_interact_" + num(vectors), bmm)}));

        KernelWork tri;
        tri.cls = KernelClass::Copy;
        tri.bytes = b * vectors * vectors * f16;
        graph.roots.push_back(makeKernelOp("aten::index_select",
                                           opLeafCpuNs,
                                           "copy_f16_tril", tri));
    }

    // Top MLP ending in the CTR sigmoid.
    double interact_width =
        vectors * (vectors - 1.0) / 2.0 + config.bottomMlp.back();
    in_width = interact_width;
    for (std::size_t i = 0; i < config.topMlp.size(); ++i) {
        int width = config.topMlp[i];
        graph.roots.push_back(gemmOp(b, width, in_width));
        if (i + 1 < config.topMlp.size())
            graph.roots.push_back(reluOp(b * width));
        in_width = width;
    }
    {
        KernelWork w;
        w.cls = KernelClass::Elementwise;
        w.flops = b;
        w.bytes = b * f16 * 2.0;
        graph.roots.push_back(makeKernelOp("aten::sigmoid", opLeafCpuNs,
                                           "elementwise_sigmoid_f16",
                                           w));
    }
    return graph;
}

GcnConfig
gcnProducts()
{
    return GcnConfig{};
}

OperatorGraph
buildGcnGraph(const GcnConfig &config, int graph_batch)
{
    if (graph_batch <= 0)
        fatal("buildGcnGraph: graph_batch must be positive");

    OperatorGraph graph;
    double nodes = static_cast<double>(config.numNodes) * graph_batch;
    double edges = static_cast<double>(config.numEdges) * graph_batch;

    // Graph structure (CSR) and features staged once.
    {
        OpNode node;
        node.name = "aten::to";
        node.cpuNs = opLeafCpuNs;
        KernelLaunch launch;
        launch.kernelName = "memcpy_h2d";
        launch.isMemcpy = true;
        KernelWork w;
        w.cls = KernelClass::Memcpy;
        w.bytes = edges * idx32 + nodes * config.inFeatures * f16;
        launch.work.push_back(w);
        node.launches.push_back(std::move(launch));
        graph.roots.push_back(std::move(node));
    }

    double in_width = config.inFeatures;
    for (int layer = 0; layer < config.layers; ++layer) {
        double out_width =
            layer + 1 == config.layers ? config.classes : config.hidden;

        // SpMM neighbour aggregation: streams every edge's feature row.
        KernelWork spmm;
        spmm.cls = KernelClass::Reduction;
        spmm.flops = edges * in_width;
        spmm.bytes = edges * (in_width * f16 + idx32) +
            nodes * in_width * f16;
        graph.roots.push_back(makeParentOp(
            "torch_sparse::spmm", opParentCpuNs,
            {makeKernelOp("spmm_csr", opLeafCpuNs,
                          "spmm_csr_f16_" + num(in_width), spmm)}));

        // Dense feature transform.
        graph.roots.push_back(gemmOp(nodes, out_width, in_width));

        if (layer + 1 < config.layers)
            graph.roots.push_back(reluOp(nodes * out_width));
        in_width = out_width;
    }

    // Final log-softmax over classes.
    KernelWork sm;
    sm.cls = KernelClass::Softmax;
    sm.flops = 5.0 * nodes * config.classes;
    sm.bytes = nodes * config.classes * f16 * 2.0;
    graph.roots.push_back(makeParentOp(
        "aten::log_softmax", opParentCpuNs,
        {makeKernelOp("aten::_log_softmax", opLeafCpuNs,
                      "softmax_f16_gcn", sm)}));
    return graph;
}

} // namespace skipsim::workload
