/**
 * @file
 * Future-work workloads (paper Sec. VI: "broaden our workload scope to
 * include recommendation models (RMs) and graph neural networks
 * (GNNs)"): operator-graph builders for a DLRM-style recommendation
 * model and a GCN. They sit at opposite extremes of the CPU/GPU
 * balance — DLRM forwards launch dozens of tiny embedding-bag gathers
 * (deeply CPU-bound until very large batches), while a full-graph GCN
 * layer is a handful of huge SpMM/GEMM kernels (GPU-bound from the
 * first sample) — stressing the coupling paradigms in ways the LLM
 * quartet does not.
 */

#ifndef SKIPSIM_WORKLOAD_FUTURE_WORKLOADS_HH
#define SKIPSIM_WORKLOAD_FUTURE_WORKLOADS_HH

#include <string>
#include <vector>

#include "workload/op_graph.hh"

namespace skipsim::workload
{

/** DLRM-style recommendation model hyperparameters. */
struct DlrmConfig
{
    std::string name = "DLRM-RM2";

    /** Sparse embedding tables. */
    int numTables = 26;

    /** Embedding vector width. */
    int embDim = 128;

    /** Multi-hot indices gathered per table per sample. */
    int indicesPerLookup = 38;

    /** Continuous (dense) input features. */
    int denseFeatures = 13;

    /** Bottom MLP widths (dense tower). */
    std::vector<int> bottomMlp{512, 256, 128};

    /** Top MLP widths ending in the CTR logit. */
    std::vector<int> topMlp{1024, 1024, 512, 256, 1};
};

/** Reference DLRM configuration (MLPerf RM2-like). */
DlrmConfig dlrmRm2();

/**
 * Build a DLRM inference forward pass: bottom MLP over dense features,
 * one embedding-bag gather per table, pairwise-dot feature
 * interaction, top MLP with sigmoid.
 * @throws skipsim::FatalError for non-positive batch.
 */
OperatorGraph buildDlrmGraph(const DlrmConfig &config, int batch);

/** GCN hyperparameters (full-graph inference). */
struct GcnConfig
{
    std::string name = "GCN-3L";

    /** Graph size. */
    long numNodes = 200000;
    long numEdges = 4000000;

    int inFeatures = 256;
    int hidden = 256;
    int layers = 3;
    int classes = 47;
};

/** Reference GCN configuration (ogbn-products scale). */
GcnConfig gcnProducts();

/**
 * Build a full-graph GCN inference pass: per layer an SpMM neighbour
 * aggregation, a dense feature transform and a ReLU; final softmax.
 * The @p graph_batch parameter replicates the graph (mini-batched
 * multi-graph inference) so batch sweeps are meaningful.
 * @throws skipsim::FatalError for non-positive graph_batch.
 */
OperatorGraph buildGcnGraph(const GcnConfig &config, int graph_batch = 1);

} // namespace skipsim::workload

#endif // SKIPSIM_WORKLOAD_FUTURE_WORKLOADS_HH
