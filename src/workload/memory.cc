#include "workload/memory.hh"

#include "common/logging.hh"

namespace skipsim::workload
{

namespace
{

constexpr double f16 = 2.0;

} // namespace

MemoryFootprint
estimateMemory(const ModelConfig &model, int batch, int seq_len)
{
    if (batch <= 0 || seq_len <= 0)
        fatal("estimateMemory: batch and seq_len must be positive");

    MemoryFootprint fp;
    fp.weightsBytes = model.paramsM() * 1e6 * f16;

    // KV cache: 2 (K and V) x layers x kv_heads x head_dim per token.
    double per_token = 2.0 * model.layers * model.kvHeads *
        model.headDim() * f16;
    fp.kvCacheBytes = per_token * batch * seq_len;

    // Peak transient activations: a few hidden-state buffers, one
    // layer's attention scores and one MLP intermediate.
    double tokens = static_cast<double>(batch) * seq_len;
    double hidden = tokens * model.hidden * f16 * 4.0;
    double scores = static_cast<double>(batch) * model.heads *
        static_cast<double>(seq_len) * seq_len * f16;
    double mlp = tokens * model.intermediate * f16;
    fp.activationBytes = hidden + scores + mlp;
    return fp;
}

int
maxResidentSequences(const ModelConfig &model, int seq_len,
                     double hbm_bytes)
{
    if (seq_len <= 0)
        fatal("maxResidentSequences: seq_len must be positive");
    if (hbm_bytes <= 0.0)
        return 0;

    MemoryFootprint one = estimateMemory(model, 1, seq_len);
    double fixed = one.weightsBytes;
    if (fixed >= hbm_bytes)
        return 0;

    // Each resident sequence costs its KV slice; activations are paid
    // once at the running batch (bounded by the same count here).
    double per_seq = one.kvCacheBytes + one.activationBytes;
    if (per_seq <= 0.0)
        return 0;
    double budget = hbm_bytes - fixed;
    int n = static_cast<int>(budget / per_seq);
    return n;
}

} // namespace skipsim::workload
