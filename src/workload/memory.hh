/**
 * @file
 * Device-memory footprint accounting: weights, KV cache and peak
 * activation estimates per (model, batch, sequence) in FP16. The
 * paper touches this through torch.compile's KV-cache rigidity
 * (Table I discussion); serving-wise, the KV budget bounds how many
 * sequences a GPU can keep active, which feeds the continuous-batching
 * capacity.
 */

#ifndef SKIPSIM_WORKLOAD_MEMORY_HH
#define SKIPSIM_WORKLOAD_MEMORY_HH

#include "workload/model_config.hh"

namespace skipsim::workload
{

/** Footprint of one configuration, bytes. */
struct MemoryFootprint
{
    /** Model weights (FP16). */
    double weightsBytes = 0.0;

    /** KV cache for batch x seq tokens (FP16, GQA-aware). */
    double kvCacheBytes = 0.0;

    /**
     * Peak transient activations of an eager forward (hidden states,
     * attention scores, MLP intermediates of one layer).
     */
    double activationBytes = 0.0;

    double totalBytes() const
    {
        return weightsBytes + kvCacheBytes + activationBytes;
    }
};

/**
 * Estimate the FP16 footprint of a prefill with KV cache retained.
 * @throws skipsim::FatalError on non-positive batch/seq.
 */
MemoryFootprint estimateMemory(const ModelConfig &model, int batch,
                               int seq_len);

/**
 * Largest number of @p seq_len-token sequences whose KV cache (plus
 * weights and one batch of activations) fits in @p hbm_bytes.
 * @return 0 when even one sequence does not fit.
 */
int maxResidentSequences(const ModelConfig &model, int seq_len,
                         double hbm_bytes);

} // namespace skipsim::workload

#endif // SKIPSIM_WORKLOAD_MEMORY_HH
