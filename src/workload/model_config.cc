#include "workload/model_config.hh"

#include "common/logging.hh"
#include "common/strutil.hh"

namespace skipsim::workload
{

const char *
familyName(ModelFamily family)
{
    switch (family) {
      case ModelFamily::EncoderOnly: return "encoder-only";
      case ModelFamily::DecoderOnly: return "decoder-only";
    }
    panic("familyName: invalid ModelFamily");
}

double
ModelConfig::paramsM() const
{
    double h = hidden;
    double emb = static_cast<double>(vocab) * h;

    // Attention: Q, K, V projections (KV possibly grouped) + output.
    double kv_dim = static_cast<double>(kvHeads) * headDim();
    double attn = h * h            // Q
        + 2.0 * h * kv_dim         // K, V
        + h * h;                   // output projection

    // MLP: gated activations have an extra up-projection matrix.
    bool gated = activation == Activation::SwiGlu ||
        activation == Activation::GeGlu;
    double mlp = (gated ? 3.0 : 2.0) * h * intermediate;

    double per_layer = attn + mlp;
    if (biases)
        per_layer += 3.0 * h + kv_dim * 1.0 + 2.0 * intermediate;

    double total = emb + layers * per_layer;
    if (pooler)
        total += h * h;
    return total / 1e6;
}

ModelConfig
bertBaseUncased()
{
    ModelConfig m;
    m.name = "Bert-Base-Uncased";
    m.family = ModelFamily::EncoderOnly;
    m.layers = 12;
    m.hidden = 768;
    m.heads = 12;
    m.kvHeads = 12;
    m.intermediate = 3072;
    m.vocab = 30522;
    m.activation = Activation::Gelu;
    m.norm = NormKind::LayerNorm;
    m.rotary = false;
    m.fusedQkv = false;
    m.biases = true;
    m.pooler = true;
    return m;
}

ModelConfig
xlmRobertaBase()
{
    ModelConfig m = bertBaseUncased();
    m.name = "XLM-Roberta-Base";
    m.vocab = 250002; // the large multilingual vocabulary drives 279M params
    return m;
}

ModelConfig
gpt2()
{
    ModelConfig m;
    m.name = "GPT2";
    m.family = ModelFamily::DecoderOnly;
    m.layers = 12;
    m.hidden = 768;
    m.heads = 12;
    m.kvHeads = 12;
    m.intermediate = 3072;
    m.vocab = 50257;
    m.activation = Activation::GeluNew;
    m.norm = NormKind::LayerNorm;
    m.rotary = false;
    m.fusedQkv = true;
    m.biases = true;
    m.pooler = false;
    return m;
}

ModelConfig
llama32_1b()
{
    ModelConfig m;
    m.name = "Llama-3.2-1B";
    m.family = ModelFamily::DecoderOnly;
    m.layers = 16;
    m.hidden = 2048;
    m.heads = 32;
    m.kvHeads = 8;
    m.intermediate = 8192;
    m.vocab = 128256;
    m.activation = Activation::SwiGlu;
    m.norm = NormKind::RmsNorm;
    m.rotary = true;
    m.fusedQkv = false;
    m.biases = false;
    m.pooler = false;
    return m;
}

ModelConfig
gemma2b()
{
    ModelConfig m;
    m.name = "Gemma-2B";
    m.family = ModelFamily::DecoderOnly;
    m.layers = 18;
    m.hidden = 2048;
    m.heads = 8;
    m.kvHeads = 1;
    m.intermediate = 16384;
    m.vocab = 256000;
    m.activation = Activation::GeGlu;
    m.norm = NormKind::RmsNorm;
    m.rotary = true;
    m.fusedQkv = false;
    m.biases = false;
    m.pooler = false;
    return m;
}

ModelConfig
llama2_7b()
{
    ModelConfig m;
    m.name = "Llama-2-7B";
    m.family = ModelFamily::DecoderOnly;
    m.layers = 32;
    m.hidden = 4096;
    m.heads = 32;
    m.kvHeads = 32;
    m.intermediate = 11008;
    m.vocab = 32000;
    m.activation = Activation::SwiGlu;
    m.norm = NormKind::RmsNorm;
    m.rotary = true;
    m.fusedQkv = false;
    m.biases = false;
    m.pooler = false;
    return m;
}

ModelConfig
mistral7b()
{
    ModelConfig m = llama2_7b();
    m.name = "Mistral-7B";
    m.kvHeads = 8;
    m.intermediate = 14336;
    m.vocab = 32000;
    return m;
}

ModelConfig
qwen7b()
{
    ModelConfig m = llama2_7b();
    m.name = "Qwen-7B";
    m.intermediate = 11008;
    m.vocab = 151936;
    m.biases = true; // Qwen keeps QKV biases
    return m;
}

ModelConfig
falcon7b()
{
    ModelConfig m;
    m.name = "Falcon-7B";
    m.family = ModelFamily::DecoderOnly;
    m.layers = 32;
    m.hidden = 4544;
    m.heads = 71;
    m.kvHeads = 1; // multi-query attention
    m.intermediate = 18176;
    m.vocab = 65024;
    m.activation = Activation::Gelu;
    m.norm = NormKind::LayerNorm;
    m.rotary = true;
    m.fusedQkv = true;
    m.biases = false;
    m.pooler = false;
    return m;
}

ModelConfig
phi2()
{
    ModelConfig m;
    m.name = "Phi-2";
    m.family = ModelFamily::DecoderOnly;
    m.layers = 32;
    m.hidden = 2560;
    m.heads = 32;
    m.kvHeads = 32;
    m.intermediate = 10240;
    m.vocab = 51200;
    m.activation = Activation::GeluNew;
    m.norm = NormKind::LayerNorm;
    m.rotary = true;
    m.fusedQkv = false;
    m.biases = true;
    m.pooler = false;
    return m;
}

ModelConfig
tinyLlama1b()
{
    ModelConfig m;
    m.name = "TinyLlama-1.1B";
    m.family = ModelFamily::DecoderOnly;
    m.layers = 22;
    m.hidden = 2048;
    m.heads = 32;
    m.kvHeads = 4;
    m.intermediate = 5632;
    m.vocab = 32000;
    m.activation = Activation::SwiGlu;
    m.norm = NormKind::RmsNorm;
    m.rotary = true;
    m.fusedQkv = false;
    m.biases = false;
    m.pooler = false;
    return m;
}

ModelConfig
qwen2_15b()
{
    ModelConfig m;
    m.name = "Qwen2-1.5B";
    m.family = ModelFamily::DecoderOnly;
    m.layers = 28;
    m.hidden = 1536;
    m.heads = 12;
    m.kvHeads = 2;
    m.intermediate = 8960;
    m.vocab = 151936;
    m.activation = Activation::SwiGlu;
    m.norm = NormKind::RmsNorm;
    m.rotary = true;
    m.fusedQkv = false;
    m.biases = true;
    m.pooler = false;
    return m;
}

std::vector<ModelConfig>
paperQuartet()
{
    return {bertBaseUncased(), xlmRobertaBase(), gpt2(), llama32_1b()};
}

std::vector<ModelConfig>
sevenBSet()
{
    return {llama2_7b(), mistral7b(), qwen7b(), falcon7b()};
}

std::vector<ModelConfig>
allModels()
{
    std::vector<ModelConfig> out = paperQuartet();
    out.push_back(gemma2b());
    for (const auto &m : sevenBSet())
        out.push_back(m);
    out.push_back(phi2());
    out.push_back(tinyLlama1b());
    out.push_back(qwen2_15b());
    return out;
}

std::vector<std::string>
modelNames()
{
    std::vector<std::string> out;
    for (const auto &m : allModels())
        out.push_back(m.name);
    return out;
}

ModelConfig
modelByName(const std::string &name)
{
    std::string needle = toLower(name);
    for (const auto &m : allModels()) {
        if (toLower(m.name) == needle)
            return m;
    }
    fatal("unknown model '" + name + "' (expected one of: " +
          join(modelNames(), ", ") + ")");
}

} // namespace skipsim::workload
