/**
 * @file
 * Transformer model descriptors for the paper's benchmark workloads
 * (Table III: Bert-Base-Uncased, XLM-Roberta-Base, GPT2, Llama-3.2-1B)
 * plus the models used in the motivation section (Gemma-2B for Table I
 * and the 7B decoders for Fig. 3). Configurations follow the public
 * HuggingFace model cards.
 */

#ifndef SKIPSIM_WORKLOAD_MODEL_CONFIG_HH
#define SKIPSIM_WORKLOAD_MODEL_CONFIG_HH

#include <string>
#include <vector>

namespace skipsim::workload
{

/** Transformer family (paper Table III taxonomy). */
enum class ModelFamily { EncoderOnly, DecoderOnly };

/** @return "encoder-only" / "decoder-only". */
const char *familyName(ModelFamily family);

/** MLP activation structure. */
enum class Activation
{
    Gelu,     ///< single-GEMM-up GELU (BERT, exact erf form)
    GeluNew,  ///< tanh-approximated GELU expanded into elementwise ops (GPT2)
    SwiGlu,   ///< gated SiLU with separate gate/up projections (Llama)
    GeGlu,    ///< gated GELU (Gemma)
};

/** Normalization kind. */
enum class NormKind { LayerNorm, RmsNorm };

/** Architecture hyperparameters of one model. */
struct ModelConfig
{
    std::string name;
    ModelFamily family = ModelFamily::DecoderOnly;

    int layers = 12;
    int hidden = 768;
    int heads = 12;
    /** Key/value heads; < heads means grouped-query attention. */
    int kvHeads = 12;
    int intermediate = 3072;
    int vocab = 30522;
    int headDim() const { return hidden / heads; }

    Activation activation = Activation::Gelu;
    NormKind norm = NormKind::LayerNorm;

    /** Rotary position embeddings (vs. learned absolute positions). */
    bool rotary = false;

    /** Single fused QKV projection (GPT2 c_attn) vs. separate Q/K/V. */
    bool fusedQkv = false;

    /** Linear layers carry bias terms. */
    bool biases = true;

    /** Final pooler head (BERT-style encoders). */
    bool pooler = false;

    /**
     * Approximate parameter count in millions, derived from the
     * hyperparameters (embeddings + per-layer weights).
     */
    double paramsM() const;
};

/** @name Paper Table III workloads
 *  @{ */
ModelConfig bertBaseUncased();
ModelConfig xlmRobertaBase();
ModelConfig gpt2();
ModelConfig llama32_1b();
/** @} */

/** @name Motivation-section models (Table I, Fig. 3)
 *  @{ */
ModelConfig gemma2b();
ModelConfig llama2_7b();
ModelConfig mistral7b();
ModelConfig qwen7b();
ModelConfig falcon7b();
/** @} */

/** @name Additional small decoders (catalog extensions)
 *  @{ */
ModelConfig phi2();
ModelConfig tinyLlama1b();
ModelConfig qwen2_15b();
/** @} */

/** The four Table III benchmark workloads, in paper order. */
std::vector<ModelConfig> paperQuartet();

/** The 7B decoder set used for Fig. 3. */
std::vector<ModelConfig> sevenBSet();

/** All catalog models. */
std::vector<ModelConfig> allModels();

/** Model names accepted by modelByName(). */
std::vector<std::string> modelNames();

/**
 * Case-insensitive model lookup by catalog name.
 * @throws skipsim::FatalError for unknown names.
 */
ModelConfig modelByName(const std::string &name);

} // namespace skipsim::workload

#endif // SKIPSIM_WORKLOAD_MODEL_CONFIG_HH
