#include "workload/op_graph.hh"

namespace skipsim::workload
{

double
KernelLaunch::totalFlops() const
{
    double total = 0.0;
    for (const auto &w : work)
        total += w.flops;
    return total;
}

double
KernelLaunch::totalBytes() const
{
    double total = 0.0;
    for (const auto &w : work)
        total += w.bytes;
    return total;
}

namespace
{

void
visitOps(const OpNode &node, const std::function<void(const OpNode &)> &fn)
{
    fn(node);
    for (const auto &child : node.children)
        visitOps(child, fn);
}

void
visitLaunches(const OpNode &node,
              const std::function<void(const KernelLaunch &)> &fn)
{
    for (const auto &child : node.children)
        visitLaunches(child, fn);
    for (const auto &launch : node.launches)
        fn(launch);
}

} // namespace

std::size_t
OperatorGraph::numOps() const
{
    std::size_t n = 0;
    forEachOp([&](const OpNode &) { ++n; });
    return n;
}

std::size_t
OperatorGraph::numKernelLaunches() const
{
    std::size_t n = 0;
    forEachLaunch([&](const KernelLaunch &launch) {
        if (!launch.isMemcpy)
            ++n;
    });
    return n;
}

std::size_t
OperatorGraph::numMemcpys() const
{
    std::size_t n = 0;
    forEachLaunch([&](const KernelLaunch &launch) {
        if (launch.isMemcpy)
            ++n;
    });
    return n;
}

double
OperatorGraph::totalFlops() const
{
    double total = 0.0;
    forEachLaunch([&](const KernelLaunch &launch) {
        if (!launch.isMemcpy)
            total += launch.totalFlops();
    });
    return total;
}

double
OperatorGraph::totalBytes() const
{
    double total = 0.0;
    forEachLaunch([&](const KernelLaunch &launch) {
        if (!launch.isMemcpy)
            total += launch.totalBytes();
    });
    return total;
}

double
OperatorGraph::totalCpuNs() const
{
    double total = 0.0;
    forEachOp([&](const OpNode &node) { total += node.cpuNs; });
    return total;
}

std::vector<std::string>
OperatorGraph::kernelSequence() const
{
    std::vector<std::string> out;
    forEachLaunch([&](const KernelLaunch &launch) {
        if (!launch.isMemcpy)
            out.push_back(launch.kernelName);
    });
    return out;
}

void
OperatorGraph::forEachOp(const std::function<void(const OpNode &)> &fn) const
{
    for (const auto &root : roots)
        visitOps(root, fn);
}

void
OperatorGraph::forEachLaunch(
    const std::function<void(const KernelLaunch &)> &fn) const
{
    for (const auto &root : roots)
        visitLaunches(root, fn);
}

OpNode
makeKernelOp(const std::string &op_name, double cpu_ns,
             const std::string &kernel_name, hw::KernelWork work)
{
    OpNode node;
    node.name = op_name;
    node.cpuNs = cpu_ns;
    KernelLaunch launch;
    launch.kernelName = kernel_name;
    launch.work.push_back(work);
    node.launches.push_back(std::move(launch));
    return node;
}

OpNode
makeCpuOp(const std::string &op_name, double cpu_ns)
{
    OpNode node;
    node.name = op_name;
    node.cpuNs = cpu_ns;
    return node;
}

OpNode
makeParentOp(const std::string &op_name, double cpu_ns,
             std::vector<OpNode> children)
{
    OpNode node;
    node.name = op_name;
    node.cpuNs = cpu_ns;
    node.children = std::move(children);
    return node;
}

} // namespace skipsim::workload
