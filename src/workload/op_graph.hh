/**
 * @file
 * The framework-level operator tree an inference forward pass executes.
 * Each node is an ATen-style operator with a CPU dispatch cost, child
 * operators, and the GPU kernel launches it performs directly. The
 * execution simulator walks this tree depth-first, exactly like the
 * single-threaded PyTorch eager dispatch loop.
 */

#ifndef SKIPSIM_WORKLOAD_OP_GRAPH_HH
#define SKIPSIM_WORKLOAD_OP_GRAPH_HH

#include <functional>
#include <string>
#include <vector>

#include "hw/kernel_cost.hh"

namespace skipsim::workload
{

/** One GPU kernel launch performed by an operator. */
struct KernelLaunch
{
    /** Kernel name as it would appear in a CUPTI trace. */
    std::string kernelName;

    /**
     * Work components executed by this kernel. Unfused kernels carry
     * one component; fused kernels (FlashAttention, CUDA-graph replay)
     * carry one per original kernel.
     */
    std::vector<hw::KernelWork> work;

    /** True for host<->device copies (excluded from kernel statistics). */
    bool isMemcpy = false;

    /** Total FLOPs over components. */
    double totalFlops() const;

    /** Total bytes over components. */
    double totalBytes() const;
};

/**
 * An operator node. Execution order within a node is: pre-dispatch CPU
 * work, children (in order, recursively), kernel launches (in order),
 * post-dispatch CPU work.
 */
struct OpNode
{
    /** ATen operator name, e.g. "aten::linear". */
    std::string name;

    /** Framework CPU cost at the reference CPU (score 1.0), ns. */
    double cpuNs = 0.0;

    /** Fraction of cpuNs spent before children/launches (rest after). */
    double preFraction = 0.6;

    std::vector<OpNode> children;
    std::vector<KernelLaunch> launches;
};

/** A complete forward-pass operator graph (list of top-level ops). */
struct OperatorGraph
{
    std::vector<OpNode> roots;

    /** Total operator nodes (recursive). */
    std::size_t numOps() const;

    /** Total kernel launches, excluding memcpys. */
    std::size_t numKernelLaunches() const;

    /** Total memcpy launches. */
    std::size_t numMemcpys() const;

    /** Sum of kernel FLOPs (excluding memcpys). */
    double totalFlops() const;

    /** Sum of kernel device-memory bytes (excluding memcpys). */
    double totalBytes() const;

    /** Sum of framework CPU cost at the reference CPU, ns. */
    double totalCpuNs() const;

    /** Kernel names in launch (depth-first) order, excluding memcpys. */
    std::vector<std::string> kernelSequence() const;

    /** Visit every node depth-first (pre-order). */
    void forEachOp(const std::function<void(const OpNode &)> &fn) const;

    /** Visit every launch in execution order. */
    void
    forEachLaunch(const std::function<void(const KernelLaunch &)> &fn) const;
};

/** @name Builder helpers
 * Convenience constructors used by the graph builders and tests.
 * @{ */

/** Leaf operator launching one kernel. */
OpNode makeKernelOp(const std::string &op_name, double cpu_ns,
                    const std::string &kernel_name, hw::KernelWork work);

/** CPU-only operator (views, reshapes, metadata ops). */
OpNode makeCpuOp(const std::string &op_name, double cpu_ns);

/** Parent operator wrapping children. */
OpNode makeParentOp(const std::string &op_name, double cpu_ns,
                    std::vector<OpNode> children);

/** @} */

} // namespace skipsim::workload

#endif // SKIPSIM_WORKLOAD_OP_GRAPH_HH
