#include "workload/roofline.hh"

#include "common/logging.hh"
#include "common/strutil.hh"

namespace skipsim::workload
{

double
ridgePointFlopsPerByte(const hw::GpuModel &gpu)
{
    double flops_per_ns = gpu.fp16Tflops * 1e3 * gpu.maxGemmEff;
    double bytes_per_ns = gpu.memBwGBs * gpu.memEff;
    if (bytes_per_ns <= 0.0)
        fatal("ridgePointFlopsPerByte: GPU with no bandwidth");
    return flops_per_ns / bytes_per_ns;
}

RooflineReport
rooflineReport(const OperatorGraph &graph, const hw::GpuModel &gpu)
{
    RooflineReport report;
    report.ridgeFlopsPerByte = ridgePointFlopsPerByte(gpu);

    graph.forEachLaunch([&](const KernelLaunch &launch) {
        if (launch.isMemcpy)
            return;
        double flops = launch.totalFlops();
        double bytes = launch.totalBytes();
        if (bytes <= 0.0)
            return;
        RooflinePoint point;
        point.kernelName = launch.kernelName;
        point.intensity = flops / bytes;
        point.durationNs = hw::kernelDurationNs(gpu, launch.work);
        point.computeBound =
            point.intensity >= report.ridgeFlopsPerByte;
        if (point.computeBound)
            report.computeBoundNs += point.durationNs;
        else
            report.memoryBoundNs += point.durationNs;
        report.points.push_back(std::move(point));
    });
    return report;
}

std::string
RooflineReport::render() const
{
    std::string out = strprintf(
        "Roofline: ridge %.1f FLOP/B; GPU time %.1f%% memory-bound "
        "(%s) vs %.1f%% compute-bound (%s) over %zu kernels\n",
        ridgeFlopsPerByte, 100.0 * memoryBoundShare(),
        formatNs(memoryBoundNs).c_str(),
        100.0 * (1.0 - memoryBoundShare()),
        formatNs(computeBoundNs).c_str(), points.size());
    return out;
}

} // namespace skipsim::workload
