/**
 * @file
 * Roofline classification (the lens of the paper's reference [54],
 * "LLM inference unveiled: survey and roofline model insights"): for
 * each kernel of a workload graph, compare its arithmetic intensity
 * (FLOPs per byte) to the GPU's ridge point and classify it as
 * compute- or memory-bound, with aggregate shares. Explains *why* the
 * higher-bandwidth GH200 wins large batches: the memory-bound share of
 * eager transformer inference is substantial.
 */

#ifndef SKIPSIM_WORKLOAD_ROOFLINE_HH
#define SKIPSIM_WORKLOAD_ROOFLINE_HH

#include <string>
#include <vector>

#include "hw/kernel_cost.hh"
#include "hw/platform.hh"
#include "workload/op_graph.hh"

namespace skipsim::workload
{

/** Roofline classification of one kernel. */
struct RooflinePoint
{
    std::string kernelName;

    /** FLOPs per device-memory byte. */
    double intensity = 0.0;

    /** Modeled duration on the GPU, ns. */
    double durationNs = 0.0;

    /** True when intensity >= the GPU's ridge point. */
    bool computeBound = false;
};

/** Aggregate roofline report for one graph on one GPU. */
struct RooflineReport
{
    /** Ridge point of the GPU: effective peak FLOPs / effective BW. */
    double ridgeFlopsPerByte = 0.0;

    /** Per-kernel points in launch order. */
    std::vector<RooflinePoint> points;

    /** Modeled GPU time in compute-bound kernels, ns. */
    double computeBoundNs = 0.0;

    /** Modeled GPU time in memory-bound kernels, ns. */
    double memoryBoundNs = 0.0;

    /** Fraction of GPU time that is memory-bound. */
    double memoryBoundShare() const
    {
        double total = computeBoundNs + memoryBoundNs;
        return total > 0.0 ? memoryBoundNs / total : 0.0;
    }

    /** Aligned text rendering. */
    std::string render() const;
};

/**
 * Effective ridge point of a GPU: achievable FLOPs (peak x max GEMM
 * efficiency) divided by achievable bandwidth.
 */
double ridgePointFlopsPerByte(const hw::GpuModel &gpu);

/**
 * Classify every kernel of a graph against a GPU's roofline.
 * Kernels with no bytes (null kernels) are skipped.
 */
RooflineReport rooflineReport(const OperatorGraph &graph,
                              const hw::GpuModel &gpu);

} // namespace skipsim::workload

#endif // SKIPSIM_WORKLOAD_ROOFLINE_HH
