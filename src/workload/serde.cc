#include "workload/serde.hh"

#include "common/logging.hh"
#include "json/parser.hh"
#include "json/writer.hh"

namespace skipsim::workload
{

namespace
{

const char *
activationName(Activation act)
{
    switch (act) {
      case Activation::Gelu: return "gelu";
      case Activation::GeluNew: return "gelu_new";
      case Activation::SwiGlu: return "swiglu";
      case Activation::GeGlu: return "geglu";
    }
    panic("activationName: invalid Activation");
}

Activation
activationFromName(const std::string &name)
{
    if (name == "gelu")
        return Activation::Gelu;
    if (name == "gelu_new")
        return Activation::GeluNew;
    if (name == "swiglu")
        return Activation::SwiGlu;
    if (name == "geglu")
        return Activation::GeGlu;
    fatal("modelFromJson: unknown activation '" + name + "'");
}

} // namespace

json::Value
modelToJson(const ModelConfig &m)
{
    json::Object obj;
    obj.set("name", m.name);
    obj.set("family",
            m.family == ModelFamily::EncoderOnly ? "encoder-only"
                                                 : "decoder-only");
    obj.set("layers", m.layers);
    obj.set("hidden", m.hidden);
    obj.set("heads", m.heads);
    obj.set("kv_heads", m.kvHeads);
    obj.set("intermediate", m.intermediate);
    obj.set("vocab", m.vocab);
    obj.set("activation", activationName(m.activation));
    obj.set("norm",
            m.norm == NormKind::LayerNorm ? "layer_norm" : "rms_norm");
    obj.set("rotary", m.rotary);
    obj.set("fused_qkv", m.fusedQkv);
    obj.set("biases", m.biases);
    obj.set("pooler", m.pooler);
    return json::Value(std::move(obj));
}

ModelConfig
modelFromJson(const json::Value &doc)
{
    const json::Object &obj = doc.asObject();
    ModelConfig m;
    auto get_int = [&](const char *key, int def) {
        return obj.has(key) ? static_cast<int>(obj.at(key).asInt())
                            : def;
    };
    auto get_bool = [&](const char *key, bool def) {
        return obj.has(key) ? obj.at(key).asBool() : def;
    };

    if (obj.has("name"))
        m.name = obj.at("name").asString();
    if (obj.has("family")) {
        const std::string &family = obj.at("family").asString();
        if (family == "encoder-only")
            m.family = ModelFamily::EncoderOnly;
        else if (family == "decoder-only")
            m.family = ModelFamily::DecoderOnly;
        else
            fatal("modelFromJson: unknown family '" + family + "'");
    }
    m.layers = get_int("layers", m.layers);
    m.hidden = get_int("hidden", m.hidden);
    m.heads = get_int("heads", m.heads);
    m.kvHeads = get_int("kv_heads", m.heads);
    m.intermediate = get_int("intermediate", m.intermediate);
    m.vocab = get_int("vocab", m.vocab);
    if (obj.has("activation"))
        m.activation = activationFromName(obj.at("activation").asString());
    if (obj.has("norm")) {
        const std::string &norm = obj.at("norm").asString();
        if (norm == "layer_norm")
            m.norm = NormKind::LayerNorm;
        else if (norm == "rms_norm")
            m.norm = NormKind::RmsNorm;
        else
            fatal("modelFromJson: unknown norm '" + norm + "'");
    }
    m.rotary = get_bool("rotary", m.rotary);
    m.fusedQkv = get_bool("fused_qkv", m.fusedQkv);
    m.biases = get_bool("biases", m.biases);
    m.pooler = get_bool("pooler", m.pooler);

    if (m.layers <= 0 || m.hidden <= 0 || m.heads <= 0 ||
        m.intermediate <= 0 || m.vocab <= 0) {
        fatal("modelFromJson: dimensions must be positive");
    }
    if (m.hidden % m.heads != 0)
        fatal("modelFromJson: hidden must be divisible by heads");
    if (m.kvHeads <= 0 || m.kvHeads > m.heads ||
        m.heads % m.kvHeads != 0) {
        fatal("modelFromJson: kv_heads must divide heads");
    }
    return m;
}

void
saveModel(const std::string &path, const ModelConfig &model)
{
    json::writeFile(path, modelToJson(model));
}

ModelConfig
loadModel(const std::string &path)
{
    return modelFromJson(json::parseFile(path));
}

} // namespace skipsim::workload
