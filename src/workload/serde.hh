/**
 * @file
 * JSON (de)serialization for model configurations, so users can
 * profile custom transformer architectures from configuration files.
 */

#ifndef SKIPSIM_WORKLOAD_SERDE_HH
#define SKIPSIM_WORKLOAD_SERDE_HH

#include <string>

#include "json/value.hh"
#include "workload/model_config.hh"

namespace skipsim::workload
{

/** Serialize a model configuration to a JSON object. */
json::Value modelToJson(const ModelConfig &model);

/**
 * Deserialize a model configuration. Missing fields keep their
 * defaults.
 * @throws skipsim::FatalError on malformed documents or inconsistent
 *         dimensions (hidden not divisible by heads, kvHeads > heads).
 */
ModelConfig modelFromJson(const json::Value &doc);

/** Write a model configuration to a JSON file. */
void saveModel(const std::string &path, const ModelConfig &model);

/** Read a model configuration from a JSON file. */
ModelConfig loadModel(const std::string &path);

} // namespace skipsim::workload

#endif // SKIPSIM_WORKLOAD_SERDE_HH
