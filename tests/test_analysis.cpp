/**
 * @file
 * Unit tests for the analysis module: batch sweeps, boundedness
 * classification, crossover detection and sweet-spot search — on both
 * synthetic sweep data and small simulated runs.
 */

#include <gtest/gtest.h>

#include "analysis/boundedness.hh"
#include "analysis/compare.hh"
#include "analysis/sweep.hh"
#include "common/logging.hh"
#include "hw/catalog.hh"

namespace skipsim::analysis
{
namespace
{

/** Synthetic sweep with chosen TKLQT/IL/idle values. */
SweepResult
syntheticSweep(const std::vector<int> &batches,
               const std::vector<double> &tklqt,
               const std::vector<double> &il,
               const std::vector<double> &gpu_idle = {},
               const std::vector<double> &cpu_idle = {})
{
    SweepResult sweep;
    sweep.modelName = "synthetic";
    sweep.platformName = "test";
    for (std::size_t i = 0; i < batches.size(); ++i) {
        SweepPoint point;
        point.batch = batches[i];
        point.metrics.tklqtNs = tklqt[i];
        point.metrics.ilNs = il[i];
        point.metrics.numKernels = 100;
        point.metrics.avgLaunchNs = tklqt[i] / 100.0;
        point.metrics.gpuIdleNs =
            i < gpu_idle.size() ? gpu_idle[i] : 0.0;
        point.metrics.cpuIdleNs =
            i < cpu_idle.size() ? cpu_idle[i] : 0.0;
        sweep.points.push_back(point);
    }
    return sweep;
}

// ------------------------------------------------------------------ sweep

TEST(Sweep, DefaultGridIsPaperGrid)
{
    auto grid = defaultBatchGrid();
    ASSERT_EQ(grid.size(), 8u);
    EXPECT_EQ(grid.front(), 1);
    EXPECT_EQ(grid.back(), 128);
}

TEST(Sweep, RunBatchSweepCollectsAllPoints)
{
    SweepResult sweep = runBatchSweep(
        workload::gpt2(), hw::platforms::intelH100(), {1, 2, 4}, 128);
    ASSERT_EQ(sweep.points.size(), 3u);
    EXPECT_EQ(sweep.modelName, "GPT2");
    EXPECT_EQ(sweep.platformName, "Intel+H100");
    EXPECT_GT(sweep.at(2).metrics.ilNs, 0.0);
    EXPECT_THROW(sweep.at(64), FatalError);
}

TEST(Sweep, EmptyBatchesThrow)
{
    EXPECT_THROW(runBatchSweep(workload::gpt2(),
                               hw::platforms::intelH100(), {}),
                 FatalError);
}

TEST(Sweep, SeriesExtraction)
{
    SweepResult sweep = syntheticSweep({1, 2, 4}, {10, 20, 30},
                                       {100, 200, 300}, {5, 6, 7},
                                       {1, 2, 3});
    EXPECT_DOUBLE_EQ(sweep.tklqtSeries().at(2), 20.0);
    EXPECT_DOUBLE_EQ(sweep.latencySeries().at(4), 300.0);
    EXPECT_DOUBLE_EQ(sweep.gpuIdleSeries().at(1), 5.0);
    EXPECT_DOUBLE_EQ(sweep.cpuIdleSeries().at(4), 3.0);
}

TEST(Sweep, LatencyGrowsWithLargeBatch)
{
    SweepResult sweep = runBatchSweep(
        workload::bertBaseUncased(), hw::platforms::intelH100(),
        {1, 32}, 512);
    EXPECT_GT(sweep.at(32).metrics.ilNs, sweep.at(1).metrics.ilNs);
}

// ------------------------------------------------------------ boundedness

TEST(Boundedness, PlateauThenKneeDetected)
{
    SweepResult sweep = syntheticSweep(
        {1, 2, 4, 8, 16}, {100, 110, 105, 2000, 9000},
        {10, 10, 10, 20, 40});
    BoundednessResult result = classifyBoundedness(sweep, 8.0);
    ASSERT_TRUE(result.transitionBatch.has_value());
    EXPECT_EQ(*result.transitionBatch, 8);
    EXPECT_EQ(result.lastCpuBoundBatch, 4);
    EXPECT_EQ(result.classify(4), Boundedness::CpuBound);
    EXPECT_EQ(result.classify(8), Boundedness::GpuBound);
    EXPECT_EQ(result.classify(64), Boundedness::GpuBound);
}

TEST(Boundedness, FlatSweepNeverTransitions)
{
    SweepResult sweep = syntheticSweep(
        {1, 2, 4, 8}, {100, 105, 95, 102}, {10, 10, 10, 10});
    BoundednessResult result = classifyBoundedness(sweep);
    EXPECT_FALSE(result.transitionBatch.has_value());
    EXPECT_EQ(result.classify(128), Boundedness::CpuBound);
}

TEST(Boundedness, QueueDominatedFromStart)
{
    // avgLaunch at batch 1 is 1 ms -> queue-bound everywhere.
    SweepResult sweep = syntheticSweep(
        {1, 2, 4}, {1e7, 2e7, 4e7}, {1e7, 2e7, 4e7});
    BoundednessResult result = classifyBoundedness(sweep);
    ASSERT_TRUE(result.transitionBatch.has_value());
    EXPECT_EQ(*result.transitionBatch, 1);
    EXPECT_EQ(result.classify(1), Boundedness::GpuBound);
}

TEST(Boundedness, EmptySweepThrows)
{
    SweepResult sweep;
    EXPECT_THROW(classifyBoundedness(sweep), FatalError);
}

TEST(Boundedness, Names)
{
    EXPECT_STREQ(boundednessName(Boundedness::CpuBound), "CPU-bound");
    EXPECT_STREQ(boundednessName(Boundedness::GpuBound), "GPU-bound");
}

// -------------------------------------------------------------- sweet spot

TEST(SweetSpot, BalancedMiddleRegionFound)
{
    // Idle fractions: low batch = GPU idle; high batch = CPU idle.
    SweepResult sweep = syntheticSweep(
        {1, 2, 4, 8, 16},
        {0, 0, 0, 0, 0},
        {100, 100, 100, 100, 100},
        {90, 60, 20, 10, 5},    // gpu idle
        {5, 10, 20, 30, 80});   // cpu idle
    // Worse idle fractions: {0.9, 0.6, 0.2, 0.3, 0.8} -> [4, 8].
    SweetSpot spot = findSweetSpot(sweep, 0.5);
    EXPECT_EQ(spot.minBatch, 4);
    EXPECT_EQ(spot.maxBatch, 8);
}

TEST(SweetSpot, FallsBackToLeastBadPoint)
{
    SweepResult sweep = syntheticSweep(
        {1, 2}, {0, 0}, {100, 100}, {95, 60}, {2, 70});
    SweetSpot spot = findSweetSpot(sweep, 0.3);
    EXPECT_EQ(spot.minBatch, 2);
    EXPECT_EQ(spot.maxBatch, 2);
}

TEST(SweetSpot, InvalidThresholdThrows)
{
    SweepResult sweep = syntheticSweep({1}, {0}, {1}, {0}, {0});
    EXPECT_THROW(findSweetSpot(sweep, 0.0), FatalError);
    EXPECT_THROW(findSweetSpot(sweep, 1.0), FatalError);
    EXPECT_THROW(findSweetSpot(SweepResult{}), FatalError);
}

// -------------------------------------------------------------- crossover

TEST(Crossover, ChallengerWinsBeyondPoint)
{
    SweepResult challenger = syntheticSweep(
        {1, 2, 4, 8}, {0, 0, 0, 0}, {100, 100, 100, 100});
    SweepResult baseline = syntheticSweep(
        {1, 2, 4, 8}, {0, 0, 0, 0}, {20, 50, 120, 300});
    Crossover cross = findCrossover(challenger, baseline);
    ASSERT_TRUE(cross.firstWinBatch.has_value());
    EXPECT_EQ(*cross.firstWinBatch, 4);
    ASSERT_TRUE(cross.crossoverPoint.has_value());
    EXPECT_EQ(*cross.crossoverPoint, 2);
}

TEST(Crossover, NoWinMeansNoCrossover)
{
    SweepResult challenger = syntheticSweep(
        {1, 2}, {0, 0}, {500, 500});
    SweepResult baseline = syntheticSweep({1, 2}, {0, 0}, {10, 20});
    Crossover cross = findCrossover(challenger, baseline);
    EXPECT_FALSE(cross.firstWinBatch.has_value());
    EXPECT_FALSE(cross.crossoverPoint.has_value());
}

TEST(Crossover, WinFromStartHasNoCp)
{
    SweepResult challenger = syntheticSweep(
        {1, 2}, {0, 0}, {5, 5});
    SweepResult baseline = syntheticSweep({1, 2}, {0, 0}, {10, 20});
    Crossover cross = findCrossover(challenger, baseline);
    ASSERT_TRUE(cross.firstWinBatch.has_value());
    EXPECT_EQ(*cross.firstWinBatch, 1);
    EXPECT_FALSE(cross.crossoverPoint.has_value());
}

TEST(Crossover, TransientWinIgnored)
{
    // Challenger dips below once at batch 2 but loses again at 4:
    // only the trailing run counts.
    SweepResult challenger = syntheticSweep(
        {1, 2, 4, 8}, {0, 0, 0, 0}, {100, 10, 100, 10});
    SweepResult baseline = syntheticSweep(
        {1, 2, 4, 8}, {0, 0, 0, 0}, {50, 50, 50, 50});
    Crossover cross = findCrossover(challenger, baseline);
    ASSERT_TRUE(cross.firstWinBatch.has_value());
    EXPECT_EQ(*cross.firstWinBatch, 8);
    EXPECT_EQ(*cross.crossoverPoint, 4);
}

TEST(Crossover, DisjointGridsThrow)
{
    SweepResult a = syntheticSweep({1, 2}, {0, 0}, {1, 1});
    SweepResult b = syntheticSweep({4, 8}, {0, 0}, {1, 1});
    EXPECT_THROW(findCrossover(a, b), FatalError);
}

TEST(Speedup, RatioComputed)
{
    SweepResult challenger = syntheticSweep({4}, {0}, {50});
    SweepResult baseline = syntheticSweep({4}, {0}, {100});
    EXPECT_DOUBLE_EQ(speedupAt(challenger, baseline, 4), 2.0);
}

TEST(ComparePlatforms, SharedGridTabulated)
{
    SweepResult a = syntheticSweep({1, 2, 4}, {0, 0, 0}, {10, 20, 30});
    SweepResult b = syntheticSweep({2, 4, 8}, {0, 0, 0}, {5, 6, 7});
    auto rows = comparePlatforms({a, b});
    ASSERT_EQ(rows.size(), 2u); // batches 2 and 4
    EXPECT_EQ(rows[0].batch, 2);
    EXPECT_DOUBLE_EQ(rows[0].latencyNs[0], 20.0);
    EXPECT_DOUBLE_EQ(rows[0].latencyNs[1], 5.0);
    EXPECT_THROW(comparePlatforms({}), FatalError);
}

} // namespace
} // namespace skipsim::analysis
