/**
 * @file
 * Tests for graph flattening and the fusion application prototype:
 * timeline equivalence under simulation, Eq. 7 launch accounting on
 * rewritten graphs, preserved GPU work, and validated speedups in the
 * CPU-bound region (the paper's future-work experiment).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "fusion/apply.hh"
#include "hw/catalog.hh"
#include "sim/simulator.hh"
#include "skip/profile.hh"
#include "workload/builder.hh"
#include "workload/flatten.hh"

namespace skipsim::fusion
{
namespace
{

workload::OperatorGraph
gpt2Eager(int batch = 1)
{
    workload::BuildOptions opts;
    opts.batch = batch;
    return workload::buildPrefillGraph(workload::gpt2(), opts);
}

sim::SimOptions
noJitter()
{
    sim::SimOptions opts;
    opts.jitter = false;
    return opts;
}

// ---------------------------------------------------------------- flatten

TEST(Flatten, PreservesCpuAndLaunchTotals)
{
    workload::OperatorGraph graph = gpt2Eager();
    workload::Timeline timeline = workload::flattenGraph(graph);
    EXPECT_NEAR(timeline.totalCpuNs(), graph.totalCpuNs(), 1e-6);
    EXPECT_EQ(timeline.numKernelLaunches(), graph.numKernelLaunches());
    EXPECT_EQ(timeline.steps.size(),
              graph.numKernelLaunches() + graph.numMemcpys());
}

TEST(Flatten, RoundTripGraphSimulatesIdentically)
{
    workload::OperatorGraph original = gpt2Eager();
    workload::OperatorGraph flat =
        workload::timelineToGraph(workload::flattenGraph(original));

    sim::Simulator simulator(hw::platforms::intelH100(), noJitter());
    sim::SimResult a = simulator.run(original);
    sim::SimResult b = simulator.run(flat);

    // Kernel timestamps (the simulator-visible behaviour) must match.
    auto ka = a.trace.ofKind(trace::EventKind::Kernel);
    auto kb = b.trace.ofKind(trace::EventKind::Kernel);
    ASSERT_EQ(ka.size(), kb.size());
    for (std::size_t i = 0; i < ka.size(); ++i) {
        EXPECT_EQ(ka[i].name, kb[i].name) << i;
        EXPECT_EQ(ka[i].tsBeginNs, kb[i].tsBeginNs) << i;
        EXPECT_EQ(ka[i].durNs, kb[i].durNs) << i;
    }
}

TEST(Flatten, KernelSequencePreserved)
{
    workload::OperatorGraph graph = gpt2Eager(4);
    workload::OperatorGraph flat =
        workload::timelineToGraph(workload::flattenGraph(graph));
    EXPECT_EQ(flat.kernelSequence(), graph.kernelSequence());
}

TEST(Flatten, EmptyGraphFlattens)
{
    workload::OperatorGraph graph;
    workload::Timeline timeline = workload::flattenGraph(graph);
    EXPECT_TRUE(timeline.steps.empty());
    EXPECT_DOUBLE_EQ(timeline.cpuTailNs, 0.0);
}

// ------------------------------------------------------------------ apply

TEST(ApplyFusion, Eq7AccountingOnRealGraph)
{
    workload::OperatorGraph graph = gpt2Eager();
    AppliedFusion applied = applyFusion(graph, 256);
    EXPECT_EQ(applied.launchesBefore, 405u);
    EXPECT_EQ(applied.chainsApplied, 1u);
    EXPECT_EQ(applied.launchesAfter, 150u);
    EXPECT_NEAR(applied.idealSpeedup, 2.70, 0.01);
    EXPECT_EQ(applied.graph.numKernelLaunches(), 150u);
}

TEST(ApplyFusion, GpuWorkPreserved)
{
    workload::OperatorGraph graph = gpt2Eager();
    AppliedFusion applied = applyFusion(graph, 64);
    EXPECT_NEAR(applied.graph.totalFlops(), graph.totalFlops(), 1.0);
    EXPECT_NEAR(applied.graph.totalBytes(), graph.totalBytes(), 1.0);
}

TEST(ApplyFusion, LaunchOnlyKeepsCpu)
{
    workload::OperatorGraph graph = gpt2Eager();
    AppliedFusion applied =
        applyFusion(graph, 128, ApplyMode::LaunchOnly);
    EXPECT_NEAR(applied.graph.totalCpuNs(), graph.totalCpuNs(), 1e-3);
}

TEST(ApplyFusion, CollapseOpsShedsCpu)
{
    workload::OperatorGraph graph = gpt2Eager();
    AppliedFusion applied =
        applyFusion(graph, 128, ApplyMode::CollapseOps);
    EXPECT_LT(applied.graph.totalCpuNs(), graph.totalCpuNs());
}

TEST(ApplyFusion, FusedKernelAppearsInSequence)
{
    workload::OperatorGraph graph = gpt2Eager();
    AppliedFusion applied = applyFusion(graph, 256);
    auto seq = applied.graph.kernelSequence();
    bool found = false;
    for (const auto &name : seq) {
        if (name.rfind("ps_fused_L256_", 0) == 0)
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(ApplyFusion, NoDeterministicChainsNoChange)
{
    // At a length longer than the sequence nothing can fuse.
    workload::OperatorGraph graph = gpt2Eager();
    AppliedFusion applied = applyFusion(graph, 512);
    EXPECT_EQ(applied.chainsApplied, 0u);
    EXPECT_EQ(applied.launchesAfter, applied.launchesBefore);
    EXPECT_DOUBLE_EQ(applied.idealSpeedup, 1.0);
}

TEST(ApplyFusion, InvalidLengthThrows)
{
    workload::OperatorGraph graph = gpt2Eager();
    EXPECT_THROW(applyFusion(graph, 1), FatalError);
}

TEST(ApplyFusion, ModeNames)
{
    EXPECT_STREQ(applyModeName(ApplyMode::LaunchOnly), "launch-only");
    EXPECT_STREQ(applyModeName(ApplyMode::CollapseOps), "collapse-ops");
}

// ----------------------------------------------------- simulated validation

TEST(ApplyFusion, SimulatedSpeedupPositiveWhenCpuBound)
{
    // GPT2 BS=1 on GH200 is deep in the CPU-bound region: applying the
    // L=256 chain must produce a real simulated speedup.
    workload::OperatorGraph eager = gpt2Eager();
    AppliedFusion launch_only =
        applyFusion(eager, 256, ApplyMode::LaunchOnly);
    AppliedFusion collapse =
        applyFusion(eager, 256, ApplyMode::CollapseOps);

    sim::Simulator simulator(hw::platforms::gh200(), noJitter());
    double t_eager = simulator.run(eager).wallNs;
    double t_launch = simulator.run(launch_only.graph).wallNs;
    double t_collapse = simulator.run(collapse.graph).wallNs;

    EXPECT_GT(t_eager / t_launch, 1.02);
    // Collapsing dispatch must beat launch interception.
    EXPECT_GT(t_collapse, 0.0);
    EXPECT_GT(t_eager / t_collapse, t_eager / t_launch);
}

TEST(ApplyFusion, SimulatedSpeedupBelowIdealized)
{
    // Eq. 8 assumes latency is proportional to launch count; real
    // execution keeps framework dispatch, so the simulated speedup is
    // below the idealized one (the validation gap the paper's future
    // work is after).
    workload::OperatorGraph eager = gpt2Eager();
    AppliedFusion applied =
        applyFusion(eager, 256, ApplyMode::CollapseOps);

    sim::Simulator simulator(hw::platforms::gh200(), noJitter());
    double t_eager = simulator.run(eager).wallNs;
    double t_fused = simulator.run(applied.graph).wallNs;
    EXPECT_LT(t_eager / t_fused, applied.idealSpeedup);
}

TEST(ApplyFusion, NoBenefitWhenGpuBound)
{
    // At BS=64 GPT2 is GPU-bound everywhere: fusion saves launches but
    // the simulated latency barely moves (paper Sec. V-C).
    workload::OperatorGraph eager = gpt2Eager(64);
    AppliedFusion applied =
        applyFusion(eager, 256, ApplyMode::CollapseOps);

    sim::Simulator simulator(hw::platforms::intelH100(), noJitter());
    double t_eager = simulator.run(eager).wallNs;
    double t_fused = simulator.run(applied.graph).wallNs;
    EXPECT_NEAR(t_eager / t_fused, 1.0, 0.05);
}

class ApplyLengths : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(ApplyLengths, AccountingInvariants)
{
    workload::OperatorGraph eager = gpt2Eager();
    AppliedFusion applied = applyFusion(eager, GetParam());
    EXPECT_EQ(applied.launchesAfter,
              applied.launchesBefore -
                  applied.chainsApplied * (GetParam() - 1));
    EXPECT_EQ(applied.graph.numKernelLaunches(), applied.launchesAfter);
    EXPECT_NEAR(applied.graph.totalFlops(), eager.totalFlops(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Lengths, ApplyLengths,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128,
                                           256));

} // namespace
} // namespace skipsim::fusion
