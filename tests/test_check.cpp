/**
 * @file
 * Tests of the correctness subsystem itself (skipsim::check): the
 * trace invariant checker against hand-built violations and mutated
 * golden traces, the metamorphic property catalog, and the fuzz
 * harness (deterministic generation, JSON round trips, and the
 * fail -> shrink -> repro-on-disk path driven by a trace mutator that
 * stands in for a broken engine build).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "check/fuzzer.hh"
#include "check/invariants.hh"
#include "check/mdc.hh"
#include "check/properties.hh"
#include "common/logging.hh"
#include "json/parser.hh"
#include "json/writer.hh"
#include "trace/chrome.hh"
#include "trace/event.hh"
#include "trace/trace.hh"

#ifndef SKIPSIM_TESTS_DATA_DIR
#define SKIPSIM_TESTS_DATA_DIR "tests/data"
#endif

namespace skipsim::check
{
namespace
{

trace::TraceEvent
makeEvent(trace::EventKind kind, const std::string &name,
          std::int64_t begin, std::int64_t dur, std::uint64_t corr = 0,
          int stream = -1)
{
    trace::TraceEvent ev;
    ev.kind = kind;
    ev.name = name;
    ev.tsBeginNs = begin;
    ev.durNs = dur;
    ev.tid = 1;
    ev.correlationId = corr;
    ev.streamId = ev.onGpu() ? (stream < 0 ? 7 : stream) : -1;
    return ev;
}

using trace::EventKind;

// ------------------------------------------------------------ invariants

TEST(ValidateTrace, CleanPairPasses)
{
    trace::Trace t;
    t.add(makeEvent(EventKind::Runtime, "cudaLaunchKernel", 0, 2, 1));
    t.add(makeEvent(EventKind::Kernel, "k", 3, 5, 1));
    TraceCheckReport report = validateTrace(t);
    EXPECT_TRUE(report.ok()) << report.render();
    EXPECT_EQ(report.pairsChecked, 1u);
    EXPECT_EQ(report.gpuChecked, 1u);
}

TEST(ValidateTrace, NegativeDuration)
{
    trace::Trace t;
    t.add(makeEvent(EventKind::Operator, "op", 0, -4));
    TraceCheckReport report = validateTrace(t);
    ASSERT_TRUE(report.has("negative-duration")) << report.render();
    EXPECT_NE(report.violations[0].message.find("-4"),
              std::string::npos);
}

TEST(ValidateTrace, MissingStream)
{
    trace::Trace t;
    trace::TraceEvent k = makeEvent(EventKind::Kernel, "k", 0, 1, 1);
    k.streamId = -1;
    t.add(k);
    t.add(makeEvent(EventKind::Runtime, "l", 0, 1, 1));
    EXPECT_TRUE(validateTrace(t).has("missing-stream"));
}

TEST(ValidateTrace, CorrelationBijectionCodes)
{
    // Two launches sharing one correlation id.
    trace::Trace dup_launch;
    dup_launch.add(makeEvent(EventKind::Runtime, "l1", 0, 1, 5));
    dup_launch.add(makeEvent(EventKind::Runtime, "l2", 2, 1, 5));
    dup_launch.add(makeEvent(EventKind::Kernel, "k", 4, 1, 5));
    EXPECT_TRUE(validateTrace(dup_launch)
                    .has("duplicate-launch-correlation"));

    // Two kernels sharing one correlation id.
    trace::Trace dup_kernel;
    dup_kernel.add(makeEvent(EventKind::Runtime, "l", 0, 1, 5));
    dup_kernel.add(makeEvent(EventKind::Kernel, "k1", 2, 1, 5));
    dup_kernel.add(makeEvent(EventKind::Kernel, "k2", 4, 1, 5));
    EXPECT_TRUE(validateTrace(dup_kernel)
                    .has("duplicate-kernel-correlation"));

    // A kernel whose correlation id matches no launch.
    trace::Trace orphan;
    orphan.add(makeEvent(EventKind::Kernel, "k", 0, 1, 9));
    EXPECT_TRUE(validateTrace(orphan).has("orphan-kernel"));

    // A launch whose correlation id matches no GPU event.
    trace::Trace childless;
    childless.add(makeEvent(EventKind::Runtime, "l", 0, 1, 3));
    EXPECT_TRUE(validateTrace(childless).has("launch-without-kernel"));

    // A kernel with no correlation id at all.
    trace::Trace uncorrelated;
    uncorrelated.add(makeEvent(EventKind::Kernel, "k", 0, 1, 0));
    EXPECT_TRUE(
        validateTrace(uncorrelated).has("kernel-without-correlation"));
}

TEST(ValidateTrace, KernelBeforeLaunchBreaksCausality)
{
    trace::Trace t;
    t.add(makeEvent(EventKind::Runtime, "l", 10, 2, 1));
    t.add(makeEvent(EventKind::Kernel, "k", 5, 3, 1));
    TraceCheckReport report = validateTrace(t);
    EXPECT_TRUE(report.has("kernel-before-launch")) << report.render();
    // The derived launch-queue depth dips to -1 at the kernel begin.
    EXPECT_TRUE(report.has("negative-queue-depth")) << report.render();
}

TEST(ValidateTrace, StreamOverlapDetected)
{
    trace::Trace t;
    t.add(makeEvent(EventKind::Runtime, "l1", 0, 1, 1));
    t.add(makeEvent(EventKind::Runtime, "l2", 1, 1, 2));
    t.add(makeEvent(EventKind::Kernel, "k1", 2, 10, 1));
    t.add(makeEvent(EventKind::Kernel, "k2", 5, 10, 2)); // overlaps k1
    TraceCheckReport report = validateTrace(t);
    EXPECT_TRUE(report.has("stream-overlap")) << report.render();
    // Distinct streams are independent: moving k2 off-stream clears it.
    trace::Trace two_streams;
    two_streams.add(makeEvent(EventKind::Runtime, "l1", 0, 1, 1));
    two_streams.add(makeEvent(EventKind::Runtime, "l2", 1, 1, 2));
    two_streams.add(makeEvent(EventKind::Kernel, "k1", 2, 10, 1, 7));
    two_streams.add(makeEvent(EventKind::Kernel, "k2", 5, 10, 2, 8));
    EXPECT_TRUE(validateTrace(two_streams).ok());
}

TEST(ValidateTrace, FifoOrderViolationDetected)
{
    // Kernels run without overlap, but in the opposite order of their
    // launches: an in-order stream cannot do that.
    trace::Trace t;
    t.add(makeEvent(EventKind::Runtime, "l1", 10, 1, 1));
    t.add(makeEvent(EventKind::Runtime, "l2", 5, 1, 2));
    t.add(makeEvent(EventKind::Kernel, "k1", 20, 2, 1));
    t.add(makeEvent(EventKind::Kernel, "k2", 25, 2, 2));
    TraceCheckReport report = validateTrace(t);
    EXPECT_TRUE(report.has("fifo-order")) << report.render();
    EXPECT_FALSE(report.has("stream-overlap"));
}

TEST(ValidateTrace, LaunchOutsideOperatorOnlyWithOperators)
{
    // With no Operator events the enclosure check is skipped entirely.
    trace::Trace bare;
    bare.add(makeEvent(EventKind::Runtime, "l", 50, 1, 1));
    bare.add(makeEvent(EventKind::Kernel, "k", 55, 1, 1));
    EXPECT_TRUE(validateTrace(bare).ok());

    // With operators present, a launch outside all of them is flagged.
    trace::Trace t;
    t.add(makeEvent(EventKind::Operator, "op", 0, 10));
    t.add(makeEvent(EventKind::Runtime, "l", 50, 1, 1));
    t.add(makeEvent(EventKind::Kernel, "k", 55, 1, 1));
    EXPECT_TRUE(validateTrace(t).has("launch-outside-operator"));

    // The same launch inside the operator passes.
    trace::Trace enclosed;
    enclosed.add(makeEvent(EventKind::Operator, "op", 0, 60));
    enclosed.add(makeEvent(EventKind::Runtime, "l", 50, 1, 1));
    enclosed.add(makeEvent(EventKind::Kernel, "k", 55, 1, 1));
    EXPECT_TRUE(validateTrace(enclosed).ok());
}

TEST(ValidateTrace, ReportRenderAndJson)
{
    trace::Trace t;
    t.add(makeEvent(EventKind::Operator, "op", 0, -1));
    TraceCheckReport report = validateTrace(t);
    EXPECT_NE(report.render().find("FAIL"), std::string::npos);
    EXPECT_NE(report.render().find("negative-duration"),
              std::string::npos);
    json::Value doc = report.toJson();
    EXPECT_FALSE(doc.asObject().at("ok").asBool());
    EXPECT_EQ(doc.asObject().at("violations").asArray().size(), 1u);
}

// ----------------------------------------------------- golden mutations

std::string
goldenPath(const std::string &name)
{
    return std::string(SKIPSIM_TESTS_DATA_DIR) + "/" + name;
}

trace::Trace
loadGolden()
{
    return trace::readChromeFile(goldenPath("golden_sim_trace.json"));
}

/** Rebuild @p src with its event list passed through @p mutate. */
trace::Trace
mutated(const trace::Trace &src,
        const std::function<void(std::vector<trace::TraceEvent> &)>
            &mutate)
{
    std::vector<trace::TraceEvent> events = src.events();
    mutate(events);
    trace::Trace out;
    for (trace::TraceEvent &ev : events)
        out.add(std::move(ev));
    return out;
}

TEST(GoldenMutations, PristineGoldenValidates)
{
    TraceCheckReport report = validateTrace(loadGolden());
    EXPECT_TRUE(report.ok()) << report.render();
    EXPECT_GT(report.pairsChecked, 100u);
}

TEST(GoldenMutations, SeededCorruptionsAreEachRejected)
{
    trace::Trace golden = loadGolden();

    // Indices of the first two kernels in event order.
    std::vector<std::size_t> kernels;
    for (std::size_t i = 0;
         i < golden.events().size() && kernels.size() < 2; ++i) {
        if (golden.events()[i].kind == EventKind::Kernel)
            kernels.push_back(i);
    }
    ASSERT_EQ(kernels.size(), 2u);

    // Mutation 1: swap the begin timestamps of two adjacent kernels.
    TraceCheckReport swapped = validateTrace(
        mutated(golden, [&](std::vector<trace::TraceEvent> &evs) {
            std::swap(evs[kernels[0]].tsBeginNs,
                      evs[kernels[1]].tsBeginNs);
        }));
    EXPECT_FALSE(swapped.ok());
    EXPECT_TRUE(swapped.has("stream-overlap") ||
                swapped.has("fifo-order"))
        << swapped.render();

    // Mutation 2: duplicate a correlation id across two kernels.
    TraceCheckReport duped = validateTrace(
        mutated(golden, [&](std::vector<trace::TraceEvent> &evs) {
            evs[kernels[1]].correlationId =
                evs[kernels[0]].correlationId;
        }));
    EXPECT_FALSE(duped.ok());
    EXPECT_TRUE(duped.has("duplicate-kernel-correlation"))
        << duped.render();

    // Mutation 3: negate one kernel duration.
    TraceCheckReport negated = validateTrace(
        mutated(golden, [&](std::vector<trace::TraceEvent> &evs) {
            evs[kernels[0]].durNs = -evs[kernels[0]].durNs;
        }));
    EXPECT_FALSE(negated.ok());
    EXPECT_TRUE(negated.has("negative-duration")) << negated.render();

    // Each corruption yields its own distinct leading diagnostic.
    std::set<std::string> messages{swapped.violations[0].message,
                                   duped.violations[0].message,
                                   negated.violations[0].message};
    EXPECT_EQ(messages.size(), 3u);
}

// ------------------------------------------------------------ mdc oracle

TEST(MdcSolver, ErlangFormulasMatchKnownValues)
{
    // B(1, a) = a / (1 + a); C(1, a) = a (the M/M/1 delay
    // probability is the utilization).
    EXPECT_NEAR(erlangB(1, 0.5), 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(erlangC(1, 0.5), 0.5, 1e-12);
    // Textbook values: B(2, 1) = 1/5, C(2, 1) = 1/3, B(3, 2) = 4/19.
    EXPECT_NEAR(erlangB(2, 1.0), 0.2, 1e-12);
    EXPECT_NEAR(erlangC(2, 1.0), 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(erlangB(3, 2.0), 4.0 / 19.0, 1e-12);
    // Zero offered load never blocks and never queues.
    EXPECT_NEAR(erlangB(4, 0.0), 0.0, 1e-12);
    EXPECT_NEAR(erlangC(4, 0.0), 0.0, 1e-12);
}

TEST(MdcSolver, SingleServerIsExactPollaczekKhinchine)
{
    // rho = 0.6 with S = 3e6 ns: Wq = rho S / (2 (1 - rho)).
    double service_ns = 3e6;
    double rate = 200.0;
    MdcSolution mdc = solveMdc(rate, service_ns, 1);
    double rho = rate / 1e9 * service_ns;
    EXPECT_NEAR(mdc.utilization, rho, 1e-12);
    double wq = rho * service_ns / (2.0 * (1.0 - rho));
    EXPECT_NEAR(mdc.meanWaitNs, wq, 1e-6);
    EXPECT_NEAR(mdc.meanResponseNs, wq + service_ns, 1e-6);
    EXPECT_NEAR(mdc.delayProbability, rho, 1e-12);
    EXPECT_NEAR(mdc.meanQueueLength, rate / 1e9 * wq, 1e-12);
}

TEST(MdcSolver, PoolingServersShrinksTheWait)
{
    // Same per-server utilization (rho = 0.8): a pooled M/D/c always
    // waits less than c separate M/D/1 queues, and more pooling keeps
    // helping.
    double service_ns = 5e6;
    double w1 = solveMdc(160.0, service_ns, 1).meanWaitNs;
    double w2 = solveMdc(320.0, service_ns, 2).meanWaitNs;
    double w4 = solveMdc(640.0, service_ns, 4).meanWaitNs;
    EXPECT_LT(w2, w1);
    EXPECT_LT(w4, w2);
    EXPECT_GT(w4, 0.0);
}

TEST(MdcSolver, SaturationBlowsUpAndOverloadPanics)
{
    double service_ns = 1e6;
    double w_low = solveMdc(500.0, service_ns, 1).meanWaitNs;
    double w_high = solveMdc(950.0, service_ns, 1).meanWaitNs;
    EXPECT_GT(w_high, 10.0 * w_low);
    EXPECT_THROW(solveMdc(1000.0, service_ns, 1), PanicError);
    EXPECT_THROW(solveMdc(-1.0, service_ns, 1), PanicError);
    EXPECT_THROW(solveMdc(500.0, 0.0, 1), PanicError);
    EXPECT_THROW(solveMdc(500.0, service_ns, 0), PanicError);
    EXPECT_THROW(erlangC(2, 2.0), PanicError);
}

TEST(MdcSolver, MedianTracksTheDelayProbability)
{
    // Below half delay probability the median arrival never waits.
    double service_ns = 1e6;
    MdcSolution light = solveMdc(100.0, service_ns, 4);
    EXPECT_LE(light.delayProbability, 0.5);
    EXPECT_EQ(light.medianWaitNs, 0.0);
    EXPECT_NEAR(light.medianResponseNs, service_ns, 1e-9);
    // Deep in saturation most arrivals wait and the median is
    // positive but below the mean (the wait tail is right-skewed).
    MdcSolution heavy = solveMdc(920.0, service_ns, 1);
    EXPECT_GT(heavy.delayProbability, 0.5);
    EXPECT_GT(heavy.medianWaitNs, 0.0);
    EXPECT_LT(heavy.medianWaitNs, heavy.meanWaitNs);
}

// ------------------------------------------------------------ properties

TEST(Properties, CatalogCoversAllEnginesWithUniqueNames)
{
    const std::vector<Property> &catalog = properties();
    EXPECT_GE(catalog.size(), 8u);
    std::set<std::string> names;
    std::set<std::string> engines;
    for (const Property &p : catalog) {
        names.insert(p.name);
        engines.insert(p.engine);
        EXPECT_FALSE(p.law.empty()) << p.name;
        // Dotted "<engine>.<law>" naming, stable across releases.
        EXPECT_EQ(p.name.rfind(p.engine + ".", 0), 0u) << p.name;
    }
    EXPECT_EQ(names.size(), catalog.size());
    EXPECT_EQ(engines,
              (std::set<std::string>{"sim", "serving", "cluster"}));
}

TEST(Properties, AllPass)
{
    std::vector<PropertyResult> results = runProperties();
    ASSERT_GE(results.size(), 8u);
    for (const PropertyResult &r : results)
        EXPECT_TRUE(r.passed)
            << r.name << ": " << r.detail << " (base " << r.baseValue
            << ", perturbed " << r.perturbedValue << ")";
    std::string table = renderProperties(results);
    EXPECT_NE(table.find("passed"), std::string::npos);
    json::Value doc = propertiesToJson(results);
    EXPECT_EQ(doc.asObject().at("properties").asArray().size(),
              results.size());
    EXPECT_EQ(doc.asObject().at("passed").asInt(),
              static_cast<std::int64_t>(results.size()));
}

TEST(Properties, FilterSelectsSubset)
{
    std::vector<PropertyResult> sim_only = runProperties("sim.");
    ASSERT_FALSE(sim_only.empty());
    for (const PropertyResult &r : sim_only)
        EXPECT_EQ(r.engine, "sim") << r.name;
    EXPECT_LT(sim_only.size(), properties().size());
    EXPECT_TRUE(runProperties("no-such-property").empty());
}

// ---------------------------------------------------------------- fuzzer

TEST(Fuzzer, GenerationIsDeterministicAndKindDiverse)
{
    FuzzOptions opts;
    opts.seed = 42;
    opts.quick = true;
    Fuzzer a(opts);
    Fuzzer b(opts);
    std::set<FuzzKind> kinds;
    for (std::uint64_t i = 0; i < 40; ++i) {
        FuzzCase ca = a.generate(i);
        FuzzCase cb = b.generate(i);
        EXPECT_EQ(json::write(ca.toJson()), json::write(cb.toJson()))
            << "case " << i;
        kinds.insert(ca.kind);
    }
    EXPECT_EQ(kinds.size(), 4u) << "generator never hit some engine";
}

TEST(Fuzzer, CaseJsonRoundTripsForEveryKind)
{
    FuzzOptions opts;
    opts.seed = 7;
    opts.quick = true;
    Fuzzer fuzzer(opts);
    std::set<FuzzKind> seen;
    for (std::uint64_t i = 0; i < 40 && seen.size() < 4; ++i) {
        FuzzCase c = fuzzer.generate(i);
        if (!seen.insert(c.kind).second)
            continue;
        FuzzCase reparsed = FuzzCase::fromJson(c.toJson());
        EXPECT_EQ(json::write(reparsed.toJson()),
                  json::write(c.toJson()))
            << fuzzKindName(c.kind);
    }
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Fuzzer, GraphJsonRejectsMalformedDocuments)
{
    EXPECT_THROW(graphFromJson(json::parse("{}")), FatalError);
    EXPECT_THROW(
        FuzzCase::fromJson(json::parse(R"({"kind":"warp"})")),
        FatalError);
}

TEST(Fuzzer, HealthyEnginesSurviveAQuickCampaign)
{
    FuzzOptions opts;
    opts.seed = 3;
    opts.cases = 20;
    opts.quick = true;
    opts.reproDir = testing::TempDir();
    FuzzReport report = Fuzzer(opts).run();
    EXPECT_TRUE(report.ok()) << report.render();
    EXPECT_EQ(report.casesRun, 20u);
    EXPECT_EQ(report.reproPath, "");
}

/** Corrupt a trace the way a broken engine would: append a kernel
 *  with a negative duration and a bogus correlation id. */
void
breakTrace(trace::Trace &t)
{
    trace::TraceEvent bad =
        makeEvent(EventKind::Kernel, "corrupted_kernel", 10, -100,
                  987654321);
    t.add(bad);
}

TEST(Fuzzer, BrokenBuildShrinksToMinimalReproOnDisk)
{
    FuzzOptions opts;
    opts.seed = 1;
    opts.cases = 10;
    opts.quick = true;
    opts.jobs = 2;
    opts.reproDir = testing::TempDir();
    opts.traceMutator = breakTrace;
    Fuzzer fuzzer(opts);

    FuzzReport report = fuzzer.run();
    ASSERT_FALSE(report.ok());
    ASSERT_TRUE(report.shrunk);
    EXPECT_EQ(report.minimal.kind, FuzzKind::Sim);

    // Greedy shrinking must reach a near-minimal sim case: the
    // corruption fires on every graph, so almost everything can go.
    EXPECT_LE(report.minimal.sizeScore(), 5u) << report.render();

    // The minimal case still fails under the broken build...
    EXPECT_FALSE(fuzzer.runCase(report.minimal).empty());
    // ...and passes on the healthy engines, pinning the blame.
    FuzzOptions healthy_opts = opts;
    healthy_opts.traceMutator = nullptr;
    EXPECT_TRUE(Fuzzer(healthy_opts).runCase(report.minimal).empty());

    // The repro on disk replays to the same case.
    ASSERT_FALSE(report.reproPath.empty());
    FuzzCase replayed =
        FuzzCase::fromJson(json::parseFile(report.reproPath));
    EXPECT_EQ(json::write(replayed.toJson()),
              json::write(report.minimal.toJson()));
    std::remove(report.reproPath.c_str());
}

TEST(Fuzzer, ShrinkIsIdempotentOnAlreadyMinimalCases)
{
    FuzzOptions opts;
    opts.quick = true;
    opts.traceMutator = breakTrace;
    Fuzzer fuzzer(opts);
    FuzzCase tiny;
    tiny.kind = FuzzKind::Sim;
    tiny.seed = 5;
    workload::OpNode node;
    node.name = "op";
    node.cpuNs = 1000.0;
    tiny.graph.roots.push_back(node);
    ASSERT_FALSE(fuzzer.runCase(tiny).empty());
    FuzzCase shrunk = fuzzer.shrink(tiny);
    EXPECT_EQ(shrunk.sizeScore(), tiny.sizeScore());
}

} // namespace
} // namespace skipsim::check
