/**
 * @file
 * Cluster simulator tests: router policy behavior, spec validation and
 * JSON round trips, the determinism contract (byte-identical reports
 * at any worker count), KV-cache admission control, and the
 * fault-injection envelope (a crashed replica degrades the tail but
 * the router re-routes and most of the work still completes).
 */

#include <gtest/gtest.h>

#include "cluster/cluster.hh"
#include "cluster/router.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "exec/pool.hh"
#include "exec/registry.hh"
#include "exec/run_spec.hh"
#include "hw/catalog.hh"
#include "json/parser.hh"
#include "json/writer.hh"
#include "workload/memory.hh"
#include "workload/model_config.hh"

using namespace skipsim;

namespace
{

/** A small, fast-to-simulate baseline scenario. */
cluster::ClusterSpec
smallSpec(int replicas = 2)
{
    cluster::ClusterSpec spec;
    spec.model = workload::modelByName("GPT2");
    cluster::ReplicaSpec replica;
    replica.platform = hw::platforms::byName("GH200");
    replica.maxActive = 16;
    spec.replicas.assign(static_cast<std::size_t>(replicas), replica);
    spec.arrivalRatePerSec = 60.0;
    spec.horizonSec = 3.0;
    spec.promptLen = 128;
    spec.genTokens = 8;
    spec.sessions = 16;
    return spec;
}

std::string
reportText(const cluster::ClusterResult &result)
{
    return json::write(result.toJson());
}

} // namespace

// ---------------------------------------------------------------------
// Router policies
// ---------------------------------------------------------------------

TEST(Router, RoundRobinCyclesAndSkipsDownReplicas)
{
    cluster::Router router(cluster::RouterPolicy::RoundRobin,
                           {1.0, 1.0, 1.0});
    EXPECT_EQ(router.pick(0, {}), 0u);
    EXPECT_EQ(router.pick(0, {}), 1u);
    EXPECT_EQ(router.pick(0, {}), 2u);
    EXPECT_EQ(router.pick(0, {}), 0u);
    router.markDown(1);
    EXPECT_EQ(router.pick(0, {}), 2u);
    EXPECT_EQ(router.pick(0, {}), 0u);
    EXPECT_EQ(router.pick(0, {}), 2u);
}

TEST(Router, LeastOutstandingPicksArgminWithLowIndexTies)
{
    cluster::Router router(cluster::RouterPolicy::LeastOutstanding,
                           {1.0, 1.0, 1.0});
    EXPECT_EQ(router.pick(0, {}), 0u); // all zero: lowest index
    router.onDispatch(0);
    router.onDispatch(0);
    router.onDispatch(1);
    EXPECT_EQ(router.pick(0, {}), 2u);
    router.onDispatch(2);
    EXPECT_EQ(router.pick(0, {}), 1u);
    router.onSettled(0);
    router.onSettled(0);
    EXPECT_EQ(router.pick(0, {}), 0u);
}

TEST(Router, WeightedThroughputNormalizesByCapacity)
{
    // Replica 1 has 4x the capacity: with 2 vs 1 outstanding the
    // weighted load is 2/1 vs 1/4, so the big replica still wins.
    cluster::Router router(cluster::RouterPolicy::WeightedThroughput,
                           {1.0, 4.0});
    router.onDispatch(0);
    router.onDispatch(0);
    router.onDispatch(1);
    EXPECT_EQ(router.pick(0, {}), 1u);
}

TEST(Router, AffinityPinsSessionsAndFallsBackWhenHomeIsDown)
{
    cluster::Router router(cluster::RouterPolicy::SessionAffinity,
                           {1.0, 1.0, 1.0});
    EXPECT_EQ(router.pick(4, {}), 1u); // 4 % 3
    EXPECT_EQ(router.pick(4, {}), 1u); // sticky
    router.markDown(1);
    std::size_t fallback = router.pick(4, {});
    EXPECT_NE(fallback, 1u);
    EXPECT_NE(fallback, cluster::Router::npos());
    router.markUp(1);
    EXPECT_EQ(router.pick(4, {}), 1u);
}

TEST(Router, NoEligibleReplicaReturnsNpos)
{
    cluster::Router router(cluster::RouterPolicy::LeastOutstanding,
                           {1.0, 1.0});
    router.markDown(0);
    EXPECT_EQ(router.pick(0, {1}), cluster::Router::npos());
    EXPECT_THROW(cluster::Router(cluster::RouterPolicy::RoundRobin, {}),
                 FatalError);
    EXPECT_THROW(cluster::Router(cluster::RouterPolicy::RoundRobin,
                                 {1.0, 0.0}),
                 FatalError);
}

TEST(Router, PolicyNamesRoundTrip)
{
    for (const std::string &name : cluster::routerPolicyNames())
        EXPECT_STREQ(cluster::routerPolicyName(
                         cluster::routerPolicyByName(name)),
                     name.c_str());
    EXPECT_THROW(cluster::routerPolicyByName("bogus"), FatalError);
}

// ---------------------------------------------------------------------
// Spec validation and serialization
// ---------------------------------------------------------------------

TEST(ClusterSpec, ValidateRejectsInconsistentSpecs)
{
    EXPECT_NO_THROW(smallSpec().validate());

    cluster::ClusterSpec no_replicas = smallSpec();
    no_replicas.replicas.clear();
    EXPECT_THROW(no_replicas.validate(), FatalError);

    cluster::ClusterSpec bad_rate = smallSpec();
    bad_rate.arrivalRatePerSec = 0.0;
    EXPECT_THROW(bad_rate.validate(), FatalError);

    cluster::ClusterSpec bad_fault = smallSpec();
    cluster::FaultSpec fault;
    fault.replica = 99;
    bad_fault.faults.push_back(fault);
    EXPECT_THROW(bad_fault.validate(), FatalError);
}

TEST(ClusterSpec, JsonRoundTripIsByteIdentical)
{
    cluster::ClusterSpec spec = smallSpec(3);
    spec.router = cluster::RouterPolicy::SessionAffinity;
    spec.rates = {20.0, 40.0};
    spec.jitterFrac = 0.1;
    cluster::FaultSpec fault;
    fault.atSec = 1.0;
    fault.replica = 2;
    fault.kind = cluster::FaultKind::Partition;
    fault.healSec = 2.0;
    spec.faults.push_back(fault);

    cluster::ClusterSpec back =
        cluster::ClusterSpec::fromJson(spec.toJson());
    EXPECT_EQ(json::write(spec.toJson()), json::write(back.toJson()));
}

TEST(ClusterSpec, ReplicaCountFieldStampsIdenticalReplicas)
{
    json::Value doc = json::parse(R"({
        "replicas": [{"platform": "GH200", "max-active": 8,
                      "count": 3},
                     {"platform": "MI300A"}]
    })");
    cluster::ClusterSpec spec = cluster::ClusterSpec::fromJson(doc);
    ASSERT_EQ(spec.replicas.size(), 4u);
    EXPECT_EQ(spec.replicas[0].platform.name, "GH200");
    EXPECT_EQ(spec.replicas[2].maxActive, 8);
    EXPECT_EQ(spec.replicas[3].platform.name, "MI300A");
}

TEST(ClusterSpec, ScenarioExpansionFollowsSweepSeedDiscipline)
{
    cluster::ClusterSpec spec = smallSpec();
    EXPECT_EQ(spec.scenarioCount(), 1u);
    spec.rates = {10.0, 20.0, 30.0};
    EXPECT_EQ(spec.scenarioCount(), 3u);

    cluster::ClusterSpec second = spec.scenarioAt(1);
    EXPECT_DOUBLE_EQ(second.arrivalRatePerSec, 20.0);
    EXPECT_TRUE(second.rates.empty());
    EXPECT_EQ(second.seed, mixSeed(spec.seed, 1));
    EXPECT_THROW(spec.scenarioAt(3), FatalError);
}

// ---------------------------------------------------------------------
// Determinism contract
// ---------------------------------------------------------------------

TEST(ClusterSim, RepeatedRunsAreByteIdentical)
{
    cluster::ClusterSpec spec = smallSpec();
    spec.jitterFrac = 0.05; // jitter must be seeded, not wall-clock
    std::string first = reportText(cluster::simulateCluster(spec));
    std::string second = reportText(cluster::simulateCluster(spec));
    EXPECT_EQ(first, second);
}

TEST(ClusterSim, RateSweepIsByteIdenticalAtAnyWorkerCount)
{
    cluster::ClusterSpec spec = smallSpec();
    spec.rates = {20.0, 40.0, 60.0, 80.0};

    cluster::CostCache costs;
    costs.build(spec);

    auto sweep = [&](int workers) {
        std::vector<std::string> out(spec.scenarioCount());
        exec::Pool pool(workers);
        pool.run(out.size(), [&](std::size_t i) {
            out[i] = reportText(
                cluster::simulateCluster(spec.scenarioAt(i), costs));
        });
        return out;
    };
    EXPECT_EQ(sweep(1), sweep(4));
}

TEST(ClusterSim, SimulateRejectsUnexpandedSweeps)
{
    cluster::ClusterSpec spec = smallSpec();
    spec.rates = {10.0, 20.0};
    EXPECT_THROW(cluster::simulateCluster(spec), FatalError);
}

// ---------------------------------------------------------------------
// Cluster behavior
// ---------------------------------------------------------------------

TEST(ClusterSim, HealthyClusterCompletesNearlyAllOfferedLoad)
{
    cluster::ClusterResult result =
        cluster::simulateCluster(smallSpec());
    EXPECT_GT(result.offered, 100u);
    // Only the end-of-horizon tail may be unfinished.
    EXPECT_GE(result.completed + result.lost, result.offered);
    EXPECT_GT(static_cast<double>(result.completed),
              0.9 * static_cast<double>(result.offered));
    EXPECT_EQ(result.rerouted, 0u);
    EXPECT_GT(result.p50TtftNs, 0.0);
    EXPECT_LE(result.p50TtftNs, result.p95TtftNs);
    EXPECT_LE(result.p95TtftNs, result.p99TtftNs);
    EXPECT_LE(result.p50E2eNs, result.p99E2eNs);
    EXPECT_GT(result.sloAttainment, 0.8);
    ASSERT_EQ(result.replicas.size(), 2u);
    for (const cluster::ReplicaStats &rep : result.replicas) {
        EXPECT_FALSE(rep.crashed);
        EXPECT_GT(rep.utilization, 0.0);
        EXPECT_LE(rep.utilization, 1.0);
        EXPECT_GT(rep.peakKvBytes, 0.0);
    }
}

TEST(ClusterSim, CrashMidHorizonDegradesTailButReroutesInFlight)
{
    cluster::ClusterSpec healthy = smallSpec(4);
    healthy.arrivalRatePerSec = 120.0;
    healthy.horizonSec = 4.0;

    cluster::ClusterSpec faulted = healthy;
    cluster::FaultSpec crash;
    crash.atSec = 2.0;
    crash.replica = 1;
    crash.kind = cluster::FaultKind::Crash;
    faulted.faults.push_back(crash);

    cluster::CostCache costs;
    costs.build(healthy);
    cluster::ClusterResult base =
        cluster::simulateCluster(healthy, costs);
    cluster::ClusterResult hit =
        cluster::simulateCluster(faulted, costs);

    // Same seed, same arrivals: the fault only changes service.
    EXPECT_EQ(base.offered, hit.offered);
    EXPECT_TRUE(hit.replicas[1].crashed);
    EXPECT_GT(hit.rerouted, 0u);
    EXPECT_GT(hit.replicas[1].rerouted, 0u);
    // The tail pays for the detection delay...
    EXPECT_GT(hit.p99TtftNs, base.p99TtftNs);
    EXPECT_LT(hit.sloAttainment, base.sloAttainment);
    // ...but the router re-routes, so most work still completes.
    EXPECT_GT(static_cast<double>(hit.completed),
              0.75 * static_cast<double>(base.completed));
    // A dead replica stops accruing busy time.
    EXPECT_LT(hit.replicas[1].utilization,
              base.replicas[1].utilization);
}

TEST(ClusterSim, PartitionHealsAndLimboRequestsComplete)
{
    cluster::ClusterSpec spec = smallSpec(2);
    cluster::FaultSpec part;
    part.atSec = 1.0;
    part.replica = 0;
    part.kind = cluster::FaultKind::Partition;
    part.healSec = 2.0;
    spec.faults.push_back(part);

    cluster::ClusterResult result = cluster::simulateCluster(spec);
    EXPECT_FALSE(result.replicas[0].crashed);
    // The partitioned replica comes back and keeps serving.
    EXPECT_GT(result.replicas[0].completed, 0u);
    EXPECT_GT(static_cast<double>(result.completed),
              0.8 * static_cast<double>(result.offered));
}

TEST(ClusterSim, SlowdownFaultShiftsLoadAwayUnderLeastOutstanding)
{
    cluster::ClusterSpec spec = smallSpec(2);
    spec.router = cluster::RouterPolicy::LeastOutstanding;
    cluster::FaultSpec slow;
    slow.atSec = 0.5;
    slow.replica = 0;
    slow.kind = cluster::FaultKind::Slowdown;
    slow.factor = 4.0;
    spec.faults.push_back(slow);

    cluster::ClusterResult result = cluster::simulateCluster(spec);
    // The slow replica's queue backs up, so LOR routes around it.
    EXPECT_LT(result.replicas[0].completed,
              result.replicas[1].completed);
}

TEST(ClusterSim, AffinityConcentratesASingleSession)
{
    cluster::ClusterSpec spec = smallSpec(4);
    spec.router = cluster::RouterPolicy::SessionAffinity;
    spec.sessions = 1; // every request shares one session id
    spec.arrivalRatePerSec = 30.0;

    cluster::ClusterResult result = cluster::simulateCluster(spec);
    std::size_t max_routed = 0;
    for (const cluster::ReplicaStats &rep : result.replicas)
        max_routed = std::max(max_routed, rep.routed);
    // The home replica takes everything the admission loop lets it.
    EXPECT_GT(static_cast<double>(max_routed),
              0.9 * static_cast<double>(result.offered));
}

TEST(ClusterSim, RoundRobinSpreadsLoadEvenly)
{
    cluster::ClusterSpec spec = smallSpec(4);
    spec.router = cluster::RouterPolicy::RoundRobin;
    cluster::ClusterResult result = cluster::simulateCluster(spec);
    std::size_t lo = result.offered, hi = 0;
    for (const cluster::ReplicaStats &rep : result.replicas) {
        lo = std::min(lo, rep.routed);
        hi = std::max(hi, rep.routed);
    }
    EXPECT_LE(hi - lo, 1u);
}

TEST(ClusterSim, WeightedRoutingFavorsTheFasterReplica)
{
    cluster::ClusterSpec spec = smallSpec(2);
    spec.router = cluster::RouterPolicy::WeightedThroughput;
    spec.replicas[1].clock = 0.25; // one permanently degraded instance
    spec.arrivalRatePerSec = 80.0;

    cluster::ClusterResult result = cluster::simulateCluster(spec);
    EXPECT_GT(result.replicas[0].routed, result.replicas[1].routed);
}

TEST(ClusterSim, KvCacheCapacityBoundsAdmission)
{
    cluster::ClusterSpec spec = smallSpec(1);
    spec.replicas[0].maxActive = 64;
    // Shrink HBM until only ~4 KV allocations fit beyond the
    // simulator's weights + max-batch-activations reservation.
    workload::MemoryFootprint one = workload::estimateMemory(
        spec.model, 1, spec.promptLen + spec.genTokens);
    workload::MemoryFootprint at_cap = workload::estimateMemory(
        spec.model, spec.replicas[0].maxActive, spec.promptLen);
    spec.replicas[0].platform.gpu.hbmCapacityGiB =
        (at_cap.weightsBytes + at_cap.activationBytes +
         4.5 * one.kvCacheBytes) /
        (1024.0 * 1024.0 * 1024.0);

    cluster::ClusterResult result = cluster::simulateCluster(spec);
    EXPECT_GT(result.replicas[0].peakKvBytes, 0.0);
    // Despite maxActive=64, KV memory admits only ~4 sequences.
    EXPECT_LE(result.replicas[0].peakKvBytes,
              4.5 * one.kvCacheBytes);
    EXPECT_LT(result.replicas[0].meanActive, 5.0);
}

// ---------------------------------------------------------------------
// exec registry integration
// ---------------------------------------------------------------------

TEST(ClusterAnalysis, RegisteredAndReportsClusterMetrics)
{
    ASSERT_TRUE(exec::hasAnalysis("cluster"));
    exec::RunSpec spec = exec::RunSpec::of("GPT2")
                             .on("GH200")
                             .seqLen(128)
                             .opt("replicas", 2)
                             .opt("rate", 40.0)
                             .opt("horizon-sec", 2.0)
                             .opt("max-active", 16)
                             .opt("gen-tokens", 4);
    json::Value doc = exec::analysisByName("cluster")(spec);
    const json::Object &obj = doc.asObject();
    EXPECT_EQ(obj.at("replica_count").asInt(), 2);
    EXPECT_EQ(obj.at("router").asString(), "least-outstanding");
    EXPECT_GT(obj.at("completed").asInt(), 0);
    EXPECT_GT(obj.at("slo_attainment").asDouble(), 0.0);
    EXPECT_TRUE(obj.has("goodput_rps"));
    EXPECT_EQ(obj.at("replicas").asArray().size(), 2u);
}

TEST(ClusterAnalysis, CostCacheRefusesMismatchedSpecs)
{
    cluster::ClusterSpec spec = smallSpec();
    cluster::CostCache costs;
    costs.build(spec);
    EXPECT_NO_THROW(costs.build(spec)); // idempotent
    cluster::ClusterSpec other = spec;
    other.promptLen = 256;
    EXPECT_THROW(costs.build(other), FatalError);
    EXPECT_THROW(costs.get("not-a-platform"), FatalError);
}
