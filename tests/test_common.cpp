/**
 * @file
 * Unit tests for the common substrate: string utilities, text tables,
 * CLI parsing, deterministic RNG and logging/error helpers.
 */

#include <gtest/gtest.h>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/strutil.hh"
#include "common/table.hh"

namespace skipsim
{
namespace
{

// ---------------------------------------------------------------- strutil

TEST(StrUtil, StrprintfFormatsNumbers)
{
    EXPECT_EQ(strprintf("%d-%s", 42, "x"), "42-x");
}

TEST(StrUtil, StrprintfEmptyFormat)
{
    EXPECT_EQ(strprintf("%s", ""), "");
}

TEST(StrUtil, StrprintfLongOutput)
{
    std::string big(5000, 'a');
    EXPECT_EQ(strprintf("%s", big.c_str()).size(), 5000u);
}

TEST(StrUtil, SplitBasic)
{
    auto parts = split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
}

TEST(StrUtil, SplitKeepsEmptyFields)
{
    auto parts = split("a,,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[1], "");
}

TEST(StrUtil, SplitDropsEmptyFieldsWhenAsked)
{
    auto parts = split(",a,,c,", ',', false);
    ASSERT_EQ(parts.size(), 2u);
}

TEST(StrUtil, SplitEmptyString)
{
    auto parts = split("", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "");
}

TEST(StrUtil, JoinRoundTrip)
{
    std::vector<std::string> parts{"x", "y", "z"};
    EXPECT_EQ(join(parts, "--"), "x--y--z");
}

TEST(StrUtil, JoinEmptyList)
{
    EXPECT_EQ(join({}, ","), "");
}

TEST(StrUtil, TrimWhitespace)
{
    EXPECT_EQ(trim("  hello\t\n "), "hello");
    EXPECT_EQ(trim("none"), "none");
    EXPECT_EQ(trim("   "), "");
}

TEST(StrUtil, StartsEndsWith)
{
    EXPECT_TRUE(startsWith("gemm_f16", "gemm"));
    EXPECT_FALSE(startsWith("ge", "gemm"));
    EXPECT_TRUE(endsWith("kernel_v4", "_v4"));
    EXPECT_FALSE(endsWith("v4", "kernel_v4"));
}

TEST(StrUtil, Contains)
{
    EXPECT_TRUE(contains("abcdef", "cde"));
    EXPECT_FALSE(contains("abcdef", "xyz"));
}

TEST(StrUtil, ToLower)
{
    EXPECT_EQ(toLower("GH200"), "gh200");
}

TEST(StrUtil, FormatNsPicksUnits)
{
    EXPECT_EQ(formatNs(500.0), "500.0 ns");
    EXPECT_EQ(formatNs(2500.0), "2.50 us");
    EXPECT_EQ(formatNs(3.2e6), "3.200 ms");
    EXPECT_EQ(formatNs(1.5e9), "1.5000 s");
}

TEST(StrUtil, FormatBytesPicksUnits)
{
    EXPECT_EQ(formatBytes(512.0), "512 B");
    EXPECT_EQ(formatBytes(2048.0), "2.0 KiB");
    EXPECT_EQ(formatBytes(3.0 * 1024 * 1024), "3.0 MiB");
}

TEST(StrUtil, FormatCountSeparators)
{
    EXPECT_EQ(formatCount(0), "0");
    EXPECT_EQ(formatCount(999), "999");
    EXPECT_EQ(formatCount(1000), "1,000");
    EXPECT_EQ(formatCount(1234567), "1,234,567");
}

// ------------------------------------------------------------------ table

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable table("Title");
    table.setHeader({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow({"b", "22"});
    std::string out = table.render();
    EXPECT_NE(out.find("Title"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    EXPECT_EQ(table.numRows(), 2u);
}

TEST(TextTable, PadsShortRows)
{
    TextTable table;
    table.setHeader({"a", "b", "c"});
    table.addRow({"only"});
    EXPECT_NO_THROW(table.render());
}

TEST(TextTable, RejectsOverlongRows)
{
    TextTable table;
    table.setHeader({"a"});
    EXPECT_THROW(table.addRow({"1", "2"}), FatalError);
}

TEST(TextTable, CsvEscapesCommasAndQuotes)
{
    TextTable table;
    table.setHeader({"k"});
    table.addRow({"a,b"});
    table.addRow({"say \"hi\""});
    std::string csv = table.renderCsv();
    EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
    EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTable, NumericCellsRightAligned)
{
    TextTable table;
    table.setHeader({"col"});
    table.addRow({"999"});
    table.addRow({"wordy-cell"});
    std::string out = table.render();
    // The numeric row should be padded on the left.
    EXPECT_NE(out.find("       999"), std::string::npos);
}

// -------------------------------------------------------------------- cli

TEST(CliArgs, ParsesKeyValuePairs)
{
    const char *argv[] = {"prog", "--batch", "16", "--name", "gpt2"};
    CliArgs args(5, argv);
    EXPECT_EQ(args.getInt("batch", 0), 16);
    EXPECT_EQ(args.getString("name"), "gpt2");
}

TEST(CliArgs, ParsesEqualsForm)
{
    const char *argv[] = {"prog", "--seq=1024"};
    CliArgs args(2, argv);
    EXPECT_EQ(args.getInt("seq", 0), 1024);
}

TEST(CliArgs, BareFlagIsTrue)
{
    const char *argv[] = {"prog", "--verbose"};
    CliArgs args(2, argv);
    EXPECT_TRUE(args.has("verbose"));
    EXPECT_TRUE(args.getBool("verbose"));
}

TEST(CliArgs, DefaultsWhenAbsent)
{
    const char *argv[] = {"prog"};
    CliArgs args(1, argv);
    EXPECT_EQ(args.getInt("missing", 7), 7);
    EXPECT_DOUBLE_EQ(args.getDouble("missing", 1.5), 1.5);
    EXPECT_FALSE(args.getBool("missing"));
    EXPECT_EQ(args.getString("missing", "d"), "d");
}

TEST(CliArgs, PositionalArguments)
{
    const char *argv[] = {"prog", "file1", "--k", "v", "file2"};
    CliArgs args(5, argv);
    ASSERT_EQ(args.positional().size(), 2u);
    EXPECT_EQ(args.positional()[0], "file1");
    EXPECT_EQ(args.positional()[1], "file2");
}

TEST(CliArgs, IntListOption)
{
    const char *argv[] = {"prog", "--batches", "1,2,4,8"};
    CliArgs args(3, argv);
    auto list = args.getIntList("batches", {});
    ASSERT_EQ(list.size(), 4u);
    EXPECT_EQ(list[3], 8);
}

TEST(CliArgs, BadIntegerThrows)
{
    const char *argv[] = {"prog", "--batch", "abc"};
    CliArgs args(3, argv);
    EXPECT_THROW(args.getInt("batch", 0), FatalError);
}

TEST(CliArgs, BadDoubleThrows)
{
    const char *argv[] = {"prog", "--frac", "1.2.3"};
    CliArgs args(3, argv);
    EXPECT_THROW(args.getDouble("frac", 0.0), FatalError);
}

// ------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespected)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform(5.0, 6.0);
        EXPECT_GE(u, 5.0);
        EXPECT_LT(u, 6.0);
    }
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(10), 10u);
}

TEST(Rng, BelowZeroIsZero)
{
    Rng rng(13);
    EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, GaussianMeanApproximately)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, GaussianBounded)
{
    // Irwin-Hall of 4 uniforms is bounded to about +-3.46 sigma.
    Rng rng(19);
    for (int i = 0; i < 5000; ++i) {
        double g = rng.gaussian(0.0, 1.0);
        EXPECT_GT(g, -4.0);
        EXPECT_LT(g, 4.0);
    }
}

// ---------------------------------------------------------------- logging

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("boom"), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("bug"), PanicError);
}

TEST(Logging, FatalCarriesMessage)
{
    try {
        fatal("specific message");
        FAIL() << "fatal did not throw";
    } catch (const FatalError &err) {
        EXPECT_STREQ(err.what(), "specific message");
    }
}

TEST(Logging, LevelRoundTrip)
{
    LogLevel before = logLevel();
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(before);
}

TEST(Logging, WarnOnceEmitsPerKeyOnce)
{
    LogLevel before = logLevel();
    setLogLevel(LogLevel::Quiet); // suppress output, keep bookkeeping
    resetWarnOnce();
    EXPECT_TRUE(warnOnce("k1", "first"));
    EXPECT_FALSE(warnOnce("k1", "repeat"));
    EXPECT_TRUE(warnOnce("k2", "other key"));
    resetWarnOnce();
    EXPECT_TRUE(warnOnce("k1", "emits again after reset"));
    resetWarnOnce();
    setLogLevel(before);
}

} // namespace
} // namespace skipsim
