/**
 * @file
 * Concurrency stress suite for the lock-free engine hot paths: the
 * Vyukov bounded MPSC mailbox, the Chase–Lev work-stealing deque, the
 * three-epoch reclaimer, and the threaded ShardedEngine itself. The
 * tests are written to be meaningful under TSan (scripts/check_tsan.sh
 * builds and runs this binary under -fsanitize=thread): every
 * assertion is about exactly-once delivery, per-producer FIFO order,
 * reclamation accounting, or byte-identical simulation traces — the
 * data races themselves are the sanitizer's department.
 *
 * The machine running CI may have a single core; the stress tests rely
 * on preemption (and TSan's scheduling noise) for interleavings, so
 * iteration counts are sized to stay fast while still lapping every
 * ring buffer many times over.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include "core/epoch_reclaimer.hh"
#include "core/mpsc_queue.hh"
#include "core/sharded_engine.hh"
#include "core/worksteal_deque.hh"

namespace
{

using skipsim::core::EpochReclaimer;
using skipsim::core::MpscQueue;
using skipsim::core::QueueKind;
using skipsim::core::ShardedEngine;
using skipsim::core::WorkStealDeque;

/** splitmix64: deterministic per-event randomness for the hammer. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

// ---------------------------------------------------------------------------
// MpscQueue
// ---------------------------------------------------------------------------

TEST(MpscQueue, CapacityRoundsUpAndBounds)
{
    MpscQueue<int> q(5);
    EXPECT_EQ(q.capacity(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(q.tryPush(int(i)));
    int overflow = 99;
    EXPECT_FALSE(q.tryPush(std::move(overflow)));
    int out = -1;
    for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(q.tryPop(out));
        EXPECT_EQ(out, i); // single-producer FIFO
    }
    EXPECT_FALSE(q.tryPop(out));
}

TEST(MpscQueue, FullPushLeavesValueUntouched)
{
    // The engine moves a SurvivorMsg into tryPush and spills the same
    // object to a local vector when the ring is full — that only works
    // if a failed push does not consume the value.
    MpscQueue<std::unique_ptr<int>> q(2);
    ASSERT_TRUE(q.tryPush(std::make_unique<int>(1)));
    ASSERT_TRUE(q.tryPush(std::make_unique<int>(2)));
    auto keep = std::make_unique<int>(7);
    EXPECT_FALSE(q.tryPush(std::move(keep)));
    ASSERT_NE(keep, nullptr);
    EXPECT_EQ(*keep, 7);
}

TEST(MpscQueue, WrapAroundManyLaps)
{
    MpscQueue<std::uint64_t> q(2);
    std::uint64_t out = 0;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        ASSERT_TRUE(q.tryPush(std::uint64_t(i)));
        ASSERT_TRUE(q.tryPop(out));
        EXPECT_EQ(out, i);
    }
}

/** P producers spin-pushing tagged values through a deliberately tiny
 *  ring while one consumer drains concurrently: per-producer FIFO must
 *  survive arbitrary interleaving and ring laps. */
TEST(MpscQueue, MultiProducerFifoPerProducerUnderContention)
{
    constexpr std::uint64_t kProducers = 4;
    constexpr std::uint64_t kPerProducer = 5000;
    MpscQueue<std::uint64_t> q(64);

    std::vector<std::thread> producers;
    for (std::uint64_t p = 0; p < kProducers; ++p) {
        producers.emplace_back([&q, p] {
            for (std::uint64_t seq = 0; seq < kPerProducer; ++seq) {
                std::uint64_t value = (p << 32) | seq;
                while (!q.tryPush(std::move(value)))
                    std::this_thread::yield();
            }
        });
    }

    std::vector<std::uint64_t> nextSeq(kProducers, 0);
    std::uint64_t received = 0;
    while (received < kProducers * kPerProducer) {
        std::uint64_t value = 0;
        if (!q.tryPop(value)) {
            std::this_thread::yield();
            continue;
        }
        std::uint64_t p = value >> 32;
        std::uint64_t seq = value & 0xffffffffull;
        ASSERT_LT(p, kProducers);
        ASSERT_EQ(seq, nextSeq[p]) << "producer " << p
                                   << " reordered under contention";
        ++nextSeq[p];
        ++received;
    }
    for (std::thread &t : producers)
        t.join();
    std::uint64_t tail = 0;
    EXPECT_FALSE(q.tryPop(tail));
}

/** The scheme is MPMC; the engine only uses one consumer, but the
 *  exactly-once property must hold with several. */
TEST(MpscQueue, MultiConsumerExactlyOnce)
{
    constexpr std::uint64_t kProducers = 3;
    constexpr std::uint64_t kPerProducer = 4000;
    constexpr std::uint64_t kTotal = kProducers * kPerProducer;
    MpscQueue<std::uint64_t> q(32);
    std::atomic<std::uint64_t> popped{0};

    std::vector<std::thread> team;
    for (std::uint64_t p = 0; p < kProducers; ++p) {
        team.emplace_back([&q, p] {
            for (std::uint64_t seq = 0; seq < kPerProducer; ++seq) {
                std::uint64_t value = p * kPerProducer + seq;
                while (!q.tryPush(std::move(value)))
                    std::this_thread::yield();
            }
        });
    }
    std::vector<std::vector<std::uint64_t>> got(2);
    for (std::size_t c = 0; c < got.size(); ++c) {
        team.emplace_back([&q, &popped, &out = got[c]] {
            while (popped.load(std::memory_order_relaxed) < kTotal) {
                std::uint64_t value = 0;
                if (q.tryPop(value)) {
                    out.push_back(value);
                    popped.fetch_add(1, std::memory_order_relaxed);
                } else {
                    std::this_thread::yield();
                }
            }
        });
    }
    for (std::thread &t : team)
        t.join();

    std::vector<bool> seen(kTotal, false);
    for (const auto &out : got) {
        for (std::uint64_t value : out) {
            ASSERT_LT(value, kTotal);
            ASSERT_FALSE(seen[value]) << "value " << value
                                      << " delivered twice";
            seen[value] = true;
        }
    }
    EXPECT_EQ(got[0].size() + got[1].size(), kTotal);
}

// ---------------------------------------------------------------------------
// WorkStealDeque + EpochReclaimer
// ---------------------------------------------------------------------------

TEST(WorkStealDeque, OwnerPopsLifoThiefStealsFifo)
{
    EpochReclaimer domain(1);
    WorkStealDeque<std::uint64_t> deque(domain);
    deque.push(1);
    deque.push(2);
    deque.push(3);
    std::uint64_t out = 0;
    {
        EpochReclaimer::Guard guard(domain, 0);
        ASSERT_TRUE(deque.steal(out));
        EXPECT_EQ(out, 1u); // oldest from the top
    }
    ASSERT_TRUE(deque.tryPop(out));
    EXPECT_EQ(out, 3u); // newest from the bottom
    ASSERT_TRUE(deque.tryPop(out));
    EXPECT_EQ(out, 2u);
    EXPECT_FALSE(deque.tryPop(out));
}

TEST(WorkStealDeque, GrowthRetiresRingsThroughEpochs)
{
    EpochReclaimer domain(1);
    WorkStealDeque<std::uint64_t> deque(domain, 2);
    for (std::uint64_t i = 0; i < 100; ++i)
        deque.push(i);
    EXPECT_GT(deque.growths(), 0u);
    EXPECT_EQ(domain.retiredCount() + domain.freedCount(),
              deque.growths());
    domain.drain(); // nobody pinned: everything becomes reclaimable
    EXPECT_EQ(domain.retiredCount(), 0u);
    EXPECT_EQ(domain.freedCount(), deque.growths());
    std::uint64_t out = 0;
    for (std::uint64_t i = 100; i-- > 0;) {
        ASSERT_TRUE(deque.tryPop(out));
        EXPECT_EQ(out, i); // contents survived every growth copy
    }
}

/** Owner pushes and pops at the bottom while two thieves hammer the
 *  top through a deliberately tiny initial ring, forcing growths and
 *  epoch-retired buffers mid-steal. Every element must come out
 *  exactly once across the three threads. */
TEST(WorkStealDeque, ConcurrentStealsDeliverExactlyOnce)
{
    constexpr std::uint64_t kItems = 20000;
    constexpr std::size_t kThieves = 2;
    EpochReclaimer domain(kThieves);
    WorkStealDeque<std::uint64_t> deque(domain, 4);
    std::atomic<bool> stop{false};

    std::vector<std::vector<std::uint64_t>> stolen(kThieves);
    std::vector<std::thread> thieves;
    for (std::size_t slot = 0; slot < kThieves; ++slot) {
        thieves.emplace_back([&, slot] {
            auto &out = stolen[slot];
            while (!stop.load(std::memory_order_acquire)) {
                std::uint64_t value = 0;
                bool ok;
                {
                    EpochReclaimer::Guard guard(domain, slot);
                    ok = deque.steal(value);
                }
                if (ok)
                    out.push_back(value);
                else
                    std::this_thread::yield();
            }
            // Drain whatever the owner left behind.
            for (;;) {
                std::uint64_t value = 0;
                bool ok;
                {
                    EpochReclaimer::Guard guard(domain, slot);
                    ok = deque.steal(value);
                }
                if (!ok)
                    break;
                out.push_back(value);
            }
        });
    }

    std::vector<std::uint64_t> kept;
    for (std::uint64_t i = 0; i < kItems; ++i) {
        deque.push(i);
        if ((i & 7) == 7) { // interleave owner pops with the thieves
            std::uint64_t value = 0;
            if (deque.tryPop(value))
                kept.push_back(value);
        }
    }
    std::uint64_t value = 0;
    while (deque.tryPop(value))
        kept.push_back(value);
    stop.store(true, std::memory_order_release);
    for (std::thread &t : thieves)
        t.join();

    std::vector<bool> seen(kItems, false);
    std::size_t total = kept.size();
    for (std::uint64_t v : kept) {
        ASSERT_LT(v, kItems);
        ASSERT_FALSE(seen[v]);
        seen[v] = true;
    }
    for (const auto &out : stolen) {
        total += out.size();
        for (std::uint64_t v : out) {
            ASSERT_LT(v, kItems);
            ASSERT_FALSE(seen[v]) << "item " << v << " stolen twice";
            seen[v] = true;
        }
    }
    EXPECT_EQ(total, kItems);
    EXPECT_GT(deque.growths(), 0u); // the tiny ring actually grew
    domain.drain();
    EXPECT_EQ(domain.retiredCount(), 0u);
    EXPECT_EQ(domain.freedCount(), deque.growths());
}

TEST(EpochReclaimer, PinnedParticipantBlocksReclaim)
{
    EpochReclaimer domain(2);
    bool freed = false;
    domain.pin(1);
    domain.retire([&freed] { freed = true; });
    domain.drain();
    EXPECT_FALSE(freed) << "freed while a participant could still "
                           "hold a reference";
    EXPECT_EQ(domain.retiredCount(), 1u);
    domain.unpin(1);
    domain.drain();
    EXPECT_TRUE(freed);
    EXPECT_EQ(domain.retiredCount(), 0u);
    EXPECT_EQ(domain.freedCount(), 1u);
}

TEST(EpochReclaimer, DrainFreesEverythingWhenQuiescent)
{
    EpochReclaimer domain(3);
    int freed = 0;
    for (int i = 0; i < 10; ++i)
        domain.retire([&freed] { ++freed; });
    domain.drain();
    EXPECT_EQ(freed, 10);
    EXPECT_EQ(domain.retiredCount(), 0u);
    EXPECT_EQ(domain.freedCount(), 10u);
}

/** Each participant churns pin/retire cycles on real allocations; the
 *  deleters must run exactly once each (double frees crash, races are
 *  TSan's to flag) and the final drain must leave nothing behind. */
TEST(EpochReclaimer, ConcurrentChurnReclaimsEverything)
{
    constexpr std::size_t kThreads = 4;
    constexpr int kPerThread = 2000;
    EpochReclaimer domain(kThreads);
    std::atomic<int> freed{0};

    std::vector<std::thread> team;
    for (std::size_t slot = 0; slot < kThreads; ++slot) {
        team.emplace_back([&domain, &freed, slot] {
            for (int i = 0; i < kPerThread; ++i) {
                EpochReclaimer::Guard guard(domain, slot);
                int *p = new int(i);
                domain.retire([p, &freed] {
                    delete p;
                    freed.fetch_add(1, std::memory_order_relaxed);
                });
            }
        });
    }
    for (std::thread &t : team)
        t.join();
    domain.drain();
    EXPECT_EQ(freed.load(), kThreads * kPerThread);
    EXPECT_EQ(domain.retiredCount(), 0u);
    EXPECT_EQ(domain.freedCount(),
              std::size_t(kThreads) * kPerThread);
}

// ---------------------------------------------------------------------------
// ShardedEngine: threaded execution hammer
// ---------------------------------------------------------------------------

/** One trace record per executed event, appended through
 *  ShardedEngine::defer() — which the engine contract runs in exact
 *  global event order in both execution modes. Comparing whole traces
 *  therefore checks the executed sequence *and* the defer commit
 *  order at once. */
using Trace = std::vector<std::tuple<double, std::size_t, std::uint64_t>>;

/**
 * Randomized safe/unsafe event tree on a raw ShardedEngine, honoring
 * the threading contract: safe handlers only touch their shard (plus
 * defer()), and only post cross-shard or unsafe at least kCross into
 * the future; unsafe handlers touch a global counter inline and post
 * anywhere, including near-future cross-shard.
 */
class Hammer
{
  public:
    static constexpr std::size_t kShards = 4;
    static constexpr double kCross = 1000.0;
    static constexpr int kMaxDepth = 6;

    Hammer(std::size_t threads, std::uint64_t seed, bool withSyncPoint,
           QueueKind kind = QueueKind::Heap)
        : _engine(kShards, makeOptions(threads, kind)), _seed(seed)
    {
        if (withSyncPoint) {
            // Probe-boundary stand-in: windows must never cross a
            // multiple of 400 ns.
            _engine.setSyncPoint([](double t) {
                return 400.0 * (std::floor(t / 400.0) + 1.0);
            });
        }
        for (std::size_t s = 0; s < kShards; ++s) {
            armSafe(s, 100.0 + 10.0 * double(s), 0, s + 1, 0);
            armUnsafe(s, 130.0 + 10.0 * double(s), 1,
                      (std::uint64_t{1} << 40) + s, 0);
        }
    }

    std::uint64_t
    run()
    {
        return _engine.run();
    }

    const Trace &trace() const { return _trace; }
    const skipsim::core::ShardStats &stats() const
    {
        return _engine.stats();
    }
    int unsafeTouches() const { return _unsafeTouches; }

  private:
    static ShardedEngine::Options
    makeOptions(std::size_t threads, QueueKind kind)
    {
        ShardedEngine::Options opts;
        opts.threads = threads;
        opts.safeCrossNs = kCross;
        opts.queueKind = kind;
        return opts;
    }

    void
    armSafe(std::size_t s, double t, int prio, std::uint64_t id,
            int depth)
    {
        _engine.shard(s).at(t, prio, [this, s, id, depth](double now) {
            onSafe(s, id, depth, now);
        });
    }

    void
    armUnsafe(std::size_t s, double t, int prio, std::uint64_t id,
              int depth)
    {
        _engine.shard(s).unsafeScheduler().at(
            t, prio,
            [this, s, id, depth](double now) {
                onUnsafe(s, id, depth, now);
            });
    }

    void
    onSafe(std::size_t s, std::uint64_t id, int depth, double now)
    {
        _engine.defer([this, now, s, id] {
            _trace.emplace_back(now, s, id);
        });
        if (depth >= kMaxDepth)
            return;
        // Quantized offsets force timestamp collisions across shards
        // so the (time, priority, seq) tie-break is exercised hard.
        std::uint64_t r = mix(_seed ^ id);
        armSafe(s, now + 1.0 + 50.0 * double(r % 16),
                int((r >> 8) % 3), id * 4 + 1, depth + 1);
        std::uint64_t r2 = mix(r);
        std::size_t tgt = (s + 1 + (r2 % (kShards - 1))) % kShards;
        armSafe(tgt, now + kCross + 50.0 * double((r2 >> 8) % 8),
                int((r2 >> 16) % 3), id * 4 + 2, depth + 1);
        if (r2 % 3 == 0) {
            std::uint64_t r3 = mix(r2);
            armUnsafe(s, now + kCross + 50.0 * double((r3 >> 8) % 8),
                      int((r3 >> 16) % 3), id * 4 + 3, depth + 1);
        }
    }

    void
    onUnsafe(std::size_t s, std::uint64_t id, int depth, double now)
    {
        // Unsafe events run sequentially: a plain (non-atomic) global
        // counter is legal here, and TSan proves it.
        ++_unsafeTouches;
        _engine.defer([this, now, s, id] {
            _trace.emplace_back(now, s, id);
        });
        if (depth >= kMaxDepth)
            return;
        // Sequential context: near-future cross-shard posting is fine.
        std::uint64_t r = mix(_seed ^ id);
        armSafe(r % kShards, now + 1.0 + 50.0 * double((r >> 8) % 8),
                int((r >> 16) % 3), id * 4 + 1, depth + 1);
    }

    ShardedEngine _engine;
    std::uint64_t _seed;
    Trace _trace;
    int _unsafeTouches = 0;
};

TEST(ShardedEngineThreaded, TraceMatchesSequentialAcrossSeeds)
{
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        Hammer baseline(1, seed, false);
        std::uint64_t baseEvents = baseline.run();
        for (std::size_t threads : {2ul, 4ul}) {
            Hammer threaded(threads, seed, false);
            EXPECT_EQ(threaded.run(), baseEvents)
                << "seed " << seed << " threads " << threads;
            ASSERT_EQ(threaded.trace(), baseline.trace())
                << "seed " << seed << " threads " << threads
                << ": executed sequence diverged";
            EXPECT_EQ(threaded.unsafeTouches(),
                      baseline.unsafeTouches());
            EXPECT_GT(threaded.stats().parallelWindows, 0u)
                << "threaded run never opened a parallel window";
            EXPECT_GT(threaded.stats().parallelEvents, 0u);
        }
    }
}

TEST(ShardedEngineThreaded, SyncPointsBoundWindowsWithoutDivergence)
{
    Hammer baseline(1, 7, true);
    std::uint64_t baseEvents = baseline.run();
    Hammer threaded(4, 7, true);
    EXPECT_EQ(threaded.run(), baseEvents);
    ASSERT_EQ(threaded.trace(), baseline.trace());
    EXPECT_GT(threaded.stats().parallelWindows, 0u);
}

TEST(ShardedEngineThreaded, RepeatedThreadedRunsAreDeterministic)
{
    Hammer first(4, 11, false);
    first.run();
    Hammer second(4, 11, false);
    second.run();
    ASSERT_EQ(first.trace(), second.trace())
        << "threaded execution leaked scheduling nondeterminism";
    EXPECT_EQ(first.stats().events, second.stats().events);
}

TEST(ShardedEngineThreaded, CalendarQueueMatchesHeapSequentially)
{
    Hammer heap(1, 5, false, QueueKind::Heap);
    std::uint64_t baseEvents = heap.run();
    Hammer calendar(1, 5, false, QueueKind::Calendar);
    EXPECT_EQ(calendar.run(), baseEvents);
    ASSERT_EQ(calendar.trace(), heap.trace());
}

TEST(ShardedEngineThreaded, CalendarQueueMatchesHeapBaseline)
{
    Hammer heap(1, 5, false, QueueKind::Heap);
    std::uint64_t baseEvents = heap.run();
    Hammer calendar(4, 5, false, QueueKind::Calendar);
    EXPECT_EQ(calendar.run(), baseEvents);
    ASSERT_EQ(calendar.trace(), heap.trace())
        << "calendar-queue shards diverged from the heap baseline";
    EXPECT_GT(calendar.stats().parallelWindows, 0u);
}

} // namespace
