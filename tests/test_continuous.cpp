/**
 * @file
 * Tests for continuous (iteration-level) batching: the iteration cost
 * model, conservation of requests/tokens, the latency advantage over
 * static batching at moderate load, and degenerate configurations.
 */

#include <gtest/gtest.h>

#include "analysis/sweep.hh"
#include "common/logging.hh"
#include "hw/catalog.hh"
#include "serving/continuous.hh"
#include "serving/server_sim.hh"
#include "workload/model_config.hh"

namespace skipsim::serving
{
namespace
{

const workload::ModelConfig kModel = workload::gpt2();
const hw::Platform kPlatform = hw::platforms::gh200();

IterationCostModel &
costModel()
{
    static IterationCostModel model(kModel, kPlatform, 256);
    return model;
}

ContinuousConfig
config(double rate, int max_active = 32, int gen = 8)
{
    ContinuousConfig c;
    c.arrivalRatePerSec = rate;
    c.horizonSec = 10.0;
    c.maxActive = max_active;
    c.promptLen = 256;
    c.genTokens = gen;
    return c;
}

// ------------------------------------------------------------- cost model

TEST(IterationCost, PrefillDominatesDecode)
{
    EXPECT_GT(costModel().prefillNs(1), costModel().decodeNs(1));
    EXPECT_GT(costModel().prefillNs(8), costModel().decodeNs(8));
}

TEST(IterationCost, MonotoneInBatch)
{
    EXPECT_LE(costModel().prefillNs(1), costModel().prefillNs(64));
    EXPECT_LE(costModel().decodeNs(1),
              costModel().decodeNs(64) * 1.05);
}

TEST(IterationCost, InterpolatesAndExtrapolates)
{
    double b8 = costModel().prefillNs(8);
    double b16 = costModel().prefillNs(16);
    double b12 = costModel().prefillNs(12);
    EXPECT_GE(b12, std::min(b8, b16));
    EXPECT_LE(b12, std::max(b8, b16));
    EXPECT_GE(costModel().prefillNs(128), costModel().prefillNs(64));
    EXPECT_THROW(costModel().prefillNs(0), FatalError);
    EXPECT_THROW(IterationCostModel(kModel, kPlatform, 0), FatalError);
}

// ------------------------------------------------------------- simulation

TEST(Continuous, ConservesRequests)
{
    ContinuousResult result =
        simulateContinuous(costModel(), config(20.0));
    EXPECT_GT(result.completed, 0u);
    // Everything that arrived is either done or counted unfinished.
    EXPECT_GT(result.completed + result.unfinished, 100u);
    EXPECT_GT(result.tokensPerSec, 0.0);
    EXPECT_LE(result.p50TtftNs, result.p99TtftNs);
}

TEST(Continuous, SingleTokenRequestsCompleteAtPrefill)
{
    ContinuousResult result =
        simulateContinuous(costModel(), config(20.0, 32, 1));
    EXPECT_GT(result.completed, 0u);
    EXPECT_DOUBLE_EQ(result.meanTpotNs, 0.0); // no decode iterations
}

TEST(Continuous, ActiveSetGrowsWithLoad)
{
    ContinuousResult light =
        simulateContinuous(costModel(), config(10.0));
    ContinuousResult heavy =
        simulateContinuous(costModel(), config(500.0));
    EXPECT_GT(heavy.meanActive, light.meanActive);
    EXPECT_GT(heavy.tokensPerSec, light.tokensPerSec);
}

TEST(Continuous, CapacityCapRespected)
{
    ContinuousResult result =
        simulateContinuous(costModel(), config(2000.0, 4));
    EXPECT_LE(result.meanActive, 4.0 + 1e-9);
}

TEST(Continuous, DeterministicGivenSeed)
{
    ContinuousResult a = simulateContinuous(costModel(), config(50.0));
    ContinuousResult b = simulateContinuous(costModel(), config(50.0));
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_DOUBLE_EQ(a.p99TtftNs, b.p99TtftNs);
}

TEST(Continuous, TtftBoundedWithinCapacity)
{
    // Within decode capacity (demand = rate x genTokens tokens/s must
    // stay under maxActive / decodeNs(maxActive)), requests never wait
    // behind a full static batch: p99 TTFT stays within a few
    // iteration times of the prefill cost.
    double capacity_tps =
        32.0 / (costModel().decodeNs(32) / 1e9);
    double rate = 0.3 * capacity_tps / 8.0; // 30% utilization
    ContinuousResult result =
        simulateContinuous(costModel(), config(rate));
    // Only the in-flight tail at the horizon may be unfinished.
    EXPECT_LE(result.unfinished, 2u * 32u);
    EXPECT_LT(result.p99TtftNs,
              8.0 * costModel().prefillNs(32));
}

TEST(Continuous, OverloadLeavesWorkUnfinished)
{
    double capacity_tps =
        32.0 / (costModel().decodeNs(32) / 1e9);
    double rate = 4.0 * capacity_tps / 8.0; // 4x overload
    ContinuousResult result =
        simulateContinuous(costModel(), config(rate));
    EXPECT_GT(result.unfinished, 0u);
    // Throughput saturates near the decode capacity.
    EXPECT_LT(result.tokensPerSec, 1.3 * capacity_tps);
}

TEST(Continuous, InvalidConfigsThrow)
{
    EXPECT_THROW(simulateContinuous(costModel(), config(0.0)),
                 FatalError);
    EXPECT_THROW(simulateContinuous(costModel(), config(10.0, 0)),
                 FatalError);
    ContinuousConfig bad = config(10.0);
    bad.genTokens = 0;
    EXPECT_THROW(simulateContinuous(costModel(), bad), FatalError);
    bad = config(10.0);
    bad.horizonSec = 0.0;
    EXPECT_THROW(simulateContinuous(costModel(), bad), FatalError);
}

} // namespace
} // namespace skipsim::serving
