/**
 * @file
 * Core engine tests. Two halves:
 *
 *  1. Golden-output contract: the sim / serving / continuous / cluster
 *     engines must reproduce the byte-identical outputs recorded in
 *     tests/data/golden_*.json before the port onto skipsim::core.
 *     The cluster golden is additionally checked at --jobs 1 and
 *     --jobs 8 (exec::Pool fan-out), extending the determinism
 *     contract from PRs 1-3 across the refactor. Regenerate with
 *     SKIPSIM_REGOLD=1 (writes into tests/data/) — only legitimate
 *     when a change intentionally alters simulation semantics.
 *
 *  2. Unit tests of the core primitives themselves (EventQueue
 *     ordering under colliding timestamps, Clock, RngStreams,
 *     FifoResource, Engine loop).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/sweep.hh"
#include "check/invariants.hh"
#include "cluster/cluster.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "core/any_queue.hh"
#include "core/calendar_queue.hh"
#include "core/clock.hh"
#include "core/engine.hh"
#include "core/event_queue.hh"
#include "core/resource.hh"
#include "core/rng_stream.hh"
#include "exec/pool.hh"
#include "hw/catalog.hh"
#include "json/value.hh"
#include "json/writer.hh"
#include "obs/collector.hh"
#include "serving/continuous.hh"
#include "serving/latency_model.hh"
#include "serving/server_sim.hh"
#include "sim/simulator.hh"
#include "trace/chrome.hh"
#include "workload/builder.hh"
#include "workload/model_config.hh"

#ifndef SKIPSIM_TESTS_DATA_DIR
#define SKIPSIM_TESTS_DATA_DIR "tests/data"
#endif

using namespace skipsim;

namespace
{

std::string
goldenPath(const std::string &name)
{
    return std::string(SKIPSIM_TESTS_DATA_DIR) + "/" + name;
}

bool
regoldRequested()
{
    const char *env = std::getenv("SKIPSIM_REGOLD");
    return env != nullptr && *env != '\0';
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Compare @p produced against the golden file (or rewrite it). */
void
checkGolden(const std::string &name, const std::string &produced)
{
    const std::string path = goldenPath(name);
    if (regoldRequested()) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << produced;
        SUCCEED() << "regolded " << path;
        return;
    }
    const std::string expected = readFile(path);
    ASSERT_FALSE(expected.empty())
        << "missing golden " << path
        << " (record with SKIPSIM_REGOLD=1)";
    // Byte-identical, not approximately equal: the refactored engines
    // must reproduce the pre-port generative process exactly.
    EXPECT_EQ(expected, produced) << "golden mismatch: " << name;
}

// ------------------------------------------------------------------ sim

/**
 * The simulator golden runs with jitter enabled so the trace pins the
 * RNG draw order (one gaussian per jittered duration), not just the
 * deterministic arithmetic.
 */
std::string
simGoldenText()
{
    workload::BuildOptions opts;
    opts.batch = 2;
    opts.seqLen = 128;
    workload::OperatorGraph graph =
        workload::buildPrefillGraph(workload::modelByName("GPT2"), opts);

    sim::SimOptions sim_opts;
    sim_opts.seed = 7;
    sim_opts.jitter = true;
    sim::Simulator simulator(hw::platforms::gh200(), sim_opts);
    sim::SimResult result = simulator.run(graph);

    // Summary scalars ride along as trace meta so the golden stays one
    // valid Chrome-trace document (skipctl validate re-parses it).
    result.trace.setMeta("wall_ns", std::to_string(result.wallNs));
    result.trace.setMeta("num_kernels",
                         std::to_string(result.numKernels));
    result.trace.setMeta("gpu_busy_ns",
                         std::to_string(result.gpuBusyNs));
    return trace::toChromeText(result.trace);
}

TEST(GoldenOutputs, SimTraceByteIdentical)
{
    const std::string text = simGoldenText();
    checkGolden("golden_sim_trace.json", text);
    // Byte-identity freezes one output; the semantic invariants must
    // hold on the re-parsed document too (causality, stream FIFO,
    // correlation bijection, non-negative queue depth).
    check::TraceCheckReport report =
        check::validateTrace(trace::fromChromeText(text));
    EXPECT_TRUE(report.ok()) << report.render();
    EXPECT_GT(report.pairsChecked, 0u);
}

// -------------------------------------------------------------- serving

analysis::SweepResult
linearSweep(double base_ns, double slope_ns)
{
    analysis::SweepResult sweep;
    sweep.modelName = "synthetic";
    sweep.platformName = "test";
    for (int batch : {1, 2, 4, 8, 16, 32}) {
        analysis::SweepPoint point;
        point.batch = batch;
        point.metrics.ilNs = base_ns + slope_ns * batch;
        sweep.points.push_back(point);
    }
    return sweep;
}

json::Value
servingResultJson(const serving::ServingResult &result)
{
    json::Object doc;
    doc.set("completed",
            static_cast<unsigned long long>(result.completed));
    doc.set("throughput_rps", result.throughputRps);
    doc.set("p50_latency_ns", result.p50LatencyNs);
    doc.set("p95_latency_ns", result.p95LatencyNs);
    doc.set("p99_latency_ns", result.p99LatencyNs);
    doc.set("mean_latency_ns", result.meanLatencyNs);
    doc.set("p50_ttft_ns", result.p50TtftNs);
    doc.set("mean_batch", result.meanBatch);
    doc.set("utilization", result.utilization);
    doc.set("left_in_queue",
            static_cast<unsigned long long>(result.leftInQueue));
    return json::Value(std::move(doc));
}

TEST(GoldenOutputs, ServingResultAndObsByteIdentical)
{
    serving::LatencyModel latency(linearSweep(2e6, 1e5));
    serving::ServingConfig config;
    config.arrivalRatePerSec = 200.0;
    config.horizonSec = 2.0;
    config.maxBatch = 8;

    obs::Collector collector(50.0);
    serving::ServingResult result =
        serving::simulateServing(latency, config, &collector);

    json::Object doc;
    doc.set("result", servingResultJson(result));
    doc.set("obs", collector.toJson());
    checkGolden("golden_serving.json",
                json::write(json::Value(std::move(doc))) + "\n");
}

// ----------------------------------------------------------- continuous

json::Value
continuousResultJson(const serving::ContinuousResult &result)
{
    json::Object doc;
    doc.set("completed",
            static_cast<unsigned long long>(result.completed));
    doc.set("p50_ttft_ns", result.p50TtftNs);
    doc.set("p99_ttft_ns", result.p99TtftNs);
    doc.set("mean_tpot_ns", result.meanTpotNs);
    doc.set("tokens_per_sec", result.tokensPerSec);
    doc.set("mean_active", result.meanActive);
    doc.set("unfinished",
            static_cast<unsigned long long>(result.unfinished));
    return json::Value(std::move(doc));
}

TEST(GoldenOutputs, ContinuousResultAndObsByteIdentical)
{
    serving::IterationCostModel cost(workload::modelByName("GPT2"),
                                     hw::platforms::gh200(), 64);

    serving::ContinuousConfig config;
    config.arrivalRatePerSec = 100.0;
    config.horizonSec = 1.0;
    config.maxActive = 8;
    config.promptLen = 64;
    config.genTokens = 4;

    obs::Collector plain_obs(50.0);
    serving::ContinuousResult plain =
        serving::simulateContinuous(cost, config, &plain_obs);

    // Sarathi-style chunked prefill exercises the mixed
    // chunk+decode iteration path.
    serving::ContinuousConfig chunked_config = config;
    chunked_config.chunkTokens = 16;
    obs::Collector chunked_obs(50.0);
    serving::ContinuousResult chunked =
        serving::simulateContinuous(cost, chunked_config, &chunked_obs);

    json::Object doc;
    doc.set("plain", continuousResultJson(plain));
    doc.set("plain_obs", plain_obs.toJson());
    doc.set("chunked", continuousResultJson(chunked));
    doc.set("chunked_obs", chunked_obs.toJson());
    checkGolden("golden_continuous.json",
                json::write(json::Value(std::move(doc))) + "\n");
}

// -------------------------------------------------------------- cluster

/**
 * A heterogeneous two-replica fleet with opt-in service jitter and all
 * three fault kinds, swept over three arrival rates: the widest
 * behavioral surface of the cluster engine in one golden.
 */
cluster::ClusterSpec
goldenClusterSpec()
{
    cluster::ClusterSpec spec;
    spec.model = workload::modelByName("GPT2");

    cluster::ReplicaSpec fast;
    fast.platform = hw::platforms::gh200();
    fast.maxActive = 16;
    spec.replicas.push_back(fast);

    cluster::ReplicaSpec slow;
    slow.platform = hw::platforms::intelH100();
    slow.maxActive = 16;
    slow.maxQueue = 64;
    spec.replicas.push_back(slow);

    spec.rates = {40.0, 60.0, 80.0};
    spec.horizonSec = 3.0;
    spec.promptLen = 128;
    spec.genTokens = 8;
    spec.sessions = 16;
    spec.jitterFrac = 0.05;

    cluster::FaultSpec crash;
    crash.atSec = 1.0;
    crash.replica = 0;
    crash.kind = cluster::FaultKind::Crash;
    spec.faults.push_back(crash);

    cluster::FaultSpec slowdown;
    slowdown.atSec = 0.5;
    slowdown.replica = 1;
    slowdown.kind = cluster::FaultKind::Slowdown;
    slowdown.factor = 1.5;
    spec.faults.push_back(slowdown);

    cluster::FaultSpec partition;
    partition.atSec = 0.25;
    partition.replica = 1;
    partition.kind = cluster::FaultKind::Partition;
    partition.healSec = 0.75;
    spec.faults.push_back(partition);
    return spec;
}

/** Run the golden rate sweep with @p jobs workers; report + obs JSON. */
std::string
clusterSweepText(const cluster::ClusterSpec &spec,
                 const cluster::CostCache &costs, int jobs)
{
    const std::size_t n = spec.scenarioCount();
    std::vector<cluster::ClusterResult> results(n);
    std::vector<std::unique_ptr<obs::Collector>> collectors(n);
    for (std::size_t i = 0; i < n; ++i)
        collectors[i] = std::make_unique<obs::Collector>(100.0);

    exec::Pool pool(jobs);
    pool.run(n, [&](std::size_t i) {
        results[i] = cluster::simulateCluster(spec.scenarioAt(i), costs,
                                              collectors[i].get());
    });

    std::string out;
    for (std::size_t i = 0; i < n; ++i) {
        out += json::write(results[i].toJson()) + "\n";
        out += json::write(collectors[i]->toJson()) + "\n";
    }
    return out;
}

TEST(GoldenOutputs, ClusterRateSweepByteIdenticalAtJobs1And8)
{
    cluster::ClusterSpec spec = goldenClusterSpec();
    cluster::CostCache costs;
    costs.build(spec);

    const std::string serial = clusterSweepText(spec, costs, 1);
    checkGolden("golden_cluster_sweep.json", serial);
    if (regoldRequested())
        return;
    // The same sweep fanned across 8 workers must match the golden
    // byte-for-byte too: scenario seeds are pure functions of
    // (baseSeed, index), never of event interleaving or host threads.
    EXPECT_EQ(serial, clusterSweepText(spec, costs, 8));
}

// ------------------------------------------------------- core primitives

/**
 * Regression for the latent ordering hazard the core queue closes:
 * events colliding on the timestamp must pop by priority, and events
 * colliding on (timestamp, priority) must pop in scheduling order —
 * never in heap-internal order, which std::priority_queue leaves
 * unspecified for ties.
 */
TEST(CoreEventQueue, CollidingTimestampsPopDeterministically)
{
    core::EventQueue queue;
    std::vector<int> order;
    auto record = [&order](int tag) {
        return [&order, tag](double) { order.push_back(tag); };
    };
    // Same instant throughout; priorities and push order interleaved
    // adversarially (descending priority, then a second wave at each
    // priority to force (time, priority) collisions).
    queue.schedule(100.0, 2, record(20));
    queue.schedule(100.0, 1, record(10));
    queue.schedule(100.0, 0, record(0));
    queue.schedule(100.0, 2, record(21));
    queue.schedule(100.0, 1, record(11));
    queue.schedule(100.0, 0, record(1));
    // A later timestamp with the lowest priority still pops last.
    queue.schedule(100.5, 0, record(99));

    while (!queue.empty()) {
        core::Event ev = queue.pop();
        ev.fn(ev.timeNs);
    }
    EXPECT_EQ(order, (std::vector<int>{0, 1, 10, 11, 20, 21, 99}));
}

TEST(CoreEventQueue, TimeOrdersBeforePriority)
{
    core::EventQueue queue;
    queue.schedule(2.0, 0, nullptr);
    queue.schedule(1.0, 5, nullptr);
    EXPECT_EQ(queue.nextTimeNs(), 1.0);
    EXPECT_EQ(queue.nextPriority(), 5);
    EXPECT_EQ(queue.size(), 2u);
    queue.clear();
    EXPECT_TRUE(queue.empty());
}

TEST(CoreEventQueue, EmptyAccessorsPanicInsteadOfUb)
{
    core::EventQueue queue;
    EXPECT_THROW(queue.nextTimeNs(), PanicError);
    EXPECT_THROW(queue.nextPriority(), PanicError);
    EXPECT_THROW(queue.pop(), PanicError);
    // Draining and re-emptying hits the same guards, not stale state.
    queue.schedule(1.0, 0, nullptr);
    queue.pop();
    EXPECT_THROW(queue.nextTimeNs(), PanicError);
    EXPECT_THROW(queue.pop(), PanicError);
}

TEST(CoreCalendarQueue, CollidingTimestampsMatchEventQueueOrder)
{
    // The adversarial collision scenario from CoreEventQueue above,
    // replayed on the calendar queue: the pop sequence contract is
    // shared verbatim.
    core::CalendarQueue queue;
    std::vector<int> order;
    auto record = [&order](int tag) {
        return [&order, tag](double) { order.push_back(tag); };
    };
    queue.schedule(100.0, 2, record(20));
    queue.schedule(100.0, 1, record(10));
    queue.schedule(100.0, 0, record(0));
    queue.schedule(100.0, 2, record(21));
    queue.schedule(100.0, 1, record(11));
    queue.schedule(100.0, 0, record(1));
    queue.schedule(100.5, 0, record(99));

    while (!queue.empty()) {
        core::Event ev = queue.pop();
        ev.fn(ev.timeNs);
    }
    EXPECT_EQ(order, (std::vector<int>{0, 1, 10, 11, 20, 21, 99}));
}

TEST(CoreCalendarQueue, RandomizedDifferentialOracleMatchesHeap)
{
    // Drive the heap and the calendar with an identical randomized
    // push/pop stream shaped like an engine run — mostly near-future
    // pushes off the last popped time, colliding quantized offsets,
    // occasional far-future jumps that lap the calendar ring — and
    // assert byte-equal pop order under (time, priority, seq). The
    // population swing forces both grow and shrink rebuilds, which is
    // where day-width re-estimation could break the order.
    std::size_t resizes_seen = 0;
    for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
        core::EventQueue heap;
        core::CalendarQueue calendar;
        Rng rng(mixSeed(987, seed));
        double last_pop = 0.0;
        auto pop_both = [&]() {
            core::Event a = heap.pop();
            core::Event b = calendar.pop();
            ASSERT_EQ(a.timeNs, b.timeNs) << "seed " << seed;
            ASSERT_EQ(a.priority, b.priority) << "seed " << seed;
            ASSERT_EQ(a.seq, b.seq) << "seed " << seed;
            last_pop = a.timeNs;
        };
        for (int step = 0; step < 4000; ++step) {
            if (calendar.empty() || rng.below(3) != 0) {
                double t = last_pop;
                switch (rng.below(4)) {
                case 0: // collision-prone quantized near future
                    t += 1.0 + 50.0 * double(rng.below(16));
                    break;
                case 1: // exact collisions with in-flight events
                    t += double(rng.below(4));
                    break;
                case 2: // one lookahead ahead
                    t += 1000.0 + 50.0 * double(rng.below(8));
                    break;
                default: // far-future jump: laps the calendar ring
                    t += 1e5 * double(1 + rng.below(3));
                    break;
                }
                int priority = int(rng.below(3));
                heap.schedule(t, priority, nullptr);
                calendar.schedule(t, priority, nullptr);
            } else {
                ASSERT_EQ(heap.nextTimeNs(), calendar.nextTimeNs());
                ASSERT_EQ(heap.nextPriority(),
                          calendar.nextPriority());
                pop_both();
                if (HasFatalFailure())
                    return;
            }
        }
        while (!calendar.empty()) {
            pop_both();
            if (HasFatalFailure())
                return;
        }
        EXPECT_TRUE(heap.empty());
        resizes_seen += calendar.resizes();
    }
    EXPECT_GT(resizes_seen, 0u)
        << "the oracle never exercised a calendar rebuild";
}

TEST(CoreCalendarQueue, EmptyAccessorsPanicInsteadOfUb)
{
    core::CalendarQueue queue;
    EXPECT_THROW(queue.nextTimeNs(), PanicError);
    EXPECT_THROW(queue.nextPriority(), PanicError);
    EXPECT_THROW(queue.pop(), PanicError);
    queue.schedule(1.0, 0, nullptr);
    queue.pop();
    EXPECT_THROW(queue.nextTimeNs(), PanicError);
    EXPECT_THROW(queue.pop(), PanicError);
}

TEST(CoreAnyQueue, KindSelectionAndProcessDefault)
{
    EXPECT_EQ(core::queueKindFromName("heap"), core::QueueKind::Heap);
    EXPECT_EQ(core::queueKindFromName("calendar"),
              core::QueueKind::Calendar);
    EXPECT_THROW(core::queueKindFromName("splay"), FatalError);

    core::QueueKind saved = core::defaultQueueKind();
    core::setDefaultQueueKind(core::QueueKind::Calendar);
    EXPECT_EQ(core::defaultQueueKind(), core::QueueKind::Calendar);
    core::AnyQueue queue; // picks up the process default
    queue.schedule(1.0, 0, nullptr);
    EXPECT_EQ(queue.nextTimeNs(), 1.0);
    core::setDefaultQueueKind(saved);
    EXPECT_EQ(core::defaultQueueKind(), saved);
}

TEST(CoreClock, AdvancesMonotonically)
{
    core::Clock clock;
    EXPECT_EQ(clock.nowNs(), 0.0);
    clock.advanceTo(5.0);
    clock.advanceBy(2.5);
    EXPECT_EQ(clock.nowNs(), 7.5);
    clock.advanceTo(7.5); // same instant is fine
    EXPECT_THROW(clock.advanceTo(7.0), PanicError);
    EXPECT_THROW(clock.advanceBy(-1.0), PanicError);
}

TEST(CoreRngStreams, StreamsFollowTheMixSeedContract)
{
    core::RngStreams streams(1234);
    // The published per-entity seeding contract: stream i draws as
    // Rng(mixSeed(base, i)) — reproducible and order-independent.
    Rng expected(mixSeed(1234, 3));
    Rng stream3 = streams.stream(3);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(stream3.next(), expected.next());

    // Named streams hash stably and decorrelate from numeric ones.
    EXPECT_EQ(core::streamId("arrivals"), core::streamId("arrivals"));
    EXPECT_NE(core::streamId("arrivals"), core::streamId("jitter"));
    Rng named_a = streams.stream("arrivals");
    Rng named_b = streams.stream("arrivals");
    EXPECT_EQ(named_a.next(), named_b.next());
}

TEST(CoreFifoResource, SerializesBackToBackWork)
{
    core::FifoResource stream;
    EXPECT_FALSE(stream.everUsed());
    // Idle stream: work starts at its earliest feasible time.
    EXPECT_EQ(stream.startFor(10.0, 3.0), 10.0);
    stream.occupyUntil(25.0);
    EXPECT_TRUE(stream.everUsed());
    EXPECT_EQ(stream.freeNs(), 25.0);
    // Backed-up stream: the gap applies after the previous occupant.
    EXPECT_EQ(stream.startFor(12.0, 3.0), 28.0);
    // A late-arriving request beyond the backlog is not delayed.
    EXPECT_EQ(stream.startFor(40.0, 3.0), 40.0);
}

TEST(CoreEngine, RunsEventsInOrderWithPreEventHook)
{
    core::Engine engine;
    std::vector<std::pair<char, double>> log;
    engine.onBeforeEvent(
        [&](double t) { log.emplace_back('h', t); });

    engine.at(10.0, 1, [&](double t) {
        log.emplace_back('a', t);
        // Handlers schedule follow-ups through the same engine.
        engine.after(5.0, 0, [&](double t2) {
            log.emplace_back('c', t2);
        });
    });
    engine.at(10.0, 0, [&](double t) { log.emplace_back('b', t); });

    EXPECT_EQ(engine.runUntil(10.0), 2u);
    EXPECT_EQ(engine.nowNs(), 10.0);
    EXPECT_FALSE(engine.idle());
    EXPECT_EQ(engine.run(), 1u);
    EXPECT_TRUE(engine.idle());
    EXPECT_EQ(engine.processed(), 3u);

    // Priority 0 beats priority 1 at t=10; the hook precedes each
    // handler with the event's own timestamp.
    const std::vector<std::pair<char, double>> expected{
        {'h', 10.0}, {'b', 10.0}, {'h', 10.0},
        {'a', 10.0}, {'h', 15.0}, {'c', 15.0}};
    EXPECT_EQ(log, expected);
}

} // namespace
