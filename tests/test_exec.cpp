/**
 * @file
 * Tests for the parallel experiment engine: pool work-stealing and
 * exception plumbing, RunSpec/SweepSpec construction and JSON round
 * trips, registry lookup, and the engine's central guarantee — a
 * parallel grid run is byte-identical to a serial one.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "exec/grid.hh"
#include "exec/pool.hh"
#include "exec/registry.hh"
#include "exec/runner.hh"
#include "exec/run_spec.hh"
#include "exec/sweep_spec.hh"
#include "hw/catalog.hh"
#include "json/parser.hh"
#include "json/writer.hh"
#include "workload/model_config.hh"

namespace skipsim::exec
{
namespace
{

TEST(MixSeed, DistinctPerIndexAndBase)
{
    EXPECT_NE(mixSeed(42, 0), mixSeed(42, 1));
    EXPECT_NE(mixSeed(42, 0), mixSeed(43, 0));
    EXPECT_EQ(mixSeed(42, 7), mixSeed(42, 7));
}

TEST(Pool, RunsEveryIndexExactlyOnce)
{
    Pool pool(4);
    std::vector<std::atomic<int>> hits(100);
    pool.run(100, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto &hit : hits)
        EXPECT_EQ(hit.load(), 1);
}

TEST(Pool, ZeroAndSingleIndexRuns)
{
    Pool pool(4);
    pool.run(0, [](std::size_t) { FAIL() << "no indices to run"; });

    int runs = 0;
    pool.run(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++runs;
    });
    EXPECT_EQ(runs, 1);
}

TEST(Pool, StealsUnderSkewedPointCosts)
{
    // 16 single-index chunks round-robin onto 4 workers; worker 0's
    // indices (0, 4, 8, 12) carry all the cost, so the other workers
    // drain instantly and must steal worker 0's backlog.
    Pool pool(4);
    std::vector<std::atomic<int>> hits(16);
    pool.run(16, [&](std::size_t i) {
        if (i % 4 == 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        hits[i].fetch_add(1);
    });
    for (const auto &hit : hits)
        EXPECT_EQ(hit.load(), 1);
    EXPECT_GE(pool.lastRunStats().steals, 1u);
    EXPECT_EQ(pool.lastRunStats().chunks, 16u);
}

TEST(Pool, PropagatesFirstException)
{
    Pool pool(4);
    std::atomic<int> completed{0};
    EXPECT_THROW(pool.run(32,
                          [&](std::size_t i) {
                              if (i == 5)
                                  fatal("exec test: point 5 exploded");
                              completed.fetch_add(1);
                          }),
                 FatalError);
    // The failure did not take down unrelated points wholesale.
    EXPECT_GT(completed.load(), 0);
}

TEST(Pool, RejectsNegativeWorkers)
{
    EXPECT_THROW(Pool(-1), FatalError);
    EXPECT_GE(Pool(0).workers(), 1);
}

TEST(RunSpec, FluentBuilderSetsEveryField)
{
    const RunSpec spec = RunSpec::of("GPT2")
                             .on("GH200")
                             .batch(8)
                             .seqLen(256)
                             .mode(workload::ExecMode::FlashAttention2)
                             .seed(7)
                             .jitter(true, 0.01)
                             .opt("rate", 80.0);
    EXPECT_EQ(spec.model().name, "GPT2");
    EXPECT_EQ(spec.platform().name, "GH200");
    EXPECT_EQ(spec.batch(), 8);
    EXPECT_EQ(spec.seqLen(), 256);
    EXPECT_EQ(spec.mode(), workload::ExecMode::FlashAttention2);
    EXPECT_EQ(spec.seed(), 7u);
    EXPECT_TRUE(spec.jitterOn());
    EXPECT_DOUBLE_EQ(spec.opt("rate", 0.0), 80.0);
}

TEST(RunSpec, ConvertsToLegacyConfigs)
{
    RunSpec spec = RunSpec::of("GPT2").on("GH200").batch(4).seed(99)
                       .opt("rate", 75.0)
                       .opt("max-batch", 16.0);

    sim::SimOptions sim = spec.simOptions();
    EXPECT_EQ(sim.seed, 99u);
    EXPECT_FALSE(sim.jitter);

    skip::ProfileConfig profile = spec.profileConfig();
    EXPECT_EQ(profile.model.name, "GPT2");
    EXPECT_EQ(profile.batch, 4);
    EXPECT_EQ(profile.sim.seed, 99u);

    serving::ServingConfig serving = spec.servingConfig();
    EXPECT_DOUBLE_EQ(serving.arrivalRatePerSec, 75.0);
    EXPECT_EQ(serving.maxBatch, 16);
    EXPECT_EQ(serving.seed, 99u);
}

TEST(RunSpec, JsonRoundTrip)
{
    RunSpec spec = RunSpec::of("Bert-Base-Uncased")
                       .on("Intel+H100")
                       .batch(16)
                       .seqLen(1024)
                       .mode("flash-attention-2")
                       .seed(123)
                       .opt("gen-tokens", 4.0);
    RunSpec back = RunSpec::fromJson(spec.toJson());
    EXPECT_EQ(json::write(back.toJson()), json::write(spec.toJson()));
    EXPECT_EQ(back.model().name, "Bert-Base-Uncased");
    EXPECT_EQ(back.batch(), 16);
    EXPECT_EQ(back.seed(), 123u);
}

TEST(RunSpec, RejectsBadValues)
{
    EXPECT_THROW(RunSpec::of("NoSuchModel"), FatalError);
    EXPECT_THROW(RunSpec::of("GPT2").on("NoSuchPlatform"), FatalError);
    EXPECT_THROW(RunSpec::of("GPT2").batch(0), FatalError);
    EXPECT_THROW(RunSpec::of("GPT2").seqLen(-1), FatalError);
    EXPECT_THROW(RunSpec::of("GPT2").mode("warp-speed"), FatalError);
}

SweepSpec
smallGrid(bool jitter = true)
{
    SweepSpec grid;
    grid.models = {workload::gpt2()};
    grid.platforms = {hw::platforms::gh200(),
                      hw::platforms::intelH100()};
    grid.batches = {1, 2};
    grid.seqLens = {128};
    grid.baseSeed = 42;
    // Jitter on: byte-identity then genuinely depends on per-point
    // seed derivation, not just on the simulator being deterministic.
    grid.jitter = jitter;
    return grid;
}

TEST(SweepSpec, SizeAndIndexDecode)
{
    SweepSpec grid = smallGrid();
    EXPECT_EQ(grid.size(), 4u);

    // Mode fastest ... model slowest; here platform outranks batch.
    RunSpec p0 = grid.at(0);
    RunSpec p3 = grid.at(3);
    EXPECT_EQ(p0.platform().name, "GH200");
    EXPECT_EQ(p0.batch(), 1);
    EXPECT_EQ(p3.platform().name, "Intel+H100");
    EXPECT_EQ(p3.batch(), 2);
    EXPECT_THROW(grid.at(4), FatalError);
}

TEST(SweepSpec, PerPointSeedsFollowMixSeedConvention)
{
    SweepSpec grid = smallGrid();
    for (std::size_t i = 0; i < grid.size(); ++i)
        EXPECT_EQ(grid.at(i).seed(), mixSeed(grid.baseSeed, i));
}

TEST(SweepSpec, ValidatesEmptyAxes)
{
    SweepSpec grid = smallGrid();
    grid.batches.clear();
    EXPECT_THROW(grid.validate(), FatalError);
    EXPECT_THROW(grid.expand(), FatalError);
}

TEST(SweepSpec, JsonRoundTrip)
{
    SweepSpec grid = smallGrid();
    grid.options["rate"] = 60.0;
    SweepSpec back = SweepSpec::fromJson(grid.toJson());
    EXPECT_EQ(json::write(back.toJson()), json::write(grid.toJson()));
    EXPECT_EQ(back.size(), grid.size());
    EXPECT_EQ(back.at(2).seed(), grid.at(2).seed());
}

TEST(SweepSpec, FromJsonRejectsMissingAxes)
{
    EXPECT_THROW(SweepSpec::fromJson(json::parse("{}")), FatalError);
    EXPECT_THROW(
        SweepSpec::fromJson(json::parse("{\"models\": [\"GPT2\"]}")),
        FatalError);
}

TEST(Grid, ResultsInSubmissionOrderAtAnyJobCount)
{
    SweepSpec grid = smallGrid();
    auto label = [](const RunSpec &spec, std::size_t i) {
        return std::to_string(i) + ":" + spec.label();
    };
    auto serial = runGrid(grid, label, 1);
    auto parallel = runGrid(grid, label, 4);
    ASSERT_EQ(serial.size(), 4u);
    EXPECT_EQ(serial, parallel);
}

TEST(Registry, BuiltinsPresent)
{
    EXPECT_TRUE(hasAnalysis("profile"));
    EXPECT_TRUE(hasAnalysis("serving"));
    EXPECT_TRUE(hasAnalysis("fusion"));
    EXPECT_TRUE(hasAnalysis("generation"));
}

TEST(Registry, UnknownAnalysisReportedNotAborted)
{
    EXPECT_FALSE(hasAnalysis("does-not-exist"));
    try {
        analysisByName("does-not-exist");
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        // The error lists the registered analyses so a CLI can print
        // an actionable message instead of dying silently.
        EXPECT_NE(std::string(err.what()).find("unknown analysis"),
                  std::string::npos);
        EXPECT_NE(std::string(err.what()).find("profile"),
                  std::string::npos);
    }
}

TEST(Registry, RejectsBadRegistrations)
{
    EXPECT_THROW(registerAnalysis("", [](const RunSpec &) {
        return json::Value();
    }),
                 FatalError);
    EXPECT_THROW(registerAnalysis("null-fn", AnalysisFn()), FatalError);
}

TEST(Registry, CustomAnalysisRoundTrip)
{
    registerAnalysis("test-batch-echo", [](const RunSpec &spec) {
        return json::Value(spec.batch());
    });
    RunSpec spec = RunSpec::of("GPT2").on("GH200").batch(3);
    EXPECT_EQ(analysisByName("test-batch-echo")(spec).asInt(), 3);
}

TEST(Runner, ParallelGridByteIdenticalToSerial)
{
    SweepSpec grid = smallGrid();
    GridReport serial = Runner(1).runGrid(grid, "profile");
    GridReport parallel = Runner(4).runGrid(grid, "profile");
    ASSERT_EQ(serial.points.size(), 4u);
    EXPECT_EQ(serial.failed(), 0u);
    EXPECT_EQ(json::write(serial.resultsJson()),
              json::write(parallel.resultsJson()));
}

TEST(Runner, DeterminismRegressionSameBaseSeed)
{
    // Two independent engine invocations with the same base seed must
    // reproduce the report byte-for-byte (jitter is on, so this
    // exercises the per-point seed derivation, not just determinism
    // of the no-noise path).
    SweepSpec grid = smallGrid();
    GridReport first = Runner(2).runGrid(grid, "profile");
    GridReport second = Runner(2).runGrid(grid, "profile");
    EXPECT_EQ(json::write(first.resultsJson()),
              json::write(second.resultsJson()));

    SweepSpec reseeded = grid;
    reseeded.baseSeed = 43;
    GridReport other = Runner(2).runGrid(reseeded, "profile");
    EXPECT_NE(json::write(first.resultsJson()),
              json::write(other.resultsJson()));
}

TEST(Runner, UnknownAnalysisThrowsUpFront)
{
    EXPECT_THROW(Runner(2).runGrid(smallGrid(), "does-not-exist"),
                 FatalError);
}

TEST(Runner, PointFailuresRecordedNotAborted)
{
    registerAnalysis("test-fail-batch-2", [](const RunSpec &spec) {
        if (spec.batch() == 2)
            fatal("batch 2 is cursed");
        return json::Value(spec.batch());
    });
    GridReport report =
        Runner(4).runGrid(smallGrid(), "test-fail-batch-2");
    ASSERT_EQ(report.points.size(), 4u);
    EXPECT_EQ(report.failed(), 2u); // batch 2 on both platforms
    for (const auto &point : report.points) {
        if (point.spec.batch() == 2) {
            EXPECT_FALSE(point.ok());
            EXPECT_NE(point.error.find("cursed"), std::string::npos);
        } else {
            EXPECT_TRUE(point.ok());
        }
    }
}

TEST(Runner, ReportJsonCarriesTimingAndIdentity)
{
    GridReport report = Runner(2).runGrid(smallGrid(), "profile");
    json::Value doc = report.toJson();
    const json::Object &obj = doc.asObject();
    EXPECT_EQ(obj.at("analysis").asString(), "profile");
    EXPECT_EQ(obj.at("jobs").asInt(), 2);
    EXPECT_GT(obj.at("wall_ms").asDouble(), 0.0);
    EXPECT_EQ(obj.at("points").asInt(), 4);
    EXPECT_EQ(obj.at("results").asArray().size(), 4u);
}

} // namespace
} // namespace skipsim::exec
