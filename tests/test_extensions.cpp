/**
 * @file
 * Tests for the future-work extensions: autoregressive generation
 * (TTFT/TPOT), energy estimation, the DLRM/GCN workloads, the GB200
 * platform projection, and the custom-workload sweep plumbing.
 */

#include <gtest/gtest.h>

#include "analysis/boundedness.hh"
#include "analysis/energy.hh"
#include "analysis/generation.hh"
#include "analysis/speculative.hh"
#include "analysis/sweep.hh"
#include "common/logging.hh"
#include "hw/catalog.hh"
#include "skip/profile.hh"
#include "workload/future_workloads.hh"

namespace skipsim
{
namespace
{

// ------------------------------------------------------------- generation

TEST(Generation, ProducesAllPhases)
{
    analysis::GenerationConfig config;
    config.batch = 2;
    config.promptLen = 256;
    config.genTokens = 4;
    analysis::GenerationResult result = analysis::simulateGeneration(
        workload::gpt2(), hw::platforms::intelH100(), config);

    EXPECT_GT(result.ttftNs, 0.0);
    ASSERT_EQ(result.stepNs.size(), 4u);
    EXPECT_GT(result.tpotNs(), 0.0);
    EXPECT_NEAR(result.totalNs,
                result.ttftNs + 4.0 * result.tpotNs(),
                result.totalNs * 0.2);
    EXPECT_GT(result.tokensPerSecond(config.batch), 0.0);
    EXPECT_GE(result.worstStepNs(), result.tpotNs());
}

TEST(Generation, DecodeStepsCheaperThanPrefill)
{
    analysis::GenerationConfig config;
    config.promptLen = 512;
    config.genTokens = 2;
    analysis::GenerationResult result = analysis::simulateGeneration(
        workload::llama32_1b(), hw::platforms::gh200(), config);
    EXPECT_LT(result.tpotNs(), result.ttftNs);
}

TEST(Generation, DecodeMoreCpuBoundThanPrefill)
{
    // The decode phase launches the same kernel count for ~1/512 the
    // work: TPOT is dominated by dispatch, so the Grace CPU penalty is
    // at its worst there (the extension's headline observation).
    analysis::GenerationConfig config;
    config.promptLen = 256;
    config.genTokens = 2;

    auto run = [&](const hw::Platform &platform) {
        return analysis::simulateGeneration(workload::gpt2(), platform,
                                            config);
    };
    analysis::GenerationResult intel = run(hw::platforms::intelH100());
    analysis::GenerationResult gh = run(hw::platforms::gh200());

    double tpot_ratio = gh.tpotNs() / intel.tpotNs();
    EXPECT_GT(tpot_ratio, 2.0); // decode: almost pure CPU-speed ratio
}

TEST(Generation, InvalidTokensThrow)
{
    analysis::GenerationConfig config;
    config.genTokens = 0;
    EXPECT_THROW(analysis::simulateGeneration(
                     workload::gpt2(), hw::platforms::gh200(), config),
                 FatalError);
}

// ----------------------------------------------------------------- energy

TEST(Energy, BreakdownSumsAndScales)
{
    skip::ProfileResult run = skip::profilePrefill(
        workload::bertBaseUncased(), hw::platforms::gh200(), 8);
    analysis::EnergyReport energy = analysis::estimateEnergy(
        run.metrics, hw::platforms::gh200(), 8);

    EXPECT_GT(energy.cpuJoules, 0.0);
    EXPECT_GT(energy.gpuJoules, 0.0);
    EXPECT_NEAR(energy.joulesPerRequest * 8.0, energy.totalJoules(),
                1e-9);
    EXPECT_GT(energy.meanPowerW, 100.0);
    // Mean power cannot exceed the all-busy ceiling.
    hw::Platform gh = hw::platforms::gh200();
    EXPECT_LT(energy.meanPowerW,
              gh.cpu.busyPowerW + gh.gpu.busyPowerW + 1.0);
}

TEST(Energy, LargerBatchCheaperPerRequest)
{
    hw::Platform gh = hw::platforms::gh200();
    auto per_request = [&](int batch) {
        skip::ProfileResult run = skip::profilePrefill(
            workload::bertBaseUncased(), gh, batch);
        return analysis::estimateEnergy(run.metrics, gh, batch)
            .joulesPerRequest;
    };
    EXPECT_LT(per_request(32), per_request(1));
}

TEST(Energy, InvalidBatchThrows)
{
    skip::MetricsReport metrics;
    EXPECT_THROW(analysis::estimateEnergy(
                     metrics, hw::platforms::gh200(), 0),
                 FatalError);
}

// ----------------------------------------------------------- DLRM workload

TEST(Dlrm, GraphShape)
{
    workload::OperatorGraph graph =
        workload::buildDlrmGraph(workload::dlrmRm2(), 64);
    // 3 bottom (gemm+relu) + 26 gathers + 3 interaction + 5 top gemm +
    // 4 relu + sigmoid = 45 kernels.
    EXPECT_EQ(graph.numKernelLaunches(), 45u);
    EXPECT_EQ(graph.numMemcpys(), 1u);
    EXPECT_GT(graph.totalBytes(), 0.0);
    EXPECT_THROW(workload::buildDlrmGraph(workload::dlrmRm2(), 0),
                 FatalError);
}

TEST(Dlrm, DeeplyCpuBoundEvenAtLargeBatch)
{
    // A 45-kernel forward of tiny GEMMs and gathers stays CPU-bound
    // far beyond LLM batch sizes.
    workload::DlrmConfig config = workload::dlrmRm2();
    analysis::SweepResult sweep = analysis::runCustomSweep(
        config.name, hw::platforms::gh200(),
        [&](int batch) {
            return workload::buildDlrmGraph(config, batch);
        },
        {64, 256, 1024});
    auto bound = analysis::classifyBoundedness(sweep);
    EXPECT_EQ(bound.classify(256), analysis::Boundedness::CpuBound);
}

TEST(Dlrm, EmbeddingGathersDominateLaunches)
{
    skip::MetricsReport metrics;
    {
        sim::Simulator simulator(hw::platforms::intelH100());
        sim::SimResult result = simulator.run(
            workload::buildDlrmGraph(workload::dlrmRm2(), 128));
        metrics = skip::computeMetrics(
            skip::DependencyGraph::build(std::move(result.trace)));
    }
    auto top = metrics.topK(1, skip::TopKBy::Count);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].name, "embedding_bag_sum_128");
    EXPECT_EQ(top[0].count, 26u);
}

// ------------------------------------------------------------ GCN workload

TEST(Gcn, GraphShape)
{
    workload::OperatorGraph graph =
        workload::buildGcnGraph(workload::gcnProducts());
    // 3 x (spmm + gemm) + 2 relu + softmax = 9 kernels.
    EXPECT_EQ(graph.numKernelLaunches(), 9u);
    EXPECT_GT(graph.totalFlops(), 1e10);
    EXPECT_THROW(workload::buildGcnGraph(workload::gcnProducts(), 0),
                 FatalError);
}

TEST(Gcn, GpuBoundFromTheStart)
{
    workload::GcnConfig config = workload::gcnProducts();
    analysis::SweepResult sweep = analysis::runCustomSweep(
        config.name, hw::platforms::intelH100(),
        [&](int batch) { return workload::buildGcnGraph(config, batch); },
        {1, 2, 4});
    auto bound = analysis::classifyBoundedness(sweep);
    ASSERT_TRUE(bound.transitionBatch.has_value());
    EXPECT_EQ(*bound.transitionBatch, 1);
}

TEST(Gcn, BandwidthBoundFavoursGh200Immediately)
{
    workload::GcnConfig config = workload::gcnProducts();
    auto latency = [&](const hw::Platform &platform) {
        sim::Simulator simulator(platform);
        return simulator.run(workload::buildGcnGraph(config)).wallNs;
    };
    // SpMM streams edges: the 2x-bandwidth GH200 wins at batch 1,
    // unlike the LLM workloads.
    EXPECT_LT(latency(hw::platforms::gh200()),
              latency(hw::platforms::intelH100()));
}

// ------------------------------------------------------------------ GB200

TEST(Gb200, CatalogEntrySane)
{
    hw::Platform gb = hw::platforms::gb200();
    EXPECT_EQ(gb.coupling, hw::Coupling::CloselyCoupled);
    EXPECT_TRUE(gb.unifiedMemory);
    EXPECT_GT(gb.gpu.fp16Tflops, hw::platforms::gh200().gpu.fp16Tflops);
    EXPECT_GT(gb.gpu.memBwGBs, hw::platforms::gh200().gpu.memBwGBs);
    EXPECT_EQ(hw::platforms::byName("gb200").name, "GB200");
}

TEST(Gb200, ExtendsCpuBoundRegionFurtherThanGh200)
{
    // A faster GPU behind the same CPU widens the CPU-bound region
    // even more (the paper's trend extrapolated one generation).
    auto sweep = [&](const hw::Platform &platform) {
        return analysis::runBatchSweep(workload::bertBaseUncased(),
                                       platform,
                                       {1, 2, 4, 8, 16, 32, 64, 128});
    };
    auto gh = analysis::classifyBoundedness(
        sweep(hw::platforms::gh200()));
    auto gb = analysis::classifyBoundedness(
        sweep(hw::platforms::gb200()));
    ASSERT_TRUE(gh.transitionBatch.has_value());
    if (gb.transitionBatch) {
        EXPECT_GE(*gb.transitionBatch, *gh.transitionBatch);
    }
    EXPECT_GE(gb.lastCpuBoundBatch, gh.lastCpuBoundBatch);
}

// ------------------------------------------------------------- speculative

TEST(Speculative, EagerDecodeGainsNothing)
{
    // Launch-bound eager decode: k draft forwards cost nearly as much
    // as target forwards, so speculation loses (the launch-tax story).
    analysis::SpeculativeConfig config;
    config.draft = workload::tinyLlama1b();
    config.target = workload::llama2_7b();
    config.k = 4;
    config.contextLen = 256;
    analysis::SpeculativeResult result = analysis::evaluateSpeculative(
        hw::platforms::intelH100(), config);
    EXPECT_LT(result.speedup, 1.0);
    EXPECT_GT(result.draftStepNs, 0.3 * result.baselineTpotNs);
}

TEST(Speculative, GraphDecodeRecoversOnFastCpu)
{
    analysis::SpeculativeConfig config;
    config.draft = workload::tinyLlama1b();
    config.target = workload::llama2_7b();
    config.k = 2;
    config.contextLen = 256;
    config.mode = workload::ExecMode::CompileReduceOverhead;

    analysis::SpeculativeResult intel = analysis::evaluateSpeculative(
        hw::platforms::intelH100(), config);
    analysis::SpeculativeResult gh = analysis::evaluateSpeculative(
        hw::platforms::gh200(), config);
    // Fast-CPU LC platform benefits; the Grace CPU still gates it.
    EXPECT_GT(intel.speedup, 1.0);
    EXPECT_GT(intel.speedup, gh.speedup);
}

TEST(Speculative, ExpectedTokensFormula)
{
    analysis::SpeculativeConfig config;
    config.draft = workload::gpt2();
    config.target = workload::llama32_1b();
    config.k = 4;
    config.acceptRate = 0.5;
    config.contextLen = 128;
    analysis::SpeculativeResult result = analysis::evaluateSpeculative(
        hw::platforms::gh200(), config);
    // (1 - 0.5^5) / (1 - 0.5) = 1.9375 expected tokens per cycle.
    EXPECT_NEAR(result.expectedTokensPerCycle, 1.9375, 1e-9);
    EXPECT_NEAR(result.cycleNs,
                4.0 * result.draftStepNs + result.verifyNs,
                result.cycleNs * 0.01);
}

TEST(Speculative, InvalidConfigThrows)
{
    analysis::SpeculativeConfig config;
    config.draft = workload::gpt2();
    config.target = workload::llama32_1b();
    config.k = 0;
    EXPECT_THROW(analysis::evaluateSpeculative(hw::platforms::gh200(),
                                               config),
                 FatalError);
    config.k = 2;
    config.acceptRate = 1.0;
    EXPECT_THROW(analysis::evaluateSpeculative(hw::platforms::gh200(),
                                               config),
                 FatalError);
}

// ------------------------------------------------------------ custom sweep

TEST(CustomSweep, MatchesModelSweepForLlm)
{
    workload::ModelConfig model = workload::gpt2();
    hw::Platform platform = hw::platforms::amdA100();
    std::vector<int> batches{1, 4};

    analysis::SweepResult via_model =
        analysis::runBatchSweep(model, platform, batches);
    analysis::SweepResult via_custom = analysis::runCustomSweep(
        "GPT2", platform,
        [&](int batch) {
            workload::BuildOptions opts;
            opts.batch = batch;
            return workload::buildPrefillGraph(model, opts);
        },
        batches);

    for (int batch : batches) {
        EXPECT_DOUBLE_EQ(via_custom.at(batch).metrics.ilNs,
                         via_model.at(batch).metrics.ilNs);
        EXPECT_DOUBLE_EQ(via_custom.at(batch).metrics.tklqtNs,
                         via_model.at(batch).metrics.tklqtNs);
    }
    EXPECT_THROW(analysis::runCustomSweep(
                     "x", platform,
                     [&](int) { return workload::OperatorGraph{}; }, {}),
                 FatalError);
}

} // namespace
} // namespace skipsim
