/**
 * @file
 * Unit tests for proximity-score chain mining (paper Eqs. 6-8):
 * PS arithmetic on hand-built sequences, greedy non-overlapping
 * selection, Eq. 7/8 launch accounting, and recommendation reports.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "fusion/proximity.hh"
#include "fusion/recommend.hh"

namespace skipsim::fusion
{
namespace
{

std::vector<std::string>
seqOf(const std::string &compact)
{
    // One kernel per character: "ABAB" -> {"A","B","A","B"}.
    std::vector<std::string> out;
    for (char c : compact)
        out.emplace_back(1, c);
    return out;
}

// ------------------------------------------------------------- frequencies

TEST(Proximity, KernelFrequencyCounts)
{
    ProximityAnalyzer pa(seqOf("ABCABCAB"));
    EXPECT_EQ(pa.kernelFrequency("A"), 3u);
    EXPECT_EQ(pa.kernelFrequency("C"), 2u);
    EXPECT_EQ(pa.kernelFrequency("Z"), 0u);
    EXPECT_EQ(pa.sequenceLength(), 8u);
}

TEST(Proximity, ChainFrequencyCountsOccurrences)
{
    ProximityAnalyzer pa(seqOf("ABCABCAB"));
    EXPECT_EQ(pa.chainFrequency(seqOf("AB")), 3u);
    EXPECT_EQ(pa.chainFrequency(seqOf("ABC")), 2u);
    EXPECT_EQ(pa.chainFrequency(seqOf("CA")), 2u);
    EXPECT_EQ(pa.chainFrequency(seqOf("ZZ")), 0u);
}

TEST(Proximity, OverlappingOccurrencesCounted)
{
    ProximityAnalyzer pa(seqOf("AAAA"));
    EXPECT_EQ(pa.chainFrequency(seqOf("AA")), 3u);
}

// ---------------------------------------------------------------- Eq. 6 PS

TEST(Proximity, DeterministicChainHasPsOne)
{
    // Every A is followed by B.
    ProximityAnalyzer pa(seqOf("ABxABxAB"));
    EXPECT_DOUBLE_EQ(pa.proximityScore(seqOf("AB")), 1.0);
}

TEST(Proximity, PartialChainHasFractionalPs)
{
    // A followed by B twice out of three As.
    ProximityAnalyzer pa(seqOf("ABABAC"));
    EXPECT_NEAR(pa.proximityScore(seqOf("AB")), 2.0 / 3.0, 1e-12);
}

TEST(Proximity, AbsentChainPsZero)
{
    ProximityAnalyzer pa(seqOf("ABC"));
    EXPECT_DOUBLE_EQ(pa.proximityScore(seqOf("CA")), 0.0);
    EXPECT_DOUBLE_EQ(pa.proximityScore(seqOf("ZZ")), 0.0);
}

TEST(Proximity, EmptyChainThrows)
{
    ProximityAnalyzer pa(seqOf("ABC"));
    EXPECT_THROW(pa.proximityScore({}), FatalError);
}

// ------------------------------------------------------------ analyze (L)

TEST(Analyze, UniqueAndTotalCounts)
{
    ProximityAnalyzer pa(seqOf("ABCABC"));
    ChainStats stats = pa.analyze(2);
    // Windows: AB BC CA AB BC -> unique {AB, BC, CA}, total 5.
    EXPECT_EQ(stats.uniqueChains, 3u);
    EXPECT_EQ(stats.totalInstances, 5u);
}

TEST(Analyze, DeterministicChainsIdentified)
{
    // AB deterministic (every A -> B); BC deterministic; CA is not
    // deterministic: the final C has no successor, so f(CA)=1 < f(C)=2.
    ProximityAnalyzer pa(seqOf("ABCABC"));
    ChainStats stats = pa.analyze(2);
    EXPECT_EQ(stats.deterministicChains, 2u);
}

TEST(Analyze, GreedyNonOverlappingSelection)
{
    // ABABAB: AB is deterministic; greedy fuses at 0, 2, 4.
    ProximityAnalyzer pa(seqOf("ABABAB"));
    ChainStats stats = pa.analyze(2);
    EXPECT_EQ(stats.fusedChains, 3u);
    EXPECT_EQ(stats.kernelsFused, 6u);
    // Eq. 7: K_fused = 6 - 3*(2-1) = 3; Eq. 8: speedup = 2.
    EXPECT_EQ(stats.kFused, 3u);
    EXPECT_DOUBLE_EQ(stats.idealSpeedup, 2.0);
}

TEST(Analyze, GreedySkipsBrokenOccurrences)
{
    // "ABABAC": f(A)=3, f(AB)=2 -> AB is NOT deterministic and cannot
    // fuse, but BA (f=2, f(B)=2) is; the greedy pass fuses both BA
    // occurrences and skips over every AB window.
    ProximityAnalyzer pa(seqOf("ABABAC"));
    ChainStats stats = pa.analyze(2);
    EXPECT_EQ(stats.fusedChains, 2u);
    EXPECT_EQ(stats.kFused, 4u);
    EXPECT_DOUBLE_EQ(stats.idealSpeedup, 1.5);
    // And AB itself is indeed not a PS=1 candidate.
    for (const auto &cand : pa.candidates(2, 1.0))
        EXPECT_NE(cand.kernels, seqOf("AB"));
}

TEST(Analyze, UniqueAnchorMakesLongChainFusable)
{
    // "S" occurs once, so the window starting at S is deterministic
    // regardless of its interior.
    ProximityAnalyzer pa(seqOf("SABXABYAB"));
    ChainStats stats = pa.analyze(4);
    EXPECT_GE(stats.fusedChains, 1u);
    EXPECT_EQ(stats.kEager, 9u);
}

TEST(Analyze, ChainLongerThanSequenceYieldsNothing)
{
    ProximityAnalyzer pa(seqOf("ABC"));
    ChainStats stats = pa.analyze(8);
    EXPECT_EQ(stats.uniqueChains, 0u);
    EXPECT_EQ(stats.fusedChains, 0u);
    EXPECT_EQ(stats.kFused, stats.kEager);
    EXPECT_DOUBLE_EQ(stats.idealSpeedup, 1.0);
}

TEST(Analyze, LengthOneRejected)
{
    ProximityAnalyzer pa(seqOf("AB"));
    EXPECT_THROW(pa.analyze(1), FatalError);
    EXPECT_THROW(pa.analyze(0), FatalError);
}

TEST(Analyze, PeriodicSequenceEq7Accounting)
{
    // Period-3 sequence repeated 5 times: at L=3, windows starting at
    // each A are deterministic; greedy fuses 5 of them.
    ProximityAnalyzer pa(seqOf("ABCABCABCABCABC"));
    ChainStats stats = pa.analyze(3);
    EXPECT_EQ(stats.fusedChains, 5u);
    EXPECT_EQ(stats.kFused, 15u - 5u * 2u);
    EXPECT_DOUBLE_EQ(stats.idealSpeedup, 3.0);
}

TEST(Analyze, SweepCoversAllLengths)
{
    ProximityAnalyzer pa(seqOf("ABCABCABC"));
    auto sweep = pa.sweep({2, 3, 4});
    ASSERT_EQ(sweep.size(), 3u);
    EXPECT_EQ(sweep[0].length, 2u);
    EXPECT_EQ(sweep[2].length, 4u);
}

// -------------------------------------------------------------- candidates

TEST(Candidates, ThresholdFilters)
{
    ProximityAnalyzer pa(seqOf("ABABAC"));
    auto all = pa.candidates(2, 0.0);
    auto strict = pa.candidates(2, 1.0);
    EXPECT_GT(all.size(), strict.size());
    for (const auto &cand : strict)
        EXPECT_DOUBLE_EQ(cand.proximityScore, 1.0);
}

TEST(Candidates, SortedByFrequency)
{
    ProximityAnalyzer pa(seqOf("ABABABxCDx"));
    auto cands = pa.candidates(2, 1.0);
    ASSERT_GE(cands.size(), 2u);
    EXPECT_GE(cands[0].frequency, cands[1].frequency);
    EXPECT_EQ(cands[0].kernels, seqOf("AB"));
}

TEST(Candidates, BadThresholdThrows)
{
    ProximityAnalyzer pa(seqOf("AB"));
    EXPECT_THROW(pa.candidates(2, -0.1), FatalError);
    EXPECT_THROW(pa.candidates(2, 1.1), FatalError);
}

// ------------------------------------------------------------------ report

TEST(Recommend, ReportSelectsBestLength)
{
    // Strongly periodic: longer chains win.
    std::string compact;
    for (int i = 0; i < 16; ++i)
        compact += "ABCD";
    FusionReport report = recommend(seqOf(compact), {2, 4});
    EXPECT_EQ(report.kEager, 64u);
    EXPECT_EQ(report.best().length, 4u);
    EXPECT_DOUBLE_EQ(report.best().idealSpeedup, 4.0);
    EXPECT_FALSE(report.topCandidates.empty());
}

TEST(Recommend, RenderListsAllLengths)
{
    FusionReport report = recommend(seqOf("ABABABAB"), {2, 4});
    std::string text = report.render();
    EXPECT_NE(text.find("K_eager = 8"), std::string::npos);
    EXPECT_NE(text.find("speedup"), std::string::npos);
}

TEST(Recommend, EmptyLengthsThrow)
{
    EXPECT_THROW(recommend(seqOf("AB"), {}), FatalError);
}

TEST(Recommend, CandidateCapRespected)
{
    std::string compact;
    for (int i = 0; i < 30; ++i)
        compact += "AB";
    FusionReport report = recommend(seqOf(compact), {2}, 1.0, 1);
    EXPECT_LE(report.topCandidates.size(), 1u);
}

TEST(Recommend, BestOnEmptyReportThrows)
{
    FusionReport report;
    EXPECT_THROW(report.best(), FatalError);
}

// ------------------------------------------------------- trace integration

TEST(TraceSequence, ExtractsKernelsInStreamOrder)
{
    trace::Trace tr;
    auto add_kernel = [&](const char *name, std::int64_t ts) {
        trace::TraceEvent k;
        k.kind = trace::EventKind::Kernel;
        k.name = name;
        k.tsBeginNs = ts;
        k.durNs = 1;
        k.streamId = 7;
        k.correlationId = static_cast<std::uint64_t>(ts);
        tr.add(k);
    };
    add_kernel("late", 100);
    add_kernel("early", 1);
    trace::TraceEvent mc;
    mc.kind = trace::EventKind::Memcpy;
    mc.name = "Memcpy HtoD";
    mc.tsBeginNs = 0;
    mc.durNs = 1;
    mc.streamId = 7;
    tr.add(mc);

    auto seq = kernelSequenceFromTrace(tr);
    ASSERT_EQ(seq.size(), 2u); // memcpy excluded
    EXPECT_EQ(seq[0], "early");
    EXPECT_EQ(seq[1], "late");
}

TEST(DefaultLengths, MatchPaperSweep)
{
    auto lengths = defaultChainLengths();
    ASSERT_EQ(lengths.size(), 8u);
    EXPECT_EQ(lengths.front(), 2u);
    EXPECT_EQ(lengths.back(), 256u);
}

// --------------------------------------------- property-style parameterized

class GreedyInvariant : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(GreedyInvariant, Eq7AccountingAlwaysConsistent)
{
    // A pseudo-random but deterministic sequence over a small alphabet.
    std::vector<std::string> seq;
    std::uint64_t state = 0x1234;
    for (int i = 0; i < 200; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        seq.emplace_back(1, static_cast<char>('A' + (state >> 60) % 6));
    }
    ProximityAnalyzer pa(seq);
    std::size_t length = GetParam();
    ChainStats stats = pa.analyze(length);

    // Invariants of Eqs. 7/8 and the greedy cover.
    EXPECT_EQ(stats.kernelsFused, stats.fusedChains * length);
    EXPECT_LE(stats.kernelsFused, stats.kEager);
    EXPECT_EQ(stats.kFused,
              stats.kEager - stats.fusedChains * (length - 1));
    EXPECT_GE(stats.idealSpeedup, 1.0);
    EXPECT_LE(stats.deterministicChains, stats.uniqueChains);
    if (stats.uniqueChains > 0) {
        EXPECT_EQ(stats.totalInstances,
                  stats.kEager - length + 1);
    }
}

INSTANTIATE_TEST_SUITE_P(Lengths, GreedyInvariant,
                         ::testing::Values(2, 3, 4, 8, 16, 32, 64, 128));

} // namespace
} // namespace skipsim::fusion
