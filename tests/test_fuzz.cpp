/**
 * @file
 * Randomized property tests: generate pseudo-random operator graphs
 * and verify simulator/analyzer invariants hold for every one of them
 * — trace validity, metric identities, flatten/round-trip equivalence,
 * chain-mining accounting and Chrome-trace round trips.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "fusion/proximity.hh"
#include "hw/catalog.hh"
#include "sim/simulator.hh"
#include "skip/dep_graph.hh"
#include "skip/metrics.hh"
#include "trace/chrome.hh"
#include "workload/flatten.hh"
#include "workload/op_graph.hh"

namespace skipsim
{
namespace
{

/** Build a random operator graph from a seed (up to depth-2 nesting). */
workload::OperatorGraph
randomGraph(std::uint64_t seed)
{
    Rng rng(seed);
    workload::OperatorGraph graph;
    std::size_t roots = 5 + rng.below(40);
    int kernel_names = 3 + static_cast<int>(rng.below(6));

    for (std::size_t i = 0; i < roots; ++i) {
        workload::OpNode node;
        node.name = "op_" + std::to_string(rng.below(8));
        node.cpuNs = 500.0 + static_cast<double>(rng.below(20000));
        node.preFraction = 0.2 + 0.6 * rng.uniform();

        std::size_t children = rng.below(3);
        for (std::size_t c = 0; c < children; ++c) {
            workload::OpNode child;
            child.name = "child_" + std::to_string(rng.below(4));
            child.cpuNs = 300.0 + static_cast<double>(rng.below(8000));
            if (rng.below(2) == 0) {
                workload::KernelLaunch launch;
                launch.kernelName =
                    "k" + std::to_string(rng.below(
                              static_cast<std::uint64_t>(kernel_names)));
                hw::KernelWork w;
                w.cls = rng.below(2) == 0 ? hw::KernelClass::Gemm
                                          : hw::KernelClass::Elementwise;
                w.flops = static_cast<double>(rng.below(5'000'000'000ULL));
                w.bytes = static_cast<double>(rng.below(50'000'000ULL));
                w.rows = static_cast<double>(64 + rng.below(8192));
                launch.work.push_back(w);
                child.launches.push_back(std::move(launch));
            }
            node.children.push_back(std::move(child));
        }

        if (rng.below(3) != 0) {
            workload::KernelLaunch launch;
            launch.kernelName =
                "k" + std::to_string(rng.below(
                          static_cast<std::uint64_t>(kernel_names)));
            hw::KernelWork w;
            w.cls = hw::KernelClass::Elementwise;
            w.bytes = static_cast<double>(rng.below(20'000'000ULL));
            launch.work.push_back(w);
            node.launches.push_back(std::move(launch));
        }
        graph.roots.push_back(std::move(node));
    }
    return graph;
}

class FuzzGraphs : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(FuzzGraphs, SimulatedTraceIsAlwaysValid)
{
    workload::OperatorGraph graph = randomGraph(GetParam());
    for (const auto &platform :
         {hw::platforms::intelH100(), hw::platforms::gh200()}) {
        sim::Simulator simulator(platform);
        sim::SimResult result = simulator.run(graph);
        EXPECT_TRUE(result.trace.validate().empty());
        EXPECT_GE(result.wallNs, 0.0);
        EXPECT_EQ(result.numKernels, graph.numKernelLaunches());
    }
}

TEST_P(FuzzGraphs, MetricIdentitiesHold)
{
    workload::OperatorGraph graph = randomGraph(GetParam());
    sim::Simulator simulator(hw::platforms::amdA100());
    sim::SimResult result = simulator.run(graph);
    skip::MetricsReport metrics = skip::computeMetrics(
        skip::DependencyGraph::build(std::move(result.trace)));

    if (metrics.numKernels == 0)
        return;
    EXPECT_NEAR(metrics.gpuBusyNs + metrics.gpuIdleNs, metrics.ilNs,
                1.0);
    EXPECT_GE(metrics.tklqtNs, metrics.tklqtQueueNs);
    EXPECT_GE(metrics.cpuBusyNs, 0.0);
    EXPECT_LE(metrics.cpuBusyNs, metrics.ilNs + 1.0);
    EXPECT_NEAR(metrics.avgLaunchNs * metrics.numKernels,
                metrics.tklqtNs, 1.0);
    std::size_t by_kernel_total = 0;
    for (const auto &stat : metrics.byKernel)
        by_kernel_total += stat.count;
    EXPECT_EQ(by_kernel_total, metrics.numKernels);
}

TEST_P(FuzzGraphs, FlattenPreservesSimulation)
{
    workload::OperatorGraph graph = randomGraph(GetParam());
    workload::OperatorGraph flat =
        workload::timelineToGraph(workload::flattenGraph(graph));

    sim::SimOptions opts;
    opts.jitter = false;
    sim::Simulator simulator(hw::platforms::gh200(), opts);
    sim::SimResult a = simulator.run(graph);
    sim::SimResult b = simulator.run(flat);
    auto ka = a.trace.ofKind(trace::EventKind::Kernel);
    auto kb = b.trace.ofKind(trace::EventKind::Kernel);
    ASSERT_EQ(ka.size(), kb.size());
    for (std::size_t i = 0; i < ka.size(); ++i) {
        // Merging CPU segments rounds once where the tree rounds
        // twice, so timestamps may drift by a few ns over the run.
        EXPECT_NEAR(static_cast<double>(ka[i].tsBeginNs),
                    static_cast<double>(kb[i].tsBeginNs), 100.0);
        EXPECT_EQ(ka[i].durNs, kb[i].durNs);
        EXPECT_EQ(ka[i].name, kb[i].name);
    }
}

TEST_P(FuzzGraphs, ChromeRoundTripLossless)
{
    workload::OperatorGraph graph = randomGraph(GetParam());
    sim::Simulator simulator(hw::platforms::intelH100());
    sim::SimResult result = simulator.run(graph);

    trace::Trace reloaded =
        trace::fromChromeText(trace::toChromeText(result.trace));
    ASSERT_EQ(reloaded.size(), result.trace.size());
    skip::MetricsReport a = skip::computeMetrics(
        skip::DependencyGraph::build(result.trace));
    skip::MetricsReport b = skip::computeMetrics(
        skip::DependencyGraph::build(std::move(reloaded)));
    EXPECT_DOUBLE_EQ(a.tklqtNs, b.tklqtNs);
    EXPECT_DOUBLE_EQ(a.ilNs, b.ilNs);
}

TEST_P(FuzzGraphs, ChainMiningInvariants)
{
    workload::OperatorGraph graph = randomGraph(GetParam());
    fusion::ProximityAnalyzer analyzer(graph.kernelSequence());
    for (std::size_t length : {std::size_t(2), std::size_t(5)}) {
        if (analyzer.sequenceLength() < length)
            continue;
        fusion::ChainStats stats = analyzer.analyze(length);
        EXPECT_EQ(stats.totalInstances,
                  analyzer.sequenceLength() - length + 1);
        EXPECT_LE(stats.deterministicChains, stats.uniqueChains);
        EXPECT_EQ(stats.kFused,
                  stats.kEager - stats.fusedChains * (length - 1));
        EXPECT_GE(stats.idealSpeedup, 1.0);
        for (const auto &cand : analyzer.candidates(length, 1.0)) {
            EXPECT_DOUBLE_EQ(analyzer.proximityScore(cand.kernels),
                             1.0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzGraphs,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34,
                                           55, 89, 144, 233));

} // namespace
} // namespace skipsim
