/**
 * @file
 * Randomized property tests: draw pseudo-random operator graphs from
 * the skipsim::check fuzz generator and verify simulator/analyzer
 * invariants hold for every one of them — trace validity, metric
 * identities, flatten/round-trip equivalence, chain-mining accounting
 * and Chrome-trace round trips.
 */

#include <gtest/gtest.h>

#include "check/fuzzer.hh"
#include "fusion/proximity.hh"
#include "hw/catalog.hh"
#include "sim/simulator.hh"
#include "skip/dep_graph.hh"
#include "skip/metrics.hh"
#include "trace/chrome.hh"
#include "workload/flatten.hh"
#include "workload/op_graph.hh"

namespace skipsim
{
namespace
{

/**
 * Draw a random operator graph from the shared check::Fuzzer
 * generator (these tests predate it and used to keep their own copy).
 * The generator mixes engine kinds, so scan indices for the first
 * sim-kind case of this campaign seed; ~70% are sim cases, making a
 * 64-index scan effectively infallible.
 */
workload::OperatorGraph
randomGraph(std::uint64_t seed)
{
    check::FuzzOptions opts;
    opts.seed = seed;
    check::Fuzzer fuzzer(opts);
    for (std::uint64_t i = 0; i < 64; ++i) {
        check::FuzzCase c = fuzzer.generate(i);
        if (c.kind == check::FuzzKind::Sim)
            return c.graph;
    }
    ADD_FAILURE() << "no sim-kind fuzz case in 64 draws (seed "
                  << seed << ")";
    return {};
}

class FuzzGraphs : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(FuzzGraphs, SimulatedTraceIsAlwaysValid)
{
    workload::OperatorGraph graph = randomGraph(GetParam());
    for (const auto &platform :
         {hw::platforms::intelH100(), hw::platforms::gh200()}) {
        sim::Simulator simulator(platform);
        sim::SimResult result = simulator.run(graph);
        EXPECT_TRUE(result.trace.validate().empty());
        EXPECT_GE(result.wallNs, 0.0);
        EXPECT_EQ(result.numKernels, graph.numKernelLaunches());
    }
}

TEST_P(FuzzGraphs, MetricIdentitiesHold)
{
    workload::OperatorGraph graph = randomGraph(GetParam());
    sim::Simulator simulator(hw::platforms::amdA100());
    sim::SimResult result = simulator.run(graph);
    skip::MetricsReport metrics = skip::computeMetrics(
        skip::DependencyGraph::build(std::move(result.trace)));

    if (metrics.numKernels == 0)
        return;
    EXPECT_NEAR(metrics.gpuBusyNs + metrics.gpuIdleNs, metrics.ilNs,
                1.0);
    EXPECT_GE(metrics.tklqtNs, metrics.tklqtQueueNs);
    EXPECT_GE(metrics.cpuBusyNs, 0.0);
    EXPECT_LE(metrics.cpuBusyNs, metrics.ilNs + 1.0);
    EXPECT_NEAR(metrics.avgLaunchNs * metrics.numKernels,
                metrics.tklqtNs, 1.0);
    std::size_t by_kernel_total = 0;
    for (const auto &stat : metrics.byKernel)
        by_kernel_total += stat.count;
    EXPECT_EQ(by_kernel_total, metrics.numKernels);
}

TEST_P(FuzzGraphs, FlattenPreservesSimulation)
{
    workload::OperatorGraph graph = randomGraph(GetParam());
    workload::OperatorGraph flat =
        workload::timelineToGraph(workload::flattenGraph(graph));

    sim::SimOptions opts;
    opts.jitter = false;
    sim::Simulator simulator(hw::platforms::gh200(), opts);
    sim::SimResult a = simulator.run(graph);
    sim::SimResult b = simulator.run(flat);
    auto ka = a.trace.ofKind(trace::EventKind::Kernel);
    auto kb = b.trace.ofKind(trace::EventKind::Kernel);
    ASSERT_EQ(ka.size(), kb.size());
    for (std::size_t i = 0; i < ka.size(); ++i) {
        // Merging CPU segments rounds once where the tree rounds
        // twice, so timestamps may drift by a few ns over the run.
        EXPECT_NEAR(static_cast<double>(ka[i].tsBeginNs),
                    static_cast<double>(kb[i].tsBeginNs), 100.0);
        EXPECT_EQ(ka[i].durNs, kb[i].durNs);
        EXPECT_EQ(ka[i].name, kb[i].name);
    }
}

TEST_P(FuzzGraphs, ChromeRoundTripLossless)
{
    workload::OperatorGraph graph = randomGraph(GetParam());
    sim::Simulator simulator(hw::platforms::intelH100());
    sim::SimResult result = simulator.run(graph);

    trace::Trace reloaded =
        trace::fromChromeText(trace::toChromeText(result.trace));
    ASSERT_EQ(reloaded.size(), result.trace.size());
    skip::MetricsReport a = skip::computeMetrics(
        skip::DependencyGraph::build(result.trace));
    skip::MetricsReport b = skip::computeMetrics(
        skip::DependencyGraph::build(std::move(reloaded)));
    EXPECT_DOUBLE_EQ(a.tklqtNs, b.tklqtNs);
    EXPECT_DOUBLE_EQ(a.ilNs, b.ilNs);
}

TEST_P(FuzzGraphs, ChainMiningInvariants)
{
    workload::OperatorGraph graph = randomGraph(GetParam());
    fusion::ProximityAnalyzer analyzer(graph.kernelSequence());
    for (std::size_t length : {std::size_t(2), std::size_t(5)}) {
        if (analyzer.sequenceLength() < length)
            continue;
        fusion::ChainStats stats = analyzer.analyze(length);
        EXPECT_EQ(stats.totalInstances,
                  analyzer.sequenceLength() - length + 1);
        EXPECT_LE(stats.deterministicChains, stats.uniqueChains);
        EXPECT_EQ(stats.kFused,
                  stats.kEager - stats.fusedChains * (length - 1));
        EXPECT_GE(stats.idealSpeedup, 1.0);
        for (const auto &cand : analyzer.candidates(length, 1.0)) {
            EXPECT_DOUBLE_EQ(analyzer.proximityScore(cand.kernels),
                             1.0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzGraphs,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34,
                                           55, 89, 144, 233));

} // namespace
} // namespace skipsim
