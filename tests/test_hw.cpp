/**
 * @file
 * Unit tests for the hardware models: kernel cost roofline, efficiency
 * curves, platform catalog calibration anchors (paper Tables IV/V).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "hw/catalog.hh"
#include "hw/kernel_cost.hh"
#include "hw/platform.hh"

namespace skipsim::hw
{
namespace
{

GpuModel
testGpu()
{
    GpuModel gpu;
    gpu.fp16Tflops = 1000.0;    // 1e6 flop/us
    gpu.memBwGBs = 1000.0;      // 1e3 bytes/ns at memEff=1
    gpu.minKernelNs = 1000.0;
    gpu.maxGemmEff = 0.5;
    gpu.gemmHalfWorkFlops = 1e9;
    gpu.gemmHalfRows = 1000.0;
    gpu.memEff = 1.0;
    return gpu;
}

// ------------------------------------------------------------ efficiency

TEST(GemmEfficiency, SaturatesWithWork)
{
    GpuModel gpu = testGpu();
    double small = gemmEfficiency(gpu, 1e8);
    double large = gemmEfficiency(gpu, 1e12);
    EXPECT_LT(small, large);
    EXPECT_NEAR(large, gpu.maxGemmEff, 0.01);
}

TEST(GemmEfficiency, HalfWorkIsHalfEff)
{
    GpuModel gpu = testGpu();
    EXPECT_NEAR(gemmEfficiency(gpu, 1e9), 0.25, 1e-9);
}

TEST(GemmEfficiency, RowFactorPenalizesSkinnyGemms)
{
    GpuModel gpu = testGpu();
    double wide = gemmEfficiency(gpu, 1e10, 100000.0);
    double skinny = gemmEfficiency(gpu, 1e10, 100.0);
    EXPECT_GT(wide, 3.0 * skinny);
}

TEST(GemmEfficiency, UnknownRowsNeutral)
{
    GpuModel gpu = testGpu();
    EXPECT_DOUBLE_EQ(gemmEfficiency(gpu, 1e9, 0.0),
                     gemmEfficiency(gpu, 1e9));
}

// --------------------------------------------------------------- duration

TEST(KernelDuration, NullKernelTakesMinimum)
{
    GpuModel gpu = testGpu();
    KernelWork w;
    w.cls = KernelClass::Null;
    EXPECT_DOUBLE_EQ(kernelDurationNs(gpu, w), gpu.minKernelNs);
}

TEST(KernelDuration, MemoryBoundKernelUsesBandwidth)
{
    GpuModel gpu = testGpu();
    KernelWork w;
    w.cls = KernelClass::Elementwise;
    w.bytes = 1e7; // 10 MB at 1000 B/ns -> 10 us
    EXPECT_NEAR(kernelDurationNs(gpu, w), 1e4, 1.0);
}

TEST(KernelDuration, ComputeBoundGemmUsesFlops)
{
    GpuModel gpu = testGpu();
    KernelWork w;
    w.cls = KernelClass::Gemm;
    w.flops = 1e12;
    w.bytes = 1.0; // negligible
    // eff ~ 0.5 at saturation: 1e12 / (1e6 flop/us * 0.5) ~ 2e6 us... in
    // ns: 1e12 / (1e6 flop/ns * ~0.4995) ~ 2.0e6 ns.
    EXPECT_NEAR(kernelDurationNs(gpu, w), 2.0e6, 5e4);
}

TEST(KernelDuration, RooflineTakesMax)
{
    GpuModel gpu = testGpu();
    KernelWork w;
    w.cls = KernelClass::Gemm;
    w.flops = 1e9;
    w.bytes = 1e9; // 1e6 ns of memory time, dominating
    EXPECT_NEAR(kernelDurationNs(gpu, w), 1e6, 1e3);
}

TEST(KernelDuration, MinimumFloorsEverything)
{
    GpuModel gpu = testGpu();
    KernelWork w;
    w.cls = KernelClass::Elementwise;
    w.flops = 10.0;
    w.bytes = 10.0;
    EXPECT_DOUBLE_EQ(kernelDurationNs(gpu, w), gpu.minKernelNs);
}

TEST(KernelDuration, FusedComponentsSum)
{
    GpuModel gpu = testGpu();
    KernelWork a;
    a.cls = KernelClass::Elementwise;
    a.bytes = 1e7;
    KernelWork b = a;
    double single = kernelDurationNs(gpu, a);
    EXPECT_DOUBLE_EQ(kernelDurationNs(gpu, {a, b}), 2.0 * single);
}

TEST(KernelDuration, EmptyComponentListIsNullKernel)
{
    GpuModel gpu = testGpu();
    EXPECT_DOUBLE_EQ(kernelDurationNs(gpu, std::vector<KernelWork>{}),
                     gpu.minKernelNs);
}

TEST(KernelDuration, InvalidGpuThrows)
{
    GpuModel gpu = testGpu();
    gpu.fp16Tflops = 0.0;
    KernelWork w;
    EXPECT_THROW(kernelDurationNs(gpu, w), FatalError);
}

TEST(KernelClassNames, AllDistinct)
{
    EXPECT_STREQ(kernelClassName(KernelClass::Gemm), "gemm");
    EXPECT_STREQ(kernelClassName(KernelClass::Attention), "attention");
    EXPECT_STREQ(kernelClassName(KernelClass::Null), "null");
    EXPECT_STREQ(kernelClassName(KernelClass::Graph), "graph");
}

// --------------------------------------------------------------- platform

TEST(Platform, CouplingNames)
{
    EXPECT_STREQ(couplingName(Coupling::LooselyCoupled), "LC");
    EXPECT_STREQ(couplingName(Coupling::CloselyCoupled), "CC");
    EXPECT_STREQ(couplingName(Coupling::TightlyCoupled), "TC");
}

TEST(Platform, CpuOpScaling)
{
    Platform p = platforms::gh200();
    double base = 10000.0;
    EXPECT_GT(p.cpuOpNs(base), base); // Grace is slower than reference
    Platform intel = platforms::intelH100();
    EXPECT_DOUBLE_EQ(intel.cpuOpNs(base), base);
}

TEST(Platform, TransferTimeScalesWithBytes)
{
    Platform p = platforms::intelH100();
    double small = p.transferNs(1e3);
    double large = p.transferNs(1e6);
    EXPECT_GT(large, small);
    EXPECT_DOUBLE_EQ(p.transferNs(0.0), 0.0);
}

TEST(Platform, TransferWithoutBandwidthThrows)
{
    Platform p = platforms::intelH100();
    p.link.bwGBs = 0.0;
    EXPECT_THROW(p.transferNs(100.0), FatalError);
}

// ---------------------------------------------------------------- catalog

TEST(Catalog, PaperTrioMatchesTableIV)
{
    auto trio = platforms::paperTrio();
    ASSERT_EQ(trio.size(), 3u);
    EXPECT_EQ(trio[0].name, "AMD+A100");
    EXPECT_EQ(trio[0].coupling, Coupling::LooselyCoupled);
    EXPECT_EQ(trio[1].name, "Intel+H100");
    EXPECT_EQ(trio[1].coupling, Coupling::LooselyCoupled);
    EXPECT_EQ(trio[2].name, "GH200");
    EXPECT_EQ(trio[2].coupling, Coupling::CloselyCoupled);
}

TEST(Catalog, TableVAnchorsEncodedExactly)
{
    // Paper Table V: launch overheads and nullKernel durations.
    EXPECT_DOUBLE_EQ(platforms::amdA100().cpu.launchOverheadNs, 2260.5);
    EXPECT_DOUBLE_EQ(platforms::intelH100().cpu.launchOverheadNs, 2374.6);
    EXPECT_DOUBLE_EQ(platforms::gh200().cpu.launchOverheadNs, 2771.6);
    EXPECT_DOUBLE_EQ(platforms::amdA100().gpu.minKernelNs, 1440.0);
    EXPECT_DOUBLE_EQ(platforms::intelH100().gpu.minKernelNs, 1235.2);
    EXPECT_DOUBLE_EQ(platforms::gh200().gpu.minKernelNs, 1171.2);
}

TEST(Catalog, LaunchOverheadOrderingMatchesPaper)
{
    // AMD < Intel < GH200 on launch overhead; reverse on duration.
    auto trio = platforms::paperTrio();
    EXPECT_LT(trio[0].cpu.launchOverheadNs, trio[1].cpu.launchOverheadNs);
    EXPECT_LT(trio[1].cpu.launchOverheadNs, trio[2].cpu.launchOverheadNs);
    EXPECT_GT(trio[0].gpu.minKernelNs, trio[1].gpu.minKernelNs);
    EXPECT_GT(trio[1].gpu.minKernelNs, trio[2].gpu.minKernelNs);
}

TEST(Catalog, GraceSingleThreadSlowest)
{
    EXPECT_LT(platforms::gh200().cpu.singleThreadScore,
              platforms::amdA100().cpu.singleThreadScore);
    EXPECT_LT(platforms::amdA100().cpu.singleThreadScore,
              platforms::intelH100().cpu.singleThreadScore);
}

TEST(Catalog, Gh200HasUnifiedMemoryAndBandwidthEdge)
{
    Platform gh = platforms::gh200();
    EXPECT_TRUE(gh.unifiedMemory);
    EXPECT_GT(gh.gpu.memBwGBs, platforms::intelH100().gpu.memBwGBs);
    EXPECT_GT(gh.link.bwGBs, platforms::intelH100().link.bwGBs);
}

TEST(Catalog, LcPlatformsHaveSeparateMemory)
{
    EXPECT_FALSE(platforms::amdA100().unifiedMemory);
    EXPECT_FALSE(platforms::intelH100().unifiedMemory);
    EXPECT_TRUE(platforms::mi300a().unifiedMemory);
}

TEST(Catalog, ByNameCaseInsensitive)
{
    EXPECT_EQ(platforms::byName("gh200").name, "GH200");
    EXPECT_EQ(platforms::byName("INTEL+H100").name, "Intel+H100");
    EXPECT_EQ(platforms::byName("mi300a").coupling,
              Coupling::TightlyCoupled);
}

TEST(Catalog, ByNameUnknownThrows)
{
    EXPECT_THROW(platforms::byName("tpu-v5"), FatalError);
}

TEST(Catalog, NamesListsAllPlatforms)
{
    auto names = platforms::names();
    ASSERT_EQ(names.size(), platforms::all().size());
    for (const auto &name : names)
        EXPECT_NO_THROW(platforms::byName(name));
}

} // namespace
} // namespace skipsim::hw
