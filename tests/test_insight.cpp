/**
 * @file
 * Tests for the profiler insight passes: run diffing, GPU gap
 * analysis, and the roofline classifier.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "hw/catalog.hh"
#include "skip/diff.hh"
#include "skip/gaps.hh"
#include "skip/profile.hh"
#include "workload/builder.hh"
#include "workload/roofline.hh"

namespace skipsim
{
namespace
{

skip::MetricsReport
profileMetrics(workload::ExecMode mode, int batch = 1)
{
    return skip::profilePrefill(workload::gpt2(),
                                hw::platforms::intelH100(), batch, 512,
                                mode)
        .metrics;
}

// ------------------------------------------------------------------- diff

TEST(RunDiff, Fa2VsEagerShowsLaunchSavings)
{
    skip::MetricsReport eager =
        profileMetrics(workload::ExecMode::Eager);
    skip::MetricsReport fa2 =
        profileMetrics(workload::ExecMode::FlashAttention2);
    skip::RunDiff diff = skip::diffRuns(eager, fa2);

    // FA2 replaces 9 attention kernels per layer with 1 flash kernel.
    EXPECT_EQ(diff.kernelCountDelta, -12 * 8);
    EXPECT_GT(diff.speedup, 1.0);
    EXPECT_LT(diff.ilDeltaNs, 0.0);
    EXPECT_FALSE(diff.byKernel.empty());

    // The flash kernel appears only in the candidate run.
    bool found_flash = false;
    for (const auto &d : diff.byKernel) {
        if (d.name.rfind("flash_fwd_kernel", 0) == 0) {
            EXPECT_EQ(d.countBefore, 0u);
            EXPECT_EQ(d.countAfter, 12u);
            found_flash = true;
        }
    }
    EXPECT_TRUE(found_flash);
}

TEST(RunDiff, IdenticalRunsAreNeutral)
{
    skip::MetricsReport a = profileMetrics(workload::ExecMode::Eager);
    skip::RunDiff diff = skip::diffRuns(a, a);
    EXPECT_DOUBLE_EQ(diff.ilDeltaNs, 0.0);
    EXPECT_EQ(diff.kernelCountDelta, 0);
    EXPECT_DOUBLE_EQ(diff.speedup, 1.0);
}

TEST(RunDiff, CrossPlatformDiff)
{
    skip::MetricsReport intel = skip::profilePrefill(
        workload::bertBaseUncased(), hw::platforms::intelH100(), 1)
        .metrics;
    skip::MetricsReport gh = skip::profilePrefill(
        workload::bertBaseUncased(), hw::platforms::gh200(), 1)
        .metrics;
    skip::RunDiff diff = skip::diffRuns(intel, gh);
    // GH200 is slower at BS=1 (CPU-bound): speedup < 1.
    EXPECT_LT(diff.speedup, 1.0);
    EXPECT_EQ(diff.kernelCountDelta, 0);
}

TEST(RunDiff, ZeroCandidateThrows)
{
    skip::MetricsReport a = profileMetrics(workload::ExecMode::Eager);
    skip::MetricsReport empty;
    EXPECT_THROW(skip::diffRuns(a, empty), FatalError);
    EXPECT_NE(skip::diffRuns(a, a).render().find("Run diff"),
              std::string::npos);
}

// ------------------------------------------------------------------- gaps

TEST(GapAnalysis, CpuBoundRunHasLargeGaps)
{
    skip::ProfileResult run = skip::profilePrefill(
        workload::bertBaseUncased(), hw::platforms::gh200(), 1);
    skip::DependencyGraph dep = skip::DependencyGraph::build(run.trace);
    skip::GapReport report = skip::analyzeGaps(dep);

    EXPECT_FALSE(report.gaps.empty());
    // Interior gaps account for most of the GPU idle time.
    EXPECT_GT(report.totalGapNs, 0.5 * run.metrics.gpuIdleNs);
    EXPECT_GT(report.maxGapNs, 0.0);
    EXPECT_FALSE(report.blameByOp.empty());
}

TEST(GapAnalysis, GpuBoundRunHasSmallGaps)
{
    skip::ProfileResult run = skip::profilePrefill(
        workload::bertBaseUncased(), hw::platforms::intelH100(), 64);
    skip::DependencyGraph dep = skip::DependencyGraph::build(run.trace);
    skip::GapReport report = skip::analyzeGaps(dep);
    // Saturated stream: total interior gap time is a tiny share of IL.
    EXPECT_LT(report.totalGapNs, 0.1 * run.metrics.ilNs);
}

TEST(GapAnalysis, BlameSumsToTotal)
{
    skip::ProfileResult run = skip::profilePrefill(
        workload::gpt2(), hw::platforms::gh200(), 1, 256);
    skip::DependencyGraph dep = skip::DependencyGraph::build(run.trace);
    skip::GapReport report = skip::analyzeGaps(dep);
    double sum = 0.0;
    for (const auto &[op, total] : report.blameByOp)
        sum += total;
    EXPECT_NEAR(sum, report.totalGapNs, 1.0);
    EXPECT_NE(report.render().find("GPU gaps"), std::string::npos);
}

TEST(GapAnalysis, EmptyTraceYieldsNothing)
{
    skip::GapReport report = skip::analyzeGaps(
        skip::DependencyGraph::build(trace::Trace{}));
    EXPECT_TRUE(report.gaps.empty());
    EXPECT_DOUBLE_EQ(report.totalGapNs, 0.0);
}

// --------------------------------------------------------------- roofline

TEST(Roofline, RidgePointSane)
{
    // H100 PCIe: 756 TF x 0.55 / (2000 GB/s x 0.82) ~ 254 FLOP/B.
    double ridge = workload::ridgePointFlopsPerByte(
        hw::platforms::intelH100().gpu);
    EXPECT_GT(ridge, 100.0);
    EXPECT_LT(ridge, 600.0);
}

TEST(Roofline, EagerTransformerIsMostlyMemoryBound)
{
    workload::BuildOptions opts;
    opts.batch = 1;
    workload::OperatorGraph graph =
        workload::buildPrefillGraph(workload::gpt2(), opts);
    workload::RooflineReport report = workload::rooflineReport(
        graph, hw::platforms::intelH100().gpu);

    EXPECT_FALSE(report.points.empty());
    // Eager small-batch prefill: elementwise/softmax dominate kernel
    // count; the memory-bound share of GPU time is substantial.
    EXPECT_GT(report.memoryBoundShare(), 0.3);
    EXPECT_NE(report.render().find("Roofline"), std::string::npos);
}

TEST(Roofline, GemmsAreComputeBoundElementwiseNot)
{
    workload::BuildOptions opts;
    opts.batch = 32;
    workload::OperatorGraph graph =
        workload::buildPrefillGraph(workload::gpt2(), opts);
    workload::RooflineReport report = workload::rooflineReport(
        graph, hw::platforms::intelH100().gpu);

    for (const auto &point : report.points) {
        if (point.kernelName.rfind("elementwise_", 0) == 0) {
            EXPECT_FALSE(point.computeBound) << point.kernelName;
        }
        if (point.kernelName.rfind("gemm_", 0) == 0 &&
            point.kernelName.find("x768x3072") != std::string::npos) {
            EXPECT_TRUE(point.computeBound) << point.kernelName;
        }
    }
}

TEST(Roofline, HigherBandwidthLowersRidge)
{
    double intel = workload::ridgePointFlopsPerByte(
        hw::platforms::intelH100().gpu);
    double gh = workload::ridgePointFlopsPerByte(
        hw::platforms::gh200().gpu);
    EXPECT_LT(gh, intel);
}

} // namespace
} // namespace skipsim
