/**
 * @file
 * Cross-module integration tests: the full pipeline (build -> simulate
 * -> export -> re-import -> analyze) must be lossless; SKIP metrics
 * computed on an exported/re-imported trace must match the originals;
 * fusion mining must work off on-disk traces exactly as off live runs.
 */

#include <gtest/gtest.h>

#include "analysis/boundedness.hh"
#include "analysis/sweep.hh"
#include "fusion/recommend.hh"
#include "hw/catalog.hh"
#include "json/parser.hh"
#include "json/writer.hh"
#include "skip/profile.hh"
#include "trace/chrome.hh"
#include "workload/builder.hh"

namespace skipsim
{
namespace
{

TEST(Integration, ChromeRoundTripPreservesMetrics)
{
    skip::ProfileResult run = skip::profilePrefill(
        workload::gpt2(), hw::platforms::gh200(), 2, 256);

    std::string text = trace::toChromeText(run.trace);
    trace::Trace reloaded = trace::fromChromeText(text);

    skip::MetricsReport original = run.metrics;
    skip::MetricsReport recomputed = skip::computeMetrics(
        skip::DependencyGraph::build(std::move(reloaded)));

    EXPECT_DOUBLE_EQ(recomputed.tklqtNs, original.tklqtNs);
    EXPECT_DOUBLE_EQ(recomputed.akdNs, original.akdNs);
    EXPECT_DOUBLE_EQ(recomputed.ilNs, original.ilNs);
    EXPECT_DOUBLE_EQ(recomputed.gpuIdleNs, original.gpuIdleNs);
    EXPECT_DOUBLE_EQ(recomputed.cpuIdleNs, original.cpuIdleNs);
    EXPECT_EQ(recomputed.numKernels, original.numKernels);
    EXPECT_EQ(recomputed.numOps, original.numOps);
}

TEST(Integration, ChromeFileRoundTripViaDisk)
{
    std::string path =
        testing::TempDir() + "/skipsim_integration_trace.json";
    skip::ProfileResult run = skip::profilePrefill(
        workload::bertBaseUncased(), hw::platforms::intelH100(), 1, 128);
    trace::writeChromeFile(path, run.trace);

    trace::Trace reloaded = trace::readChromeFile(path);
    EXPECT_EQ(reloaded.size(), run.trace.size());
    EXPECT_EQ(reloaded.meta("model"), "Bert-Base-Uncased");

    // The exported file is valid standalone JSON.
    EXPECT_NO_THROW(json::parseFile(path));
}

TEST(Integration, FusionMiningIdenticalOnReloadedTrace)
{
    skip::ProfileResult run = skip::profilePrefill(
        workload::xlmRobertaBase(), hw::platforms::intelH100(), 1);
    trace::Trace reloaded =
        trace::fromChromeText(trace::toChromeText(run.trace));

    fusion::FusionReport live = fusion::recommendFromTrace(run.trace);
    fusion::FusionReport disk = fusion::recommendFromTrace(reloaded);

    ASSERT_EQ(live.byLength.size(), disk.byLength.size());
    for (std::size_t i = 0; i < live.byLength.size(); ++i) {
        EXPECT_EQ(live.byLength[i].fusedChains,
                  disk.byLength[i].fusedChains);
        EXPECT_EQ(live.byLength[i].kFused, disk.byLength[i].kFused);
    }
}

TEST(Integration, SimulatedTraceAlwaysValidates)
{
    for (const auto &platform : hw::platforms::all()) {
        for (auto mode : {workload::ExecMode::Eager,
                          workload::ExecMode::FlashAttention2,
                          workload::ExecMode::CompileReduceOverhead}) {
            skip::ProfileResult run = skip::profilePrefill(
                workload::llama32_1b(), platform, 2, 128, mode);
            EXPECT_TRUE(run.trace.validate().empty())
                << platform.name << "/" << workload::execModeName(mode);
        }
    }
}

TEST(Integration, KernelLaunchCountMatchesGraphAndTrace)
{
    workload::BuildOptions opts;
    opts.batch = 4;
    workload::OperatorGraph graph =
        workload::buildPrefillGraph(workload::gpt2(), opts);

    skip::ProfileResult run = skip::profilePrefill(
        workload::gpt2(), hw::platforms::amdA100(), 4);
    EXPECT_EQ(run.metrics.numKernels, graph.numKernelLaunches());
    EXPECT_EQ(run.kernelLaunches, graph.numKernelLaunches());
    EXPECT_EQ(fusion::kernelSequenceFromTrace(run.trace),
              graph.kernelSequence());
}

TEST(Integration, MemcpyCostOnlyOnLcPlatforms)
{
    // Identical workloads; LC pays the H2D staging copy, CC does not.
    skip::ProfileResult lc = skip::profilePrefill(
        workload::bertBaseUncased(), hw::platforms::intelH100(), 64);
    skip::ProfileResult cc = skip::profilePrefill(
        workload::bertBaseUncased(), hw::platforms::gh200(), 64);
    EXPECT_EQ(lc.trace.countOf(trace::EventKind::Memcpy), 1u);
    EXPECT_EQ(cc.trace.countOf(trace::EventKind::Memcpy), 0u);
}

TEST(Integration, MetricsJsonSerializable)
{
    skip::ProfileResult run = skip::profilePrefill(
        workload::gpt2(), hw::platforms::gh200(), 1, 128);
    json::Value doc = run.metrics.toJson();
    std::string text = json::writePretty(doc);
    json::Value reparsed = json::parse(text);
    EXPECT_DOUBLE_EQ(reparsed.asObject().at("tklqt_ns").asDouble(),
                     run.metrics.tklqtNs);
}

TEST(Integration, DecodeStepProfilable)
{
    // Extension: decode-step graphs run through the same pipeline.
    workload::BuildOptions opts;
    opts.batch = 4;
    workload::OperatorGraph graph = workload::buildDecodeStepGraph(
        workload::llama32_1b(), opts, 1024);
    sim::Simulator simulator(hw::platforms::gh200());
    sim::SimResult result = simulator.run(graph);
    skip::MetricsReport metrics = skip::computeMetrics(
        skip::DependencyGraph::build(result.trace));
    EXPECT_GT(metrics.ilNs, 0.0);
    EXPECT_EQ(metrics.numKernels, graph.numKernelLaunches());
    // A single decode step is launch-dominated: deeply CPU-bound.
    EXPECT_GT(metrics.gpuIdleNs / metrics.ilNs, 0.5);
}

TEST(Integration, SweepDeterministicGivenSeed)
{
    sim::SimOptions opts;
    opts.seed = 7;
    analysis::SweepResult a = analysis::runBatchSweep(
        workload::gpt2(), hw::platforms::gh200(), {1, 4}, 512,
        workload::ExecMode::Eager, opts);
    analysis::SweepResult b = analysis::runBatchSweep(
        workload::gpt2(), hw::platforms::gh200(), {1, 4}, 512,
        workload::ExecMode::Eager, opts);
    EXPECT_DOUBLE_EQ(a.at(1).metrics.ilNs, b.at(1).metrics.ilNs);
    EXPECT_DOUBLE_EQ(a.at(4).metrics.tklqtNs,
                     b.at(4).metrics.tklqtNs);
}

TEST(Integration, TopKOnRealRunFindsHotKernels)
{
    skip::ProfileResult run = skip::profilePrefill(
        workload::bertBaseUncased(), hw::platforms::intelH100(), 8);
    auto top = run.metrics.topK(3, skip::TopKBy::Count);
    ASSERT_EQ(top.size(), 3u);
    // The q/k/v/out projection GEMM (4 per layer x 12 layers = 48) is
    // the most frequent kernel in BERT.
    EXPECT_EQ(top[0].count, 48u);
    EXPECT_NE(top[0].name.find("gemm_"), std::string::npos);
}

} // namespace
} // namespace skipsim
