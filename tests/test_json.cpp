/**
 * @file
 * Unit tests for the JSON substrate: value model, parser (including
 * error reporting) and writer (compact/pretty, round trips).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "json/parser.hh"
#include "json/value.hh"
#include "json/writer.hh"

namespace skipsim::json
{
namespace
{

// ------------------------------------------------------------------ value

TEST(JsonValue, DefaultIsNull)
{
    Value v;
    EXPECT_TRUE(v.isNull());
}

TEST(JsonValue, KindsAreDistinguished)
{
    EXPECT_TRUE(Value(true).isBool());
    EXPECT_TRUE(Value(1.5).isNumber());
    EXPECT_TRUE(Value("s").isString());
    EXPECT_TRUE(Value(Value::Array{}).isArray());
    EXPECT_TRUE(Value(Object{}).isObject());
}

TEST(JsonValue, IntegersPreserved)
{
    Value v(1234567890123LL);
    EXPECT_EQ(v.asInt(), 1234567890123LL);
}

TEST(JsonValue, AsIntRejectsFractions)
{
    EXPECT_THROW(Value(1.5).asInt(), FatalError);
}

TEST(JsonValue, KindMismatchThrows)
{
    EXPECT_THROW(Value(1.0).asString(), FatalError);
    EXPECT_THROW(Value("x").asDouble(), FatalError);
    EXPECT_THROW(Value(true).asArray(), FatalError);
    EXPECT_THROW(Value(nullptr).asObject(), FatalError);
}

TEST(JsonObject, SetAndGet)
{
    Object obj;
    obj.set("a", 1);
    obj.set("b", "two");
    EXPECT_TRUE(obj.has("a"));
    EXPECT_EQ(obj.at("b").asString(), "two");
    EXPECT_EQ(obj.size(), 2u);
}

TEST(JsonObject, OverwriteKeepsOrder)
{
    Object obj;
    obj.set("x", 1);
    obj.set("y", 2);
    obj.set("x", 3);
    EXPECT_EQ(obj.keys().size(), 2u);
    EXPECT_EQ(obj.keys()[0], "x");
    EXPECT_EQ(obj.at("x").asInt(), 3);
}

TEST(JsonObject, MissingKeyThrows)
{
    Object obj;
    EXPECT_THROW(obj.at("nope"), FatalError);
}

TEST(JsonObject, GetWithDefault)
{
    Object obj;
    Value def(42);
    EXPECT_EQ(obj.get("nope", def).asInt(), 42);
}

// ----------------------------------------------------------------- parser

TEST(JsonParser, ParsesScalars)
{
    EXPECT_TRUE(parse("null").isNull());
    EXPECT_TRUE(parse("true").asBool());
    EXPECT_FALSE(parse("false").asBool());
    EXPECT_DOUBLE_EQ(parse("3.25").asDouble(), 3.25);
    EXPECT_EQ(parse("\"hi\"").asString(), "hi");
}

TEST(JsonParser, ParsesNegativeAndExponent)
{
    EXPECT_DOUBLE_EQ(parse("-12").asDouble(), -12.0);
    EXPECT_DOUBLE_EQ(parse("2e3").asDouble(), 2000.0);
    EXPECT_DOUBLE_EQ(parse("1.5E-2").asDouble(), 0.015);
}

TEST(JsonParser, ParsesNestedStructures)
{
    Value v = parse(R"({"a": [1, 2, {"b": "c"}], "d": {}})");
    const Object &root = v.asObject();
    const auto &arr = root.at("a").asArray();
    ASSERT_EQ(arr.size(), 3u);
    EXPECT_EQ(arr[2].asObject().at("b").asString(), "c");
    EXPECT_EQ(root.at("d").asObject().size(), 0u);
}

TEST(JsonParser, ParsesEmptyContainers)
{
    EXPECT_EQ(parse("[]").asArray().size(), 0u);
    EXPECT_EQ(parse("{}").asObject().size(), 0u);
}

TEST(JsonParser, HandlesEscapes)
{
    EXPECT_EQ(parse(R"("a\nb\t\"q\"\\")").asString(), "a\nb\t\"q\"\\");
}

TEST(JsonParser, HandlesUnicodeEscapes)
{
    EXPECT_EQ(parse(R"("A")").asString(), "A");
    // U+00E9 (e-acute) encodes to two UTF-8 bytes.
    EXPECT_EQ(parse(R"("é")").asString(), "\xc3\xa9");
}

TEST(JsonParser, SkipsWhitespace)
{
    Value v = parse(" \n\t { \"k\" : 1 } \r\n");
    EXPECT_EQ(v.asObject().at("k").asInt(), 1);
}

TEST(JsonParser, TrailingGarbageThrows)
{
    EXPECT_THROW(parse("{} extra"), FatalError);
}

TEST(JsonParser, UnterminatedStringThrows)
{
    EXPECT_THROW(parse("\"abc"), FatalError);
}

TEST(JsonParser, MissingCommaThrows)
{
    EXPECT_THROW(parse("[1 2]"), FatalError);
}

TEST(JsonParser, MissingColonThrows)
{
    EXPECT_THROW(parse("{\"a\" 1}"), FatalError);
}

TEST(JsonParser, BadLiteralThrows)
{
    EXPECT_THROW(parse("tru"), FatalError);
    EXPECT_THROW(parse("nul"), FatalError);
}

TEST(JsonParser, BadNumberThrows)
{
    EXPECT_THROW(parse("1."), FatalError);
    EXPECT_THROW(parse("-"), FatalError);
    EXPECT_THROW(parse("1e"), FatalError);
}

TEST(JsonParser, ControlCharacterInStringThrows)
{
    std::string bad = "\"a\nb\"";
    EXPECT_THROW(parse(bad), FatalError);
}

TEST(JsonParser, ErrorMessageHasLineAndColumn)
{
    try {
        parse("{\n  \"a\": ?\n}");
        FAIL() << "expected parse failure";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("2:"), std::string::npos);
    }
}

TEST(JsonParser, MissingFileThrows)
{
    EXPECT_THROW(parseFile("/nonexistent/path.json"), FatalError);
}

// ----------------------------------------------------------------- writer

TEST(JsonWriter, CompactScalars)
{
    EXPECT_EQ(write(Value(nullptr)), "null");
    EXPECT_EQ(write(Value(true)), "true");
    EXPECT_EQ(write(Value(5)), "5");
    EXPECT_EQ(write(Value("x")), "\"x\"");
}

TEST(JsonWriter, IntegersWrittenWithoutDecimal)
{
    EXPECT_EQ(write(Value(1234567.0)), "1234567");
}

TEST(JsonWriter, FractionsKeepPrecision)
{
    Value v = parse(write(Value(0.1)));
    EXPECT_DOUBLE_EQ(v.asDouble(), 0.1);
}

TEST(JsonWriter, EscapesSpecialCharacters)
{
    EXPECT_EQ(write(Value("a\"b\\c\nd")), R"("a\"b\\c\nd")");
}

TEST(JsonWriter, NonFiniteBecomesNull)
{
    EXPECT_EQ(write(Value(std::numeric_limits<double>::infinity())),
              "null");
}

TEST(JsonWriter, ObjectOrderStable)
{
    Object obj;
    obj.set("z", 1);
    obj.set("a", 2);
    EXPECT_EQ(write(Value(std::move(obj))), R"({"z":1,"a":2})");
}

TEST(JsonWriter, PrettyIndents)
{
    Object obj;
    obj.set("k", Value(Value::Array{Value(1), Value(2)}));
    std::string pretty = writePretty(Value(std::move(obj)));
    EXPECT_NE(pretty.find("\n  \"k\""), std::string::npos);
}

TEST(JsonWriter, RoundTripComplexDocument)
{
    std::string text =
        R"({"events":[{"name":"k1","ts":12.5,"args":{"id":7}},)"
        R"({"name":"k2","ts":13,"args":{"id":8}}],"ok":true})";
    Value v = parse(text);
    Value v2 = parse(write(v));
    EXPECT_EQ(write(v), write(v2));
}

TEST(JsonWriter, FileRoundTrip)
{
    std::string path = testing::TempDir() + "/skipsim_json_test.json";
    Object obj;
    obj.set("answer", 42);
    writeFile(path, Value(std::move(obj)));
    Value v = parseFile(path);
    EXPECT_EQ(v.asObject().at("answer").asInt(), 42);
}

TEST(JsonWriter, WriteToBadPathThrows)
{
    Object obj;
    EXPECT_THROW(writeFile("/nonexistent/dir/file.json",
                           Value(std::move(obj))),
                 FatalError);
}

} // namespace
} // namespace skipsim::json
