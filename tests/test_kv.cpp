/**
 * @file
 * Tests for the two-tier KV store (src/kv): spec validation and serde,
 * admission/release accounting, per-policy victim selection, host-pool
 * overflow eviction, synchronous fetch stalls on host-resident prefix
 * hits, StaticWatermark async pre-paging, and crash dropAll semantics.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/resource.hh"
#include "hw/catalog.hh"
#include "json/parser.hh"
#include "json/writer.hh"
#include "kv/tier.hh"

namespace skipsim
{
namespace
{

/**
 * Platform whose link moves 1 byte/ns with no latency, so every
 * expected transfer duration in these tests is just the byte count.
 */
hw::Platform
unitLinkPlatform()
{
    hw::Platform p = hw::platforms::gh200();
    p.name = "unit-link";
    p.link.name = "unit";
    p.link.bwGBs = 1.0;
    p.link.latencyNs = 0.0;
    return p;
}

kv::TierSpec
tierSpec(kv::OffloadPolicy policy, double host_gib = 64.0,
         double watermark = 0.9)
{
    kv::TierSpec spec;
    spec.policy = policy;
    spec.hostCapacityGiB = host_gib;
    spec.watermarkFrac = watermark;
    return spec;
}

// ------------------------------------------------------------ policy names

TEST(KvPolicy, NamesRoundTripAndUnknownIsRejected)
{
    for (kv::OffloadPolicy policy :
         {kv::OffloadPolicy::Never, kv::OffloadPolicy::StaticWatermark,
          kv::OffloadPolicy::LruBySession,
          kv::OffloadPolicy::PrefixAware})
        EXPECT_EQ(kv::offloadPolicyByName(kv::offloadPolicyName(policy)),
                  policy);
    EXPECT_EQ(kv::offloadPolicyNames().size(), 4u);
    EXPECT_THROW(kv::offloadPolicyByName("mru"), FatalError);
}

// ------------------------------------------------------------------- spec

TEST(KvTierSpec, ValidatesRanges)
{
    kv::TierSpec spec = tierSpec(kv::OffloadPolicy::LruBySession);
    EXPECT_NO_THROW(spec.validate());
    EXPECT_TRUE(spec.enabled());
    EXPECT_FALSE(tierSpec(kv::OffloadPolicy::Never).enabled());

    kv::TierSpec negative_host = spec;
    negative_host.hostCapacityGiB = -1.0;
    EXPECT_THROW(negative_host.validate(), FatalError);

    kv::TierSpec zero_watermark = spec;
    zero_watermark.watermarkFrac = 0.0;
    EXPECT_THROW(zero_watermark.validate(), FatalError);

    kv::TierSpec high_watermark = spec;
    high_watermark.watermarkFrac = 1.5;
    EXPECT_THROW(high_watermark.validate(), FatalError);
}

TEST(KvTierSpec, JsonRoundTrips)
{
    kv::TierSpec spec =
        tierSpec(kv::OffloadPolicy::PrefixAware, 16.0, 0.75);
    kv::TierSpec back = kv::TierSpec::fromJson(spec.toJson());
    EXPECT_EQ(back.policy, spec.policy);
    EXPECT_DOUBLE_EQ(back.hostCapacityGiB, spec.hostCapacityGiB);
    EXPECT_DOUBLE_EQ(back.watermarkFrac, spec.watermarkFrac);
    EXPECT_EQ(json::write(back.toJson()), json::write(spec.toJson()));
}

// ------------------------------------------------------------------ store

TEST(KvStore, RejectsDisabledPolicyAndEmptyBudget)
{
    hw::Platform platform = unitLinkPlatform();
    core::FifoResource lane;
    EXPECT_THROW(kv::TieredStore(tierSpec(kv::OffloadPolicy::Never),
                                 platform, 1000.0, lane),
                 FatalError);
    EXPECT_THROW(
        kv::TieredStore(tierSpec(kv::OffloadPolicy::LruBySession),
                        platform, 0.0, lane),
        FatalError);
}

TEST(KvStore, HbmResidentPrefixHitIsFree)
{
    hw::Platform platform = unitLinkPlatform();
    core::FifoResource lane;
    kv::TieredStore store(tierSpec(kv::OffloadPolicy::LruBySession),
                          platform, 1000.0, lane);

    kv::TieredStore::AdmitResult first =
        store.admit(7, 400.0, 0.0, /*fetchPrefix=*/true);
    EXPECT_TRUE(first.admitted);
    EXPECT_EQ(first.prefixHit, kv::Residency::None);
    EXPECT_EQ(store.stats().misses, 1u);

    store.release(7, 400.0, 10.0, /*retain=*/true);
    EXPECT_EQ(store.lookup(7), kv::Residency::Hbm);

    kv::TieredStore::AdmitResult second =
        store.admit(7, 500.0, 20.0, /*fetchPrefix=*/true);
    EXPECT_TRUE(second.admitted);
    EXPECT_EQ(second.prefixHit, kv::Residency::Hbm);
    EXPECT_DOUBLE_EQ(second.stallNs, 0.0);
    EXPECT_EQ(store.stats().hitsHbm, 1u);
    // The retained entry was consumed by the new turn.
    EXPECT_EQ(store.lookup(7), kv::Residency::None);
}

TEST(KvStore, LruVictimPagesOutAndFetchStalls)
{
    hw::Platform platform = unitLinkPlatform();
    core::FifoResource lane;
    kv::TieredStore store(tierSpec(kv::OffloadPolicy::LruBySession),
                          platform, 1000.0, lane);

    // Retain two 300 B sessions; session 1 is least recently used.
    ASSERT_TRUE(store.admit(1, 300.0, 0.0, true).admitted);
    store.release(1, 300.0, 10.0, true);
    ASSERT_TRUE(store.admit(2, 300.0, 20.0, true).admitted);
    store.release(2, 300.0, 30.0, true);

    // 600 B retained + 500 B new demand > 1000 B: one page-out, of
    // the LRU entry, paid synchronously (300 B over a 1 B/ns link).
    kv::TieredStore::AdmitResult r = store.admit(3, 500.0, 40.0, true);
    EXPECT_TRUE(r.admitted);
    EXPECT_DOUBLE_EQ(r.stallNs, 300.0);
    EXPECT_EQ(store.lookup(1), kv::Residency::Host);
    EXPECT_EQ(store.lookup(2), kv::Residency::Hbm);
    EXPECT_EQ(store.stats().offloads, 1u);
    EXPECT_DOUBLE_EQ(store.stats().offloadedBytes, 300.0);

    // Session 1 returns: host-resident hit pays the fetch back, and
    // queues behind the offload still occupying the lane (until 340),
    // so the stall is (340 - 60) queueing + 300 transfer.
    store.release(3, 500.0, 50.0, false);
    kv::TieredStore::AdmitResult back =
        store.admit(1, 400.0, 60.0, true);
    EXPECT_TRUE(back.admitted);
    EXPECT_EQ(back.prefixHit, kv::Residency::Host);
    EXPECT_DOUBLE_EQ(back.stallNs, 580.0);
    EXPECT_EQ(store.stats().fetches, 1u);
    EXPECT_EQ(store.stats().hitsHost, 1u);
    EXPECT_DOUBLE_EQ(store.hostBytes(), 0.0);
}

TEST(KvStore, FullHostPoolEvictsInsteadOfOffloading)
{
    hw::Platform platform = unitLinkPlatform();
    core::FifoResource lane;
    // Zero host pool: every page-out must drop the entry.
    kv::TieredStore store(
        tierSpec(kv::OffloadPolicy::LruBySession, 0.0), platform,
        1000.0, lane);

    ASSERT_TRUE(store.admit(1, 600.0, 0.0, true).admitted);
    store.release(1, 600.0, 10.0, true);
    kv::TieredStore::AdmitResult r = store.admit(2, 600.0, 20.0, true);
    EXPECT_TRUE(r.admitted);
    EXPECT_DOUBLE_EQ(r.stallNs, 0.0); // a drop is not a transfer
    EXPECT_EQ(store.lookup(1), kv::Residency::None);
    EXPECT_EQ(store.stats().evictions, 1u);
    EXPECT_EQ(store.stats().offloads, 0u);
}

TEST(KvStore, AdmissionRefusedWhenPinnedDemandExceedsHbm)
{
    hw::Platform platform = unitLinkPlatform();
    core::FifoResource lane;
    kv::TieredStore store(tierSpec(kv::OffloadPolicy::LruBySession),
                          platform, 1000.0, lane);
    ASSERT_TRUE(store.admit(1, 800.0, 0.0, true).admitted);
    kv::TieredStore::AdmitResult r = store.admit(2, 300.0, 1.0, true);
    EXPECT_FALSE(r.admitted); // active bytes never page out
    EXPECT_DOUBLE_EQ(store.hbmBytes(), 800.0);
}

TEST(KvStore, StaticWatermarkPrePagesAsynchronously)
{
    hw::Platform platform = unitLinkPlatform();
    core::FifoResource lane;
    kv::TieredStore store(
        tierSpec(kv::OffloadPolicy::StaticWatermark, 64.0, 0.5),
        platform, 1000.0, lane);

    ASSERT_TRUE(store.admit(1, 300.0, 0.0, true).admitted);
    store.release(1, 300.0, 10.0, true);
    EXPECT_EQ(store.lookup(1), kv::Residency::Hbm); // 300 <= 500

    ASSERT_TRUE(store.admit(2, 300.0, 20.0, true).admitted);
    store.release(2, 300.0, 30.0, true);
    // 600 B retained > 500 B watermark: the oldest entry pre-pages
    // out asynchronously — link time accrues, no stall is charged.
    EXPECT_EQ(store.lookup(1), kv::Residency::Host);
    EXPECT_EQ(store.lookup(2), kv::Residency::Hbm);
    EXPECT_EQ(store.stats().offloads, 1u);
    EXPECT_DOUBLE_EQ(store.stats().stallNs, 0.0);
    EXPECT_DOUBLE_EQ(store.stats().linkBusyNs, 300.0);
}

TEST(KvStore, PrefixAwareProtectsProvenReuse)
{
    hw::Platform platform = unitLinkPlatform();
    core::FifoResource lane;
    kv::TieredStore store(tierSpec(kv::OffloadPolicy::PrefixAware),
                          platform, 1000.0, lane);

    // Session 1 is reused once (hits = 1), then retained again.
    ASSERT_TRUE(store.admit(1, 300.0, 0.0, true).admitted);
    store.release(1, 300.0, 10.0, true);
    ASSERT_TRUE(store.admit(1, 300.0, 20.0, true).admitted);
    store.release(1, 300.0, 30.0, true);

    // Session 2 is newer but has never been reused.
    ASSERT_TRUE(store.admit(2, 300.0, 40.0, true).admitted);
    store.release(2, 300.0, 50.0, true);

    // Pressure pages the zero-reuse entry first despite its recency.
    kv::TieredStore::AdmitResult r = store.admit(3, 500.0, 60.0, true);
    EXPECT_TRUE(r.admitted);
    EXPECT_EQ(store.lookup(2), kv::Residency::Host);
    EXPECT_EQ(store.lookup(1), kv::Residency::Hbm);
}

TEST(KvStore, DropAllClearsResidencyButKeepsPeaks)
{
    hw::Platform platform = unitLinkPlatform();
    core::FifoResource lane;
    kv::TieredStore store(tierSpec(kv::OffloadPolicy::LruBySession),
                          platform, 1000.0, lane);
    ASSERT_TRUE(store.admit(1, 700.0, 0.0, true).admitted);
    store.release(1, 700.0, 10.0, true);
    double peak = store.stats().peakHbmBytes;
    EXPECT_DOUBLE_EQ(peak, 700.0);

    store.dropAll();
    EXPECT_DOUBLE_EQ(store.hbmBytes(), 0.0);
    EXPECT_DOUBLE_EQ(store.hostBytes(), 0.0);
    EXPECT_EQ(store.lookup(1), kv::Residency::None);
    EXPECT_DOUBLE_EQ(store.stats().peakHbmBytes, peak);
}

} // namespace
} // namespace skipsim
