/**
 * @file
 * Tests for device-memory accounting (weights/KV/activations) and
 * Sarathi-style chunked prefill in the continuous-batching simulator.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "hw/catalog.hh"
#include "serving/continuous.hh"
#include "workload/memory.hh"
#include "workload/model_config.hh"

namespace skipsim
{
namespace
{

// ---------------------------------------------------------------- memory

TEST(Memory, WeightsMatchParamCount)
{
    workload::ModelConfig model = workload::llama32_1b();
    workload::MemoryFootprint fp =
        workload::estimateMemory(model, 1, 512);
    // FP16 weights: ~2 bytes per parameter.
    EXPECT_NEAR(fp.weightsBytes, model.paramsM() * 1e6 * 2.0, 1.0);
}

TEST(Memory, KvCacheGqaAware)
{
    // Llama-3.2-1B: 2 (K,V) x 16 layers x 8 kv heads x 64 dims x 2B
    // = 32 KiB per token.
    workload::MemoryFootprint fp =
        workload::estimateMemory(workload::llama32_1b(), 1, 1);
    EXPECT_NEAR(fp.kvCacheBytes, 32768.0, 1.0);

    // Full-head GPT2 caches heads/kvHeads = 1x; Llama's GQA shrinks it
    // by heads/kvHeads = 4x relative to a full-head variant.
    workload::ModelConfig full = workload::llama32_1b();
    full.kvHeads = full.heads;
    workload::MemoryFootprint fp_full =
        workload::estimateMemory(full, 1, 1);
    EXPECT_NEAR(fp_full.kvCacheBytes / fp.kvCacheBytes, 4.0, 1e-9);
}

TEST(Memory, ScalesWithBatchAndSeq)
{
    workload::ModelConfig model = workload::gpt2();
    auto kv = [&](int batch, int seq) {
        return workload::estimateMemory(model, batch, seq).kvCacheBytes;
    };
    EXPECT_NEAR(kv(8, 512) / kv(1, 512), 8.0, 1e-9);
    EXPECT_NEAR(kv(1, 1024) / kv(1, 512), 2.0, 1e-9);
    EXPECT_THROW(workload::estimateMemory(model, 0, 1), FatalError);
    EXPECT_THROW(workload::estimateMemory(model, 1, 0), FatalError);
}

TEST(Memory, LlamaFitsTensOfSequencesOnH100)
{
    double hbm = hw::platforms::intelH100().gpu.hbmBytes();
    int n = workload::maxResidentSequences(workload::llama32_1b(), 512,
                                           hbm);
    // 2.5 GB weights, ~33 MB KV per 512-token sequence plus
    // activations: hundreds fit on 80 GiB.
    EXPECT_GT(n, 100);
    EXPECT_LT(n, 20000);
}

TEST(Memory, ZeroWhenWeightsDoNotFit)
{
    EXPECT_EQ(workload::maxResidentSequences(workload::llama2_7b(), 512,
                                             1e9),
              0);
    EXPECT_EQ(workload::maxResidentSequences(workload::gpt2(), 512,
                                             0.0),
              0);
    EXPECT_THROW(workload::maxResidentSequences(workload::gpt2(), 0,
                                                1e9),
                 FatalError);
}

TEST(Memory, LongContextShrinksResidency)
{
    double hbm = hw::platforms::gh200().gpu.hbmBytes();
    int short_ctx = workload::maxResidentSequences(
        workload::llama32_1b(), 512, hbm);
    int long_ctx = workload::maxResidentSequences(
        workload::llama32_1b(), 8192, hbm);
    EXPECT_GT(short_ctx, 4 * long_ctx);
}

// --------------------------------------------------------- chunked prefill

serving::IterationCostModel &
costModel()
{
    static serving::IterationCostModel model(
        workload::gpt2(), hw::platforms::gh200(), 512);
    return model;
}

TEST(ChunkedPrefill, ChunkCostBelowFullPrefill)
{
    EXPECT_LT(costModel().chunkNs(128), costModel().prefillNs(1));
    EXPECT_THROW(costModel().chunkNs(0), FatalError);
}

TEST(ChunkedPrefill, RunsAndConserves)
{
    serving::ContinuousConfig config;
    config.arrivalRatePerSec = 20.0;
    config.horizonSec = 10.0;
    config.maxActive = 16;
    config.promptLen = 512;
    config.genTokens = 8;
    config.chunkTokens = 128;
    serving::ContinuousResult result =
        serving::simulateContinuous(costModel(), config);
    EXPECT_GT(result.completed, 50u);
    EXPECT_GT(result.tokensPerSec, 0.0);
    EXPECT_LE(result.p50TtftNs, result.p99TtftNs);
}

TEST(ChunkedPrefill, BoundsWorstIterationUnderLoad)
{
    // Unchunked: a full 32-wide prefill iteration stalls every active
    // decode; chunked iterations stay near decode + one chunk.
    serving::ContinuousConfig config;
    config.arrivalRatePerSec = 60.0;
    config.horizonSec = 10.0;
    config.maxActive = 32;
    config.promptLen = 512;
    config.genTokens = 16;

    config.chunkTokens = 0;
    serving::ContinuousResult whole =
        serving::simulateContinuous(costModel(), config);
    config.chunkTokens = 128;
    serving::ContinuousResult chunked =
        serving::simulateContinuous(costModel(), config);

    // Both serve the load; the chunked scheduler's mean iteration
    // (token) latency is tighter than whole-prompt stalls allow.
    EXPECT_GT(whole.completed, 0u);
    EXPECT_GT(chunked.completed, 0u);
    EXPECT_LT(chunked.meanTpotNs,
              whole.meanTpotNs + costModel().prefillNs(8));
}

TEST(ChunkedPrefill, DeterministicGivenSeed)
{
    serving::ContinuousConfig config;
    config.arrivalRatePerSec = 30.0;
    config.horizonSec = 5.0;
    config.chunkTokens = 256;
    serving::ContinuousResult a =
        serving::simulateContinuous(costModel(), config);
    serving::ContinuousResult b =
        serving::simulateContinuous(costModel(), config);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_DOUBLE_EQ(a.p99TtftNs, b.p99TtftNs);
}

} // namespace
} // namespace skipsim
