/**
 * @file
 * Observability tests: metrics registry (keys, instruments, JSON
 * shape, lock-free updates under exec::Pool), the simulated-time probe
 * collector and its determinism contract (byte-identical obs JSON at
 * any worker count), trace probes, serving/continuous/cluster probe
 * wiring, and harness self-tracing.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "analysis/sweep.hh"
#include "cluster/cluster.hh"
#include "common/cli.hh"
#include "common/logging.hh"
#include "exec/pool.hh"
#include "hw/catalog.hh"
#include "json/writer.hh"
#include "obs/collector.hh"
#include "obs/harness.hh"
#include "obs/metrics.hh"
#include "obs/openmetrics.hh"
#include "obs/trace_probe.hh"
#include "serving/continuous.hh"
#include "serving/latency_model.hh"
#include "serving/server_sim.hh"
#include "trace/chrome.hh"
#include "workload/model_config.hh"

using namespace skipsim;

namespace
{

/** A synthetic sweep with latency(batch) = base + slope * batch. */
analysis::SweepResult
linearSweep(double base_ns, double slope_ns)
{
    analysis::SweepResult sweep;
    sweep.modelName = "synthetic";
    sweep.platformName = "test";
    for (int batch : {1, 2, 4, 8, 16, 32}) {
        analysis::SweepPoint point;
        point.batch = batch;
        point.metrics.ilNs = base_ns + slope_ns * batch;
        sweep.points.push_back(point);
    }
    return sweep;
}

/** A small, fast-to-simulate cluster scenario. */
cluster::ClusterSpec
smallClusterSpec(int replicas = 2)
{
    cluster::ClusterSpec spec;
    spec.model = workload::modelByName("GPT2");
    cluster::ReplicaSpec replica;
    replica.platform = hw::platforms::byName("GH200");
    replica.maxActive = 16;
    spec.replicas.assign(static_cast<std::size_t>(replicas), replica);
    spec.arrivalRatePerSec = 60.0;
    spec.horizonSec = 3.0;
    spec.promptLen = 128;
    spec.genTokens = 8;
    spec.sessions = 16;
    return spec;
}

/** The series named @p key exported by @p collector, or nullptr. */
const obs::Series *
findSeries(const obs::Collector &collector, const std::string &key)
{
    for (const obs::Series *series : collector.series()) {
        if (obs::metricKey(series->name, series->labels) == key)
            return series;
    }
    return nullptr;
}

// ------------------------------------------------------------- metricKey

TEST(MetricKey, PlainNameAndSortedLabels)
{
    EXPECT_EQ(obs::metricKey("serving.queue_depth", {}),
              "serving.queue_depth");
    EXPECT_EQ(obs::metricKey("cluster.kv_bytes",
                             {{"replica", "1"}, {"policy", "rr"}}),
              "cluster.kv_bytes{policy=\"rr\",replica=\"1\"}");
}

TEST(MetricKey, RejectsEmptyNames)
{
    EXPECT_THROW(obs::metricKey("", {}), FatalError);
    EXPECT_THROW(obs::metricKey("x", {{"", "v"}}), FatalError);
}

// -------------------------------------------------------------- registry

TEST(Registry, CountersGaugesHistograms)
{
    obs::Registry registry;
    registry.counter("requests").add();
    registry.counter("requests").add(2.0);
    EXPECT_DOUBLE_EQ(registry.counter("requests").value(), 3.0);

    registry.gauge("depth").set(7.0);
    EXPECT_DOUBLE_EQ(registry.gauge("depth").value(), 7.0);

    obs::Histogram &hist =
        registry.histogram("lat_ms", {1.0, 10.0, 100.0});
    hist.observe(0.5);
    hist.observe(5.0);
    hist.observe(1e9); // overflow bucket
    EXPECT_EQ(hist.count(), 3u);
    std::vector<std::uint64_t> buckets = hist.bucketCounts();
    ASSERT_EQ(buckets.size(), 4u);
    EXPECT_EQ(buckets[0], 1u);
    EXPECT_EQ(buckets[1], 1u);
    EXPECT_EQ(buckets[2], 0u);
    EXPECT_EQ(buckets[3], 1u);
    EXPECT_EQ(registry.size(), 3u);
}

TEST(Registry, LabeledInstrumentsAreDistinct)
{
    obs::Registry registry;
    registry.counter("routed", {{"replica", "0"}}).add();
    registry.counter("routed", {{"replica", "1"}}).add(5.0);
    EXPECT_DOUBLE_EQ(
        registry.counter("routed", {{"replica", "0"}}).value(), 1.0);
    EXPECT_DOUBLE_EQ(
        registry.counter("routed", {{"replica", "1"}}).value(), 5.0);
}

TEST(Registry, TypeAndBoundsMismatchesThrow)
{
    obs::Registry registry;
    registry.counter("x").add();
    EXPECT_THROW(registry.gauge("x"), FatalError);
    registry.histogram("h", {1.0, 2.0});
    EXPECT_THROW(registry.histogram("h", {1.0, 3.0}), FatalError);
    EXPECT_THROW(obs::Histogram({2.0, 1.0}), FatalError);
}

TEST(Registry, JsonDumpIsKeySorted)
{
    obs::Registry registry;
    registry.counter("b").add(2.0);
    registry.counter("a").add(1.0);
    registry.gauge("g").set(4.0);
    registry.histogram("h", {10.0}).observe(3.0);
    json::Value doc = registry.toJson();
    const auto &counters = doc.asObject().at("counters").asObject();
    EXPECT_DOUBLE_EQ(counters.at("a").asDouble(), 1.0);
    EXPECT_DOUBLE_EQ(counters.at("b").asDouble(), 2.0);
    const auto &hist = doc.asObject().at("histograms").asObject()
        .at("h").asObject();
    EXPECT_EQ(hist.at("count").asInt(), 1);
    EXPECT_DOUBLE_EQ(hist.at("sum").asDouble(), 3.0);
    const auto &buckets = hist.at("buckets").asArray();
    ASSERT_EQ(buckets.size(), 2u);
    EXPECT_EQ(buckets[1].asObject().at("le").asString(), "+inf");
}

TEST(Registry, ConcurrentUpdatesFromPoolWorkers)
{
    obs::Registry registry;
    // Pre-create so workers only take the lock-free update path.
    obs::Counter &hits = registry.counter("hits");
    obs::Histogram &hist =
        registry.histogram("obs_ms", obs::defaultLatencyBucketsMs());

    constexpr std::size_t kTasks = 64;
    constexpr int kPerTask = 250;
    exec::Pool pool(8);
    pool.run(kTasks, [&](std::size_t i) {
        for (int k = 0; k < kPerTask; ++k) {
            hits.add();
            hist.observe(static_cast<double>(i % 7));
            registry.counter("lane",
                             {{"lane", std::to_string(i % 3)}})
                .add();
        }
    });

    EXPECT_DOUBLE_EQ(hits.value(),
                     static_cast<double>(kTasks * kPerTask));
    EXPECT_EQ(hist.count(),
              static_cast<std::uint64_t>(kTasks * kPerTask));
    double lanes = 0.0;
    for (int lane = 0; lane < 3; ++lane)
        lanes += registry
                     .counter("lane", {{"lane", std::to_string(lane)}})
                     .value();
    EXPECT_DOUBLE_EQ(lanes, static_cast<double>(kTasks * kPerTask));
}

// ---------------------------------------------------------------- ticker

TEST(Ticker, VisitsEveryBoundaryOnce)
{
    obs::Ticker tick(100);
    std::vector<std::int64_t> seen;
    tick.advanceTo(250.0, [&](std::int64_t t) { seen.push_back(t); });
    tick.advanceTo(250.0, [&](std::int64_t t) { seen.push_back(t); });
    tick.advanceTo(400.0, [&](std::int64_t t) { seen.push_back(t); });
    EXPECT_EQ(seen, (std::vector<std::int64_t>{100, 200, 300, 400}));
    EXPECT_EQ(tick.nextNs(), 500);
}

TEST(Ticker, DisabledTickerNeverFires)
{
    obs::Ticker tick(0);
    EXPECT_FALSE(tick.enabled());
    tick.advanceTo(1e12, [](std::int64_t) { FAIL(); });
}

// ------------------------------------------------------------- collector

TEST(Collector, RejectsNonPositiveIntervals)
{
    EXPECT_THROW(obs::Collector(0.0), FatalError);
    EXPECT_THROW(obs::Collector(-1.0), FatalError);
}

TEST(Collector, SeriesSortAndJsonShape)
{
    obs::Collector collector(1.0); // 1 ms -> 1e6 ns
    collector.sample("b.metric", {}, 1000000, 2.0);
    collector.sample("a.metric", {{"replica", "0"}}, 1000000, 1.0);
    collector.sample("a.metric", {{"replica", "0"}}, 2000000, 3.0);
    EXPECT_EQ(collector.sampleCount(), 3u);

    std::vector<const obs::Series *> series = collector.series();
    ASSERT_EQ(series.size(), 2u);
    EXPECT_EQ(series[0]->name, "a.metric"); // key-sorted
    ASSERT_EQ(series[0]->points.size(), 2u);
    EXPECT_EQ(series[0]->points[1].tNs, 2000000);
    EXPECT_DOUBLE_EQ(series[0]->points[1].value, 3.0);

    json::Value doc = collector.toJson();
    EXPECT_DOUBLE_EQ(doc.asObject().at("interval_ms").asDouble(), 1.0);
    const auto &arr = doc.asObject().at("series").asArray();
    ASSERT_EQ(arr.size(), 2u);
    EXPECT_EQ(arr[0].asObject().at("name").asString(), "a.metric");
}

TEST(Collector, TraceExportCarriesAllThreePhases)
{
    obs::Collector collector(1.0);
    collector.span("iteration", 0, 100, 50);
    collector.sample("depth", {{"replica", "1"}}, 1000000, 4.0);
    collector.instant("fault.crash", 1, 500);
    trace::Trace exported = collector.toTrace();
    EXPECT_EQ(exported.events().size(), 1u);
    ASSERT_EQ(exported.counters().size(), 1u);
    // Labels fold into the counter name so each series gets its own
    // Perfetto counter track.
    EXPECT_EQ(exported.counters()[0].name, "depth{replica=\"1\"}");
    EXPECT_EQ(exported.instants().size(), 1u);

    // And the export survives our own chrome round trip.
    trace::Trace parsed =
        trace::fromChromeText(trace::toChromeText(exported));
    EXPECT_EQ(parsed.events().size(), 1u);
    EXPECT_EQ(parsed.counters().size(), 1u);
    EXPECT_EQ(parsed.instants().size(), 1u);
}

// ----------------------------------------------------------- trace probe

TEST(TraceProbe, QueueDepthAndBusyFractions)
{
    // One op covering [0, 1ms); launch at [0, 10us) whose kernel runs
    // [500us, 900us): the launch queue holds 1 from 10us to 500us.
    trace::Trace synthetic;
    trace::TraceEvent op;
    op.kind = trace::EventKind::Operator;
    op.name = "aten::linear";
    op.tsBeginNs = 0;
    op.durNs = 1000000;
    synthetic.add(op);
    trace::TraceEvent launch;
    launch.kind = trace::EventKind::Runtime;
    launch.name = "cudaLaunchKernel";
    launch.tsBeginNs = 0;
    launch.durNs = 10000;
    launch.correlationId = 1;
    synthetic.add(launch);
    trace::TraceEvent kernel;
    kernel.kind = trace::EventKind::Kernel;
    kernel.name = "gemm";
    kernel.tsBeginNs = 500000;
    kernel.durNs = 400000;
    kernel.streamId = 7;
    kernel.correlationId = 1;
    synthetic.add(kernel);
    synthetic.sortByTime();

    obs::Collector collector(0.1); // 100 us boundaries
    obs::probeTrace(synthetic, collector);

    EXPECT_DOUBLE_EQ(
        collector.metrics().counter("trace.kernels").value(), 1.0);
    EXPECT_DOUBLE_EQ(
        collector.metrics().counter("trace.launches").value(), 1.0);
    EXPECT_DOUBLE_EQ(collector.metrics().counter("trace.ops").value(),
                     1.0);

    const obs::Series *queue =
        findSeries(collector, "trace.launch_queue_depth");
    ASSERT_NE(queue, nullptr);
    ASSERT_GE(queue->points.size(), 9u);
    // 100us..400us: launched but not yet running.
    EXPECT_DOUBLE_EQ(queue->points[0].value, 1.0);
    EXPECT_DOUBLE_EQ(queue->points[3].value, 1.0);
    // 500us onward the kernel is executing.
    EXPECT_DOUBLE_EQ(queue->points[4].value, 0.0);

    const obs::Series *gpu = findSeries(collector, "trace.gpu_busy");
    ASSERT_NE(gpu, nullptr);
    // Window (500us, 600us] is fully inside the kernel.
    EXPECT_DOUBLE_EQ(gpu->points[5].value, 1.0);
    EXPECT_DOUBLE_EQ(gpu->points[0].value, 0.0);
    const obs::Series *cpu = findSeries(collector, "trace.cpu_busy");
    ASSERT_NE(cpu, nullptr);
    EXPECT_DOUBLE_EQ(cpu->points[0].value, 1.0);
}

// -------------------------------------------------------- serving probes

TEST(ServingObs, RecordsQueueBatchAndThroughputSeries)
{
    serving::LatencyModel latency(linearSweep(2e6, 1e5));
    serving::ServingConfig config;
    config.arrivalRatePerSec = 200.0;
    config.horizonSec = 2.0;
    config.maxBatch = 8;
    obs::Collector collector(50.0);

    serving::ServingResult with_obs =
        serving::simulateServing(latency, config, &collector);
    serving::ServingResult without =
        serving::simulateServing(latency, config);

    // Probes never perturb the simulation.
    EXPECT_EQ(with_obs.completed, without.completed);
    EXPECT_DOUBLE_EQ(with_obs.p99LatencyNs, without.p99LatencyNs);

    for (const char *name :
         {"serving.queue_depth", "serving.batch_inflight",
          "serving.throughput_rps", "serving.ttft_ms"}) {
        const obs::Series *series = findSeries(collector, name);
        ASSERT_NE(series, nullptr) << name;
        EXPECT_EQ(series->points.size(), 40u) << name; // 2s / 50ms
    }

    obs::Registry &metrics = collector.metrics();
    EXPECT_DOUBLE_EQ(
        metrics.counter("serving.requests_completed").value(),
        static_cast<double>(with_obs.completed));
    EXPECT_GT(metrics.counter("serving.batches").value(), 0.0);

    // Dispatched batches appear as duration spans.
    trace::Trace exported = collector.toTrace();
    EXPECT_GT(exported.events().size(), 0u);
    EXPECT_GT(exported.counters().size(), 0u);
}

TEST(ContinuousObs, RecordsIterationSpansAndTokenSeries)
{
    serving::IterationCostModel cost(workload::modelByName("GPT2"),
                                     hw::platforms::byName("GH200"),
                                     64);
    serving::ContinuousConfig config;
    config.arrivalRatePerSec = 100.0;
    config.horizonSec = 1.0;
    config.maxActive = 8;
    config.promptLen = 64;
    config.genTokens = 4;
    obs::Collector collector(50.0);

    serving::ContinuousResult with_obs =
        serving::simulateContinuous(cost, config, &collector);
    serving::ContinuousResult without =
        serving::simulateContinuous(cost, config);
    EXPECT_EQ(with_obs.completed, without.completed);
    EXPECT_DOUBLE_EQ(with_obs.tokensPerSec, without.tokensPerSec);

    for (const char *name :
         {"continuous.queue_depth", "continuous.batch_active",
          "continuous.tokens_per_sec", "continuous.ttft_ms"}) {
        ASSERT_NE(findSeries(collector, name), nullptr) << name;
    }
    EXPECT_GT(
        collector.metrics().counter("continuous.tokens").value(), 0.0);
    EXPECT_GT(
        collector.metrics().counter("continuous.iterations").value(),
        0.0);
    EXPECT_GT(collector.toTrace().events().size(), 0u);
}

// --------------------------------------------------------- cluster probes

TEST(ClusterObs, SeriesCoverReplicasAndFaultMarkersAppear)
{
    cluster::ClusterSpec spec = smallClusterSpec(2);
    cluster::FaultSpec crash;
    crash.atSec = 1.0;
    crash.replica = 0;
    crash.kind = cluster::FaultKind::Crash;
    spec.faults.push_back(crash);

    obs::Collector collector(100.0);
    cluster::ClusterResult result =
        cluster::simulateCluster(spec, &collector);

    for (const char *name :
         {"cluster.queue_depth{replica=\"0\"}",
          "cluster.queue_depth{replica=\"1\"}",
          "cluster.batch_active{replica=\"0\"}",
          "cluster.kv_bytes{replica=\"1\"}",
          "cluster.outstanding{replica=\"0\"}",
          "cluster.throughput_rps", "cluster.ttft_ms",
          "cluster.rerouted_total"}) {
        const obs::Series *series = findSeries(collector, name);
        ASSERT_NE(series, nullptr) << name;
        EXPECT_EQ(series->points.size(), 30u) << name; // 3s / 100ms
    }

    // KV bytes were actually reserved at some boundary.
    const obs::Series *kv =
        findSeries(collector, "cluster.kv_bytes{replica=\"1\"}");
    double peak = 0.0;
    for (const obs::SeriesPoint &point : kv->points)
        peak = std::max(peak, point.value);
    EXPECT_GT(peak, 0.0);

    // The crash leaves its markers and the registry its totals.
    trace::Trace exported = collector.toTrace();
    bool saw_fault = false;
    bool saw_detect = false;
    for (const trace::InstantEvent &marker : exported.instants()) {
        saw_fault |= marker.name == "fault.crash";
        saw_detect |= marker.name == "fault.detected";
    }
    EXPECT_TRUE(saw_fault);
    EXPECT_TRUE(saw_detect);
    EXPECT_GT(exported.events().size(), 0u); // iteration spans
    EXPECT_DOUBLE_EQ(
        collector.metrics()
            .counter("cluster.requests_offered")
            .value(),
        static_cast<double>(result.offered));
    EXPECT_DOUBLE_EQ(
        collector.metrics().counter("cluster.rerouted").value(),
        static_cast<double>(result.rerouted));
}

TEST(ClusterObs, ResultUnchangedByProbes)
{
    cluster::ClusterSpec spec = smallClusterSpec(2);
    obs::Collector collector(100.0);
    cluster::ClusterResult with_obs =
        cluster::simulateCluster(spec, &collector);
    cluster::ClusterResult without = cluster::simulateCluster(spec);
    EXPECT_EQ(json::write(with_obs.toJson()),
              json::write(without.toJson()));
}

TEST(ClusterObs, ObsJsonByteIdenticalAcrossWorkerCounts)
{
    // The acceptance-criteria check: the same rate-sweep spec fanned
    // across 1 and 8 workers must export byte-identical obs JSON.
    cluster::ClusterSpec spec = smallClusterSpec(2);
    spec.rates = {40.0, 60.0, 80.0};
    cluster::FaultSpec crash;
    crash.atSec = 1.5;
    crash.replica = 1;
    crash.kind = cluster::FaultKind::Crash;
    spec.faults.push_back(crash);

    cluster::CostCache costs;
    costs.build(spec);

    auto run_with_jobs = [&](int jobs) {
        std::size_t n = spec.scenarioCount();
        std::vector<std::unique_ptr<obs::Collector>> collectors(n);
        for (std::size_t i = 0; i < n; ++i)
            collectors[i] = std::make_unique<obs::Collector>(100.0);
        exec::Pool pool(jobs);
        pool.run(n, [&](std::size_t i) {
            cluster::simulateCluster(spec.scenarioAt(i), costs,
                                     collectors[i].get());
        });
        std::string out;
        for (const auto &collector : collectors)
            out += json::write(collector->toJson()) + "\n";
        return out;
    };

    std::string serial = run_with_jobs(1);
    std::string parallel = run_with_jobs(8);
    EXPECT_EQ(serial, parallel);
    EXPECT_NE(serial.find("cluster.queue_depth"), std::string::npos);
    EXPECT_NE(serial.find("cluster.kv_bytes"), std::string::npos);
    EXPECT_NE(serial.find("cluster.batch_active"), std::string::npos);
}

TEST(ClusterObs, WindowedRatesCoverTheHorizonBoundaryExactly)
{
    // The horizon (3 s) is an exact multiple of the interval (500 ms):
    // the last sampled window must end exactly at the horizon — no
    // boundary past it (iterations draining past the horizon are not
    // sampled), no boundary skipped, no duplicate at the edge.
    cluster::ClusterSpec spec = smallClusterSpec(2);
    obs::Collector collector(500.0);
    cluster::ClusterResult result =
        cluster::simulateCluster(spec, &collector);

    const obs::Series *tput =
        findSeries(collector, "cluster.throughput_rps");
    ASSERT_NE(tput, nullptr);
    const std::int64_t interval_ns = collector.intervalNs();
    ASSERT_EQ(tput->points.size(), 6u); // 3s / 500ms
    for (std::size_t i = 0; i < tput->points.size(); ++i)
        EXPECT_EQ(tput->points[i].tNs,
                  static_cast<std::int64_t>(i + 1) * interval_ns);
    EXPECT_EQ(tput->points.back().tNs,
              static_cast<std::int64_t>(spec.horizonSec * 1e9));

    // Each point is a per-window rate: value * window length is the
    // window's completion count, and the windows tile [0, horizon],
    // so the sum counts completions up to the horizon — never more
    // than the run completed in total (drain completions past the
    // horizon fall outside every window).
    double window_sec = static_cast<double>(interval_ns) / 1e9;
    double windowed = 0.0;
    for (const obs::SeriesPoint &point : tput->points) {
        EXPECT_GE(point.value, 0.0);
        windowed += point.value * window_sec;
    }
    EXPECT_GT(windowed, 0.0);
    EXPECT_LE(windowed,
              static_cast<double>(result.completed) + 1e-9);
}

TEST(Registry, HistogramBucketEdgeValues)
{
    // A value exactly on a bucket's upper bound belongs to that
    // bucket (Prometheus "le" semantics); past the last bound it
    // overflows into +inf.
    obs::Histogram hist({1.0, 2.0, 4.0});
    hist.observe(1.0);           // == first bound -> bucket 0
    hist.observe(2.0);           // == second bound -> bucket 1
    hist.observe(4.0);           // == last bound -> bucket 2
    hist.observe(4.0000000001);  // just past -> +inf
    hist.observe(0.5);           // below first bound -> bucket 0

    std::vector<std::uint64_t> counts = hist.bucketCounts();
    ASSERT_EQ(counts.size(), 4u);
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 1u);
    EXPECT_EQ(counts[2], 1u);
    EXPECT_EQ(counts[3], 1u); // +inf overflow
    EXPECT_EQ(hist.count(), 5u);
}

// ----------------------------------------------------------- openmetrics

TEST(OpenMetrics, ExpositionShapeAndRoundTrip)
{
    obs::Registry registry;
    registry.counter("cluster.requests_offered").add(25.0);
    registry.counter("cluster.replica_routed", {{"replica", "1"}})
        .add(13.0);
    registry.gauge("cluster.peak_kv_bytes", {{"replica", "0"}})
        .set(84934656.0);
    obs::Histogram &hist =
        registry.histogram("cluster.ttft_ms", {1.0, 10.0});
    hist.observe(0.5);
    hist.observe(5.0);
    hist.observe(50.0);

    std::string text = obs::toOpenMetrics(registry);

    // Names sanitize to [a-zA-Z0-9_:], counters carry _total, the
    // histogram expands to cumulative buckets + sum + count, and the
    // exposition terminates with # EOF.
    EXPECT_NE(text.find("# TYPE cluster_requests_offered counter"),
              std::string::npos);
    EXPECT_NE(text.find("cluster_requests_offered_total 25"),
              std::string::npos);
    EXPECT_NE(
        text.find("cluster_replica_routed_total{replica=\"1\"} 13"),
        std::string::npos);
    EXPECT_NE(text.find("# TYPE cluster_ttft_ms histogram"),
              std::string::npos);
    EXPECT_NE(text.find("cluster_ttft_ms_bucket{le=\"1\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("cluster_ttft_ms_bucket{le=\"10\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("cluster_ttft_ms_bucket{le=\"+Inf\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("cluster_ttft_ms_count 3"),
              std::string::npos);
    EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);

    // Round trip: every sample line re-parses to the value written.
    std::vector<obs::OpenMetricsSample> samples =
        obs::parseOpenMetrics(text);
    auto value_of = [&samples](const std::string &name,
                               const obs::Labels &labels) {
        for (const obs::OpenMetricsSample &s : samples) {
            if (s.name == name && s.labels == labels)
                return s.value;
        }
        return -1.0;
    };
    EXPECT_DOUBLE_EQ(value_of("cluster_requests_offered_total", {}),
                     25.0);
    EXPECT_DOUBLE_EQ(value_of("cluster_replica_routed_total",
                              {{"replica", "1"}}),
                     13.0);
    EXPECT_DOUBLE_EQ(value_of("cluster_peak_kv_bytes",
                              {{"replica", "0"}}),
                     84934656.0);
    EXPECT_DOUBLE_EQ(value_of("cluster_ttft_ms_bucket",
                              {{"le", "+Inf"}}),
                     3.0);
    EXPECT_DOUBLE_EQ(value_of("cluster_ttft_ms_sum", {}), 55.5);

    // Determinism: a registry populated in a different order exposes
    // byte-identical text (instruments render key-sorted).
    obs::Registry reordered;
    obs::Histogram &hist2 =
        reordered.histogram("cluster.ttft_ms", {1.0, 10.0});
    hist2.observe(50.0);
    hist2.observe(5.0);
    hist2.observe(0.5);
    reordered.gauge("cluster.peak_kv_bytes", {{"replica", "0"}})
        .set(84934656.0);
    reordered.counter("cluster.replica_routed", {{"replica", "1"}})
        .add(13.0);
    reordered.counter("cluster.requests_offered").add(25.0);
    EXPECT_EQ(text, obs::toOpenMetrics(reordered));
}

// --------------------------------------------------------------- cli flags

TEST(RunFlags, RejectsNonPositiveObsInterval)
{
    auto parse = [](std::vector<const char *> argv) {
        argv.insert(argv.begin(), "test");
        CliArgs args(static_cast<int>(argv.size()), argv.data());
        return parseRunFlags(args);
    };
    // Regression: 0 and negative intervals used to construct a
    // Collector that fataled later (or div-by-zero'd a window rate);
    // now the flag itself is rejected up front, naming the flag.
    try {
        parse({"--obs-interval-ms", "0"});
        FAIL() << "interval 0 accepted";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("--obs-interval-ms"),
                  std::string::npos);
    }
    EXPECT_THROW(parse({"--obs-interval-ms=-5"}), FatalError);
    EXPECT_DOUBLE_EQ(parse({"--obs-interval-ms", "2.5"}).obsIntervalMs,
                     2.5);
    EXPECT_DOUBLE_EQ(parse({}).obsIntervalMs, 100.0);
}

TEST(RunFlags, ObsFormatValidated)
{
    auto parse = [](std::vector<const char *> argv) {
        argv.insert(argv.begin(), "test");
        CliArgs args(static_cast<int>(argv.size()), argv.data());
        return parseRunFlags(args);
    };
    EXPECT_EQ(parse({}).obsFormat, "json");
    EXPECT_EQ(parse({"--obs-format", "openmetrics"}).obsFormat,
              "openmetrics");
    EXPECT_THROW(parse({"--obs-format", "xml"}), FatalError);
}

// -------------------------------------------------------- harness tracer

TEST(HarnessTracer, RecordsSpansAndDerivesInflightCounter)
{
    obs::HarnessTracer tracer;
    {
        auto span = tracer.scope("point 0");
    }
    {
        auto span = tracer.scope("point 1");
        tracer.instant("checkpoint");
    }
    EXPECT_EQ(tracer.spanCount(), 2u);

    trace::Trace built = tracer.build();
    ASSERT_EQ(built.events().size(), 2u);
    EXPECT_TRUE(built.validate().empty());
    EXPECT_EQ(built.instants().size(), 1u);
    // Span edges derive the harness.inflight counter.
    ASSERT_GE(built.counters().size(), 2u);
    for (const trace::CounterEvent &counter : built.counters())
        EXPECT_EQ(counter.name, "harness.inflight");

    // The rendered chrome trace parses back through our own reader.
    trace::Trace parsed =
        trace::fromChromeText(trace::toChromeText(built));
    EXPECT_EQ(parsed.events().size(), 2u);
    EXPECT_EQ(parsed.instants().size(), 1u);
    EXPECT_GE(parsed.counters().size(), 2u);
}

TEST(HarnessTracer, TracksPoolWorkersSeparately)
{
    obs::HarnessTracer tracer;
    exec::Pool pool(4);
    pool.run(16, [&](std::size_t i) {
        auto span = tracer.scope("task " + std::to_string(i));
    });
    EXPECT_EQ(tracer.spanCount(), 16u);
    trace::Trace built = tracer.build();
    EXPECT_TRUE(built.validate().empty());
}

} // namespace
