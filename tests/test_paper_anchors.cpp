/**
 * @file
 * Reproduction-anchor tests: every headline number or shape the paper
 * reports is asserted here against the calibrated model, with
 * tolerance bands (we reproduce shapes, not testbed-exact values).
 *
 *  - Table V  nullKernel launch overhead / duration per platform
 *  - Fig. 6   CPU->GPU-bound TKLQT inflections (LC ~8, GH200 ~32: 4x)
 *  - Fig. 8   idealized fusion speedups (GPT2 2.7x, XLM-R 6.8x @ 256)
 *  - Fig. 9   PS fusion vs torch.compile reduce-overhead (~1.3x)
 *  - Fig. 10  encoder latency crossover ~BS=16, BS=1 slowdowns
 *  - Fig. 11  decoder speedups (Llama 1.9x/2.7x @ BS=16)
 *  - Table I  compile-time ordering and speedup bands
 *  - Fig. 3   7B FA2 / max-autotune speedup bands
 */

#include <gtest/gtest.h>

#include "analysis/boundedness.hh"
#include "analysis/compare.hh"
#include "analysis/sweep.hh"
#include "fusion/recommend.hh"
#include "hw/catalog.hh"
#include "skip/profile.hh"
#include "stats/summary.hh"
#include "workload/builder.hh"
#include "workload/compile_model.hh"

namespace skipsim
{
namespace
{

using analysis::SweepResult;

const std::vector<int> kGrid{1, 2, 4, 8, 16, 32, 64};

struct TrioSweeps
{
    SweepResult amd;
    SweepResult intel;
    SweepResult gh200;
};

TrioSweeps
sweepTrio(const workload::ModelConfig &model)
{
    TrioSweeps trio;
    trio.amd = analysis::runBatchSweep(model, hw::platforms::amdA100(),
                                       kGrid);
    trio.intel = analysis::runBatchSweep(
        model, hw::platforms::intelH100(), kGrid);
    trio.gh200 = analysis::runBatchSweep(model, hw::platforms::gh200(),
                                         kGrid);
    return trio;
}

// -------------------------------------------------------------- Table V

TEST(TableV, NullKernelAnchors)
{
    struct Anchor
    {
        const char *platform;
        double launch;
        double duration;
    };
    const Anchor anchors[] = {
        {"AMD+A100", 2260.5, 1440.0},
        {"Intel+H100", 2374.6, 1235.2},
        {"GH200", 2771.6, 1171.2},
    };

    for (const auto &anchor : anchors) {
        hw::Platform platform = hw::platforms::byName(anchor.platform);
        sim::Simulator simulator(platform);
        sim::SimResult result =
            simulator.run(workload::buildNullKernelGraph(2000));
        skip::DependencyGraph dep =
            skip::DependencyGraph::build(result.trace);

        stats::Summary launch;
        stats::Summary duration;
        for (const auto &link : dep.computeKernelsOnly()) {
            launch.add(static_cast<double>(link.launchToStartNs));
            duration.add(static_cast<double>(
                dep.trace().byId(link.kernelId).durNs));
        }
        // Jittered means must land within 2% of the paper's Table V.
        EXPECT_NEAR(launch.mean(), anchor.launch, anchor.launch * 0.02)
            << anchor.platform;
        EXPECT_NEAR(duration.mean(), anchor.duration,
                    anchor.duration * 0.02)
            << anchor.platform;
    }
}

TEST(TableV, OrderingAcrossPlatforms)
{
    // GH200 pays the most per launch but runs null kernels fastest.
    auto measure = [](const hw::Platform &platform) {
        sim::Simulator simulator(platform);
        sim::SimResult result =
            simulator.run(workload::buildNullKernelGraph(500));
        skip::DependencyGraph dep =
            skip::DependencyGraph::build(result.trace);
        skip::MetricsReport report = skip::computeMetrics(dep);
        return std::pair<double, double>(report.avgLaunchNs,
                                         report.akdNs);
    };
    auto [amd_l, amd_d] = measure(hw::platforms::amdA100());
    auto [intel_l, intel_d] = measure(hw::platforms::intelH100());
    auto [gh_l, gh_d] = measure(hw::platforms::gh200());
    EXPECT_LT(amd_l, intel_l);
    EXPECT_LT(intel_l, gh_l);
    EXPECT_GT(amd_d, intel_d);
    EXPECT_GT(intel_d, gh_d);
}

// ------------------------------------------------------------ Fig. 6

TEST(Fig6, EncoderInflectionsFourTimesLater)
{
    TrioSweeps trio = sweepTrio(workload::bertBaseUncased());

    auto amd = analysis::classifyBoundedness(trio.amd);
    auto intel = analysis::classifyBoundedness(trio.intel);
    auto gh = analysis::classifyBoundedness(trio.gh200);

    ASSERT_TRUE(amd.transitionBatch.has_value());
    ASSERT_TRUE(intel.transitionBatch.has_value());
    ASSERT_TRUE(gh.transitionBatch.has_value());

    // Paper: LC transition ~8, GH200 ~32 -> 4x more CPU-bound region.
    EXPECT_EQ(*intel.transitionBatch, 8);
    EXPECT_EQ(*amd.transitionBatch, 8);
    EXPECT_EQ(*gh.transitionBatch, 32);
    EXPECT_EQ(*gh.transitionBatch / *intel.transitionBatch, 4);
}

TEST(Fig6, TklqtPlateauIsPureLaunchOverhead)
{
    // In the CPU-bound region TKLQT ~ kernels x launch overhead.
    SweepResult sweep = analysis::runBatchSweep(
        workload::bertBaseUncased(), hw::platforms::gh200(), {1, 2, 4});
    for (const auto &point : sweep.points) {
        double pure = static_cast<double>(point.metrics.numKernels) *
            hw::platforms::gh200().cpu.launchOverheadNs;
        EXPECT_LT(point.metrics.tklqtNs, 2.0 * pure) << point.batch;
        EXPECT_GT(point.metrics.tklqtNs, 0.9 * pure) << point.batch;
    }
}

TEST(Fig6, TklqtGrowsSteeplyPastInflection)
{
    SweepResult sweep = analysis::runBatchSweep(
        workload::bertBaseUncased(), hw::platforms::intelH100(),
        {4, 8, 16, 32});
    double before = sweep.at(4).metrics.tklqtNs;
    double after = sweep.at(32).metrics.tklqtNs;
    EXPECT_GT(after, 50.0 * before);
}

// ------------------------------------------------------------- Fig. 8

TEST(Fig8, Gpt2IdealSpeedupAnchors)
{
    skip::ProfileResult run = skip::profilePrefill(
        workload::gpt2(), hw::platforms::intelH100(), 1);
    fusion::FusionReport report =
        fusion::recommendFromTrace(run.trace);

    EXPECT_EQ(report.kEager, 405u);
    const auto &l256 = report.byLength.back();
    ASSERT_EQ(l256.length, 256u);
    // 405 / (405 - 255) = 2.70x, the paper's "up to 2.7x for GPT2".
    EXPECT_EQ(l256.fusedChains, 1u);
    EXPECT_NEAR(l256.idealSpeedup, 2.70, 0.01);
}

TEST(Fig8, XlmRobertaIdealSpeedupAnchors)
{
    skip::ProfileResult run = skip::profilePrefill(
        workload::xlmRobertaBase(), hw::platforms::intelH100(), 1);
    fusion::FusionReport report =
        fusion::recommendFromTrace(run.trace);

    EXPECT_EQ(report.kEager, 299u);
    const auto &l256 = report.byLength.back();
    ASSERT_EQ(l256.length, 256u);
    // 299 / (299 - 255) = 6.80x, the paper's "up to 6.8x for XLM-R".
    EXPECT_EQ(l256.fusedChains, 1u);
    EXPECT_NEAR(l256.idealSpeedup, 6.80, 0.02);
}

TEST(Fig8, ShortChainsModest)
{
    // Paper: 1.05x-1.09x at short chain lengths; we accept a slightly
    // wider band since variant luck is seed-dependent.
    for (const auto &model :
         {workload::gpt2(), workload::xlmRobertaBase()}) {
        skip::ProfileResult run = skip::profilePrefill(
            model, hw::platforms::intelH100(), 1);
        fusion::FusionReport report =
            fusion::recommendFromTrace(run.trace, {2, 4});
        for (const auto &stats : report.byLength) {
            EXPECT_GE(stats.idealSpeedup, 1.0) << model.name;
            EXPECT_LE(stats.idealSpeedup, 1.35) << model.name;
        }
    }
}

TEST(Fig8, SpeedupShapeRisesTowardLongChains)
{
    skip::ProfileResult run = skip::profilePrefill(
        workload::gpt2(), hw::platforms::intelH100(), 1);
    fusion::FusionReport report =
        fusion::recommendFromTrace(run.trace);
    // The best length is the longest (256), and the back half of the
    // sweep is monotonically non-decreasing.
    EXPECT_EQ(report.best().length, 256u);
    for (std::size_t i = 4; i + 1 < report.byLength.size(); ++i) {
        EXPECT_LE(report.byLength[i].idealSpeedup,
                  report.byLength[i + 1].idealSpeedup + 1e-9);
    }
}

TEST(Fig7, CandidateCountsShapeMatchesPaper)
{
    // Fig. 7a/b: short lengths have fewer unique chains but the most
    // instances; totals shrink as L grows.
    skip::ProfileResult run = skip::profilePrefill(
        workload::gpt2(), hw::platforms::intelH100(), 1);
    fusion::ProximityAnalyzer pa(
        fusion::kernelSequenceFromTrace(run.trace));
    auto l2 = pa.analyze(2);
    auto l64 = pa.analyze(64);
    auto l256 = pa.analyze(256);
    EXPECT_GT(l2.totalInstances, l64.totalInstances);
    EXPECT_GT(l64.totalInstances, l256.totalInstances);
    EXPECT_GT(l64.deterministicChains, l256.deterministicChains);
    EXPECT_EQ(l2.totalInstances, 404u); // K_eager - L + 1
}

// ------------------------------------------------------------- Fig. 9

TEST(Fig9, PsFusionBeatsTorchCompileReduceOverhead)
{
    // GPT-2 prefill BS=1 on Intel+H100: PS ideal speedup at L=256 is
    // ~1.3x the measured torch.compile reduce-overhead speedup.
    hw::Platform intel = hw::platforms::intelH100();
    skip::ProfileResult eager = skip::profilePrefill(
        workload::gpt2(), intel, 1);
    skip::ProfileResult ro = skip::profilePrefill(
        workload::gpt2(), intel, 1, 512,
        workload::ExecMode::CompileReduceOverhead);

    double tc_speedup = eager.ttftNs() / ro.ttftNs();
    fusion::FusionReport report =
        fusion::recommendFromTrace(eager.trace);
    double ps_speedup = report.best().idealSpeedup;

    double ratio = ps_speedup / tc_speedup;
    EXPECT_GT(ratio, 1.05);
    EXPECT_LT(ratio, 1.75);
}

// ------------------------------------------------- Figs. 10/11 (encoders)

TEST(Fig10, EncoderCrossoverAroundSixteen)
{
    TrioSweeps trio = sweepTrio(workload::bertBaseUncased());
    analysis::Crossover cp =
        analysis::findCrossover(trio.gh200, trio.intel);
    ASSERT_TRUE(cp.firstWinBatch.has_value());
    // Paper: GH200 wins beyond BS=16; grid granularity admits 8-16.
    EXPECT_GE(*cp.firstWinBatch, 16);
    ASSERT_TRUE(cp.crossoverPoint.has_value());
    EXPECT_GE(*cp.crossoverPoint, 8);
    EXPECT_LE(*cp.crossoverPoint, 16);
}

TEST(Fig10, EncoderLargeBatchSpeedups)
{
    // Paper: 1.6x / 2.4x at BS=64 for Bert over Intel+H100 / AMD+A100.
    TrioSweeps trio = sweepTrio(workload::bertBaseUncased());
    double vs_intel = analysis::speedupAt(trio.gh200, trio.intel, 64);
    double vs_amd = analysis::speedupAt(trio.gh200, trio.amd, 64);
    EXPECT_GT(vs_intel, 1.4);
    EXPECT_LT(vs_intel, 2.4);
    EXPECT_GT(vs_amd, 2.0);
    EXPECT_LT(vs_amd, 3.0);
    EXPECT_GT(vs_amd, vs_intel);
}

TEST(Fig10, EncoderLowBatchGh200Slowest)
{
    // Paper: GH200 2.8x / 1.9x more latency than Intel / AMD at BS=1.
    TrioSweeps trio = sweepTrio(workload::bertBaseUncased());
    double vs_intel =
        trio.gh200.at(1).metrics.ilNs / trio.intel.at(1).metrics.ilNs;
    double vs_amd =
        trio.gh200.at(1).metrics.ilNs / trio.amd.at(1).metrics.ilNs;
    EXPECT_GT(vs_intel, 2.2);
    EXPECT_LT(vs_intel, 3.2);
    EXPECT_GT(vs_amd, 1.5);
    EXPECT_LT(vs_amd, 2.2);

    // Intel+H100 is the fastest platform at small batch.
    EXPECT_LT(trio.intel.at(1).metrics.ilNs,
              trio.amd.at(1).metrics.ilNs);
}

TEST(Fig10, Gh200FlatUntilThirtyTwo)
{
    // Paper: GH200 sustains near-constant TTFT until BS=32.
    SweepResult gh = analysis::runBatchSweep(
        workload::bertBaseUncased(), hw::platforms::gh200(),
        {1, 2, 4, 8, 16, 32});
    double bs1 = gh.at(1).metrics.ilNs;
    double bs16 = gh.at(16).metrics.ilNs;
    EXPECT_LT(bs16, 1.25 * bs1);
    EXPECT_GT(bs16, 0.75 * bs1);
}

TEST(Fig10, GpuIdleShrinksCpuIdleGrows)
{
    SweepResult gh = analysis::runBatchSweep(
        workload::bertBaseUncased(), hw::platforms::gh200(),
        {1, 64});
    const auto &low = gh.at(1).metrics;
    const auto &high = gh.at(64).metrics;
    EXPECT_GT(low.gpuIdleNs / low.ilNs, 0.6);
    EXPECT_LT(high.gpuIdleNs / high.ilNs, 0.2);
    EXPECT_GT(high.cpuIdleNs / high.ilNs,
              low.cpuIdleNs / low.ilNs);
}

TEST(Fig10, BalancedRegionLaterOnGh200)
{
    // Paper: encoders balanced at LC BS=4-8 vs CC BS=16-32.
    TrioSweeps trio = sweepTrio(workload::bertBaseUncased());
    auto lc = analysis::findSweetSpot(trio.intel);
    auto cc = analysis::findSweetSpot(trio.gh200);
    EXPECT_GT(cc.minBatch, lc.minBatch);
    EXPECT_GE(cc.minBatch, 8);
    EXPECT_LE(lc.maxBatch, 16);
}

// ------------------------------------------------- Figs. 10/11 (decoders)

TEST(Fig11, LlamaSpeedupsAtSixteen)
{
    // Paper: Llama-3.2-1B speedup 1.9x / 2.7x at BS=16.
    TrioSweeps trio = sweepTrio(workload::llama32_1b());
    double vs_intel = analysis::speedupAt(trio.gh200, trio.intel, 16);
    double vs_amd = analysis::speedupAt(trio.gh200, trio.amd, 16);
    EXPECT_GT(vs_intel, 1.5);
    EXPECT_LT(vs_intel, 2.3);
    EXPECT_GT(vs_amd, 2.2);
    EXPECT_LT(vs_amd, 3.2);
}

TEST(Fig11, LlamaSimilarAtBatchOne)
{
    // Paper: "no CP (latency is similar at the batch size of 1)".
    TrioSweeps trio = sweepTrio(workload::llama32_1b());
    double ratio =
        trio.gh200.at(1).metrics.ilNs / trio.intel.at(1).metrics.ilNs;
    EXPECT_LT(ratio, 1.6);
    EXPECT_GT(ratio, 0.8);
}

TEST(Fig11, Gpt2CrossoverAroundFour)
{
    // Paper: CP at BS=4 for GPT2.
    TrioSweeps trio = sweepTrio(workload::gpt2());
    analysis::Crossover cp =
        analysis::findCrossover(trio.gh200, trio.intel);
    ASSERT_TRUE(cp.crossoverPoint.has_value());
    EXPECT_GE(*cp.crossoverPoint, 4);
    EXPECT_LE(*cp.crossoverPoint, 8);
}

TEST(Fig11, DecoderInflectionDelayedOnGh200)
{
    SweepResult lc = analysis::runBatchSweep(
        workload::gpt2(), hw::platforms::intelH100(), kGrid);
    SweepResult cc = analysis::runBatchSweep(
        workload::gpt2(), hw::platforms::gh200(), kGrid);
    auto lc_bound = analysis::classifyBoundedness(lc);
    auto cc_bound = analysis::classifyBoundedness(cc);
    ASSERT_TRUE(lc_bound.transitionBatch.has_value());
    ASSERT_TRUE(cc_bound.transitionBatch.has_value());
    EXPECT_GE(*cc_bound.transitionBatch,
              4 * *lc_bound.transitionBatch);
}

// ------------------------------------------------------------- Table I

TEST(TableI, SpeedupBandsAndOrdering)
{
    hw::Platform intel = hw::platforms::intelH100();
    workload::ModelConfig gemma = workload::gemma2b();

    double eager =
        skip::profilePrefill(gemma, intel, 1, 1024).ttftNs();
    double def = skip::profilePrefill(
        gemma, intel, 1, 1024,
        workload::ExecMode::CompileDefault).ttftNs();
    double ro = skip::profilePrefill(
        gemma, intel, 1, 1024,
        workload::ExecMode::CompileReduceOverhead).ttftNs();
    double ma = skip::profilePrefill(
        gemma, intel, 1, 1024,
        workload::ExecMode::CompileMaxAutotune).ttftNs();

    // Paper: 1 / 1.203 / 1.2394 / 1.317.
    EXPECT_GT(eager / def, 1.08);
    EXPECT_LT(eager / def, 1.32);
    EXPECT_GT(eager / ro, eager / def - 0.03);
    EXPECT_GT(eager / ma, 1.20);
    EXPECT_LT(eager / ma, 1.45);
    EXPECT_GT(eager / ma, eager / ro);
}

// -------------------------------------------------------------- Fig. 3

TEST(Fig3, SevenBFusionSpeedupBands)
{
    hw::Platform intel = hw::platforms::intelH100();
    for (const auto &model : workload::sevenBSet()) {
        double eager =
            skip::profilePrefill(model, intel, 1, 1024).ttftNs();
        double fa2 = skip::profilePrefill(
            model, intel, 1, 1024,
            workload::ExecMode::FlashAttention2).ttftNs();
        double ma = skip::profilePrefill(
            model, intel, 1, 1024,
            workload::ExecMode::CompileMaxAutotune).ttftNs();
        EXPECT_GT(eager / fa2, 1.10) << model.name;
        EXPECT_LT(eager / fa2, 1.80) << model.name;
        EXPECT_GT(eager / ma, 1.15) << model.name;
        EXPECT_LT(eager / ma, 1.70) << model.name;
    }
}

// ------------------------------------------- general cross-platform sanity

class ModelOnTrio : public ::testing::TestWithParam<std::string>
{};

TEST_P(ModelOnTrio, Gh200EventuallyWinsAndIsNeverWorseAtScale)
{
    workload::ModelConfig model = workload::modelByName(GetParam());
    TrioSweeps trio = sweepTrio(model);
    // At BS=64 the CC system must beat both LC systems.
    EXPECT_GT(analysis::speedupAt(trio.gh200, trio.intel, 64), 1.2);
    EXPECT_GT(analysis::speedupAt(trio.gh200, trio.amd, 64), 1.5);
}

TEST_P(ModelOnTrio, TklqtMonotoneTailOnEveryPlatform)
{
    workload::ModelConfig model = workload::modelByName(GetParam());
    for (const auto &platform : hw::platforms::paperTrio()) {
        SweepResult sweep = analysis::runBatchSweep(
            model, platform, {16, 32, 64});
        EXPECT_LE(sweep.at(16).metrics.tklqtNs,
                  sweep.at(32).metrics.tklqtNs * 1.05)
            << platform.name;
        EXPECT_LE(sweep.at(32).metrics.tklqtNs,
                  sweep.at(64).metrics.tklqtNs * 1.05)
            << platform.name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Quartet, ModelOnTrio,
    ::testing::Values("Bert-Base-Uncased", "XLM-Roberta-Base", "GPT2",
                      "Llama-3.2-1B"),
    [](const auto &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace skipsim
