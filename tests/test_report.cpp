/**
 * @file
 * Tests for the full characterization report: structural consistency
 * across platforms, markdown/JSON rendering, and the cross-platform
 * conclusions it encodes (CC wins large batch, LC small batch).
 */

#include <gtest/gtest.h>

#include "analysis/report.hh"
#include "common/logging.hh"
#include "hw/catalog.hh"
#include "json/parser.hh"
#include "json/writer.hh"
#include "workload/model_config.hh"

namespace skipsim::analysis
{
namespace
{

const CharacterizationReport &
bertReport()
{
    static CharacterizationReport report = characterize(
        workload::bertBaseUncased(), hw::platforms::paperTrio(), 512);
    return report;
}

TEST(Characterize, CoversEveryPlatform)
{
    const auto &report = bertReport();
    ASSERT_EQ(report.platforms.size(), 3u);
    EXPECT_EQ(report.platforms[0].platformName, "AMD+A100");
    EXPECT_EQ(report.platforms[0].coupling, "LC");
    EXPECT_EQ(report.platforms[2].platformName, "GH200");
    EXPECT_EQ(report.platforms[2].coupling, "CC");
    EXPECT_EQ(report.crossoversVsFirst.size(), 2u);
    EXPECT_EQ(report.modelName, "Bert-Base-Uncased");
}

TEST(Characterize, EncodesThePaperStory)
{
    const auto &report = bertReport();
    const auto &intel = report.platforms[1];
    const auto &gh = report.platforms[2];

    // LC faster at BS=1; CC faster at BS=128.
    EXPECT_LT(intel.latencyBs1Ns, gh.latencyBs1Ns);
    EXPECT_GT(intel.latencyMaxNs, gh.latencyMaxNs);

    // CC transition 4x later; balanced region later too.
    ASSERT_TRUE(intel.boundedness.transitionBatch.has_value());
    ASSERT_TRUE(gh.boundedness.transitionBatch.has_value());
    EXPECT_EQ(*gh.boundedness.transitionBatch,
              4 * *intel.boundedness.transitionBatch);
    EXPECT_GT(gh.sweetSpot.minBatch, intel.sweetSpot.minBatch);

    // Fusion potential and memory residency populated.
    for (const auto &pc : report.platforms) {
        EXPECT_GT(pc.fusionPotential, 2.0);
        EXPECT_GT(pc.maxResidentSeqs, 100);
        EXPECT_GT(pc.energyBs1J, 0.0);
        EXPECT_LT(pc.energyMaxJ, pc.energyBs1J);
    }
}

TEST(Characterize, MarkdownRenderComplete)
{
    std::string md = bertReport().renderMarkdown();
    EXPECT_NE(md.find("# Characterization: Bert-Base-Uncased"),
              std::string::npos);
    EXPECT_NE(md.find("Latency vs batch"), std::string::npos);
    EXPECT_NE(md.find("Crossovers vs AMD+A100"), std::string::npos);
    EXPECT_NE(md.find("GH200"), std::string::npos);
}

TEST(Characterize, JsonRoundTripsAndMatches)
{
    const auto &report = bertReport();
    json::Value doc = json::parse(json::writePretty(report.toJson()));
    const json::Object &root = doc.asObject();
    EXPECT_EQ(root.at("model").asString(), "Bert-Base-Uncased");
    EXPECT_EQ(root.at("seq_len").asInt(), 512);
    const auto &platforms = root.at("platforms").asArray();
    ASSERT_EQ(platforms.size(), 3u);
    const json::Object &gh = platforms[2].asObject();
    EXPECT_EQ(gh.at("platform").asString(), "GH200");
    EXPECT_EQ(gh.at("transition_batch").asInt(), 32);
    EXPECT_EQ(gh.at("sweep").asArray().size(), 8u);
    EXPECT_DOUBLE_EQ(gh.at("ttft_bs1_ns").asDouble(),
                     report.platforms[2].latencyBs1Ns);
}

TEST(Characterize, EmptyPlatformListThrows)
{
    EXPECT_THROW(characterize(workload::gpt2(), {}, 512), FatalError);
}

TEST(Characterize, SinglePlatformHasNoCrossovers)
{
    CharacterizationReport report = characterize(
        workload::gpt2(), {hw::platforms::gh200()}, 256);
    EXPECT_EQ(report.platforms.size(), 1u);
    EXPECT_TRUE(report.crossoversVsFirst.empty());
    EXPECT_NO_THROW(report.renderMarkdown());
}

} // namespace
} // namespace skipsim::analysis
