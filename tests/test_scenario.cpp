/**
 * @file
 * Tests for the scenario registry (src/scenario): registration
 * semantics (duplicates rejected, builder failures surface the
 * scenario name, sorted enumeration), the typo-suggesting unknown-name
 * error, builder determinism (same params -> byte-identical reports),
 * and serde round trips for the arrival processes the builtin
 * scenarios are made of.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "common/logging.hh"
#include "hw/catalog.hh"
#include "json/parser.hh"
#include "json/writer.hh"
#include "kv/tier.hh"
#include "scenario/registry.hh"
#include "serving/arrival.hh"
#include "workload/model_config.hh"

namespace skipsim
{
namespace
{

/** Small shared parameter document: tiny horizon, tiny fleet. */
json::Object
quickParams()
{
    json::Object params;
    params.set("horizon-sec", 1.5);
    params.set("replicas", 2);
    params.set("max-active", 8);
    params.set("prompt", 64);
    params.set("gen-tokens", 4);
    params.set("seed", 11);
    return params;
}

// --------------------------------------------------------------- registry

TEST(ScenarioRegistry, BuiltinsAreRegistered)
{
    for (const char *name : {"cluster", "steady-poisson",
                             "mmpp-diurnal", "chat-sessions",
                             "multi-tenant", "kv_offload", "disagg"})
        EXPECT_TRUE(scenario::hasScenario(name)) << name;
    EXPECT_FALSE(scenario::hasScenario("no-such-scenario"));
}

TEST(ScenarioRegistry, EnumerationIsSorted)
{
    std::vector<std::string> names = scenario::scenarioNames();
    ASSERT_GE(names.size(), 5u);
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));

    std::vector<scenario::Scenario> list = scenario::scenarioList();
    ASSERT_EQ(list.size(), names.size());
    for (std::size_t i = 0; i < list.size(); ++i) {
        EXPECT_EQ(list[i].name, names[i]);
        EXPECT_FALSE(list[i].description.empty()) << list[i].name;
    }
}

TEST(ScenarioRegistry, DuplicateRegistrationIsRejected)
{
    scenario::Scenario first;
    first.name = "test-dup";
    first.description = "first";
    first.build = [](const json::Object &) {
        return cluster::ClusterSpec();
    };
    scenario::registerScenario(first);
    EXPECT_TRUE(scenario::hasScenario("test-dup"));
    EXPECT_THROW(scenario::registerScenario(first), FatalError);

    // Shadowing a builtin is just as much of an error.
    scenario::Scenario builtin = first;
    builtin.name = "steady-poisson";
    EXPECT_THROW(scenario::registerScenario(builtin), FatalError);
}

TEST(ScenarioRegistry, InvalidRegistrationsAreRejected)
{
    scenario::Scenario nameless;
    nameless.build = [](const json::Object &) {
        return cluster::ClusterSpec();
    };
    EXPECT_THROW(scenario::registerScenario(nameless), FatalError);

    scenario::Scenario buildless;
    buildless.name = "test-buildless";
    EXPECT_THROW(scenario::registerScenario(buildless), FatalError);
}

TEST(ScenarioRegistry, BuilderErrorsNameTheScenario)
{
    scenario::Scenario broken;
    broken.name = "test-broken";
    broken.description = "always throws";
    broken.build = [](const json::Object &) -> cluster::ClusterSpec {
        fatal("spec rejected: bad knob");
    };
    scenario::registerScenario(broken);
    try {
        scenario::buildScenario("test-broken", json::Object());
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("test-broken"), std::string::npos) << what;
        EXPECT_NE(what.find("bad knob"), std::string::npos) << what;
    }
}

TEST(ScenarioRegistry, UnknownNameSuggestsNearest)
{
    try {
        scenario::buildScenario("mmpp-diurnel", json::Object());
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("mmpp-diurnel"), std::string::npos) << what;
        EXPECT_NE(what.find("did you mean 'mmpp-diurnal'"),
                  std::string::npos)
            << what;
        // The full list is part of the message.
        EXPECT_NE(what.find("steady-poisson"), std::string::npos)
            << what;
    }
}

// ------------------------------------------------------ builder behaviour

TEST(ScenarioBuilders, TrafficShapesMatchTheScenario)
{
    cluster::ClusterSpec poisson =
        scenario::buildScenario("steady-poisson", quickParams());
    ASSERT_NE(poisson.traffic, nullptr);
    EXPECT_STREQ(poisson.traffic->kind(), "poisson");

    cluster::ClusterSpec mmpp =
        scenario::buildScenario("mmpp-diurnal", quickParams());
    ASSERT_NE(mmpp.traffic, nullptr);
    EXPECT_STREQ(mmpp.traffic->kind(), "mmpp");
    // The scenario's arrival-rate identity is the process mean.
    EXPECT_DOUBLE_EQ(mmpp.arrivalRatePerSec,
                     mmpp.traffic->meanRatePerSec());

    cluster::ClusterSpec chat =
        scenario::buildScenario("chat-sessions", quickParams());
    ASSERT_NE(chat.traffic, nullptr);
    EXPECT_STREQ(chat.traffic->kind(), "sessions");
    EXPECT_EQ(chat.router, cluster::RouterPolicy::SessionAffinity);

    cluster::ClusterSpec tenants =
        scenario::buildScenario("multi-tenant", quickParams());
    ASSERT_NE(tenants.traffic, nullptr);
    EXPECT_STREQ(tenants.traffic->kind(), "tiered");
    EXPECT_EQ(tenants.tenants.size(), 3u);
    EXPECT_EQ(tenants.traffic->tenantCount(), 3);
}

TEST(ScenarioBuilders, RawClusterScenarioReadsClusterSpecs)
{
    json::Object doc;
    doc.set("model", "GPT2");
    json::Object replica;
    replica.set("platform", "GH200");
    json::Value::Array replicas;
    replicas.push_back(json::Value(std::move(replica)));
    doc.set("replicas", json::Value(std::move(replicas)));
    doc.set("rate", 25.0);
    cluster::ClusterSpec spec =
        scenario::buildScenario("cluster", doc);
    EXPECT_EQ(spec.model.name, "GPT2");
    EXPECT_DOUBLE_EQ(spec.arrivalRatePerSec, 25.0);
    EXPECT_EQ(spec.traffic, nullptr); // legacy path preserved
}

TEST(ScenarioBuilders, BadSchemaVersionIsRejected)
{
    json::Object params = quickParams();
    params.set("schema_version", 99);
    EXPECT_THROW(scenario::buildScenario("steady-poisson", params),
                 FatalError);
}

TEST(ScenarioBuilders, ReportsAreDeterministic)
{
    // Same (scenario, params) -> byte-identical report, simulated
    // twice from scratch. The --jobs 1 vs 8 byte-diff lives in
    // scripts/check_scenarios.sh; this is the in-process half.
    for (const char *name : {"steady-poisson", "mmpp-diurnal",
                             "chat-sessions", "multi-tenant",
                             "kv_offload", "disagg"}) {
        cluster::ClusterSpec a =
            scenario::buildScenario(name, quickParams());
        cluster::ClusterSpec b =
            scenario::buildScenario(name, quickParams());
        cluster::CostCache costs;
        costs.build(a);
        std::string ra = json::write(
            cluster::simulateCluster(a.scenarioAt(0), costs).toJson());
        std::string rb = json::write(
            cluster::simulateCluster(b.scenarioAt(0), costs).toJson());
        EXPECT_EQ(ra, rb) << name;
    }
}

TEST(ScenarioBuilders, MultiTenantReportsPerTenantStats)
{
    cluster::ClusterSpec spec =
        scenario::buildScenario("multi-tenant", quickParams());
    cluster::CostCache costs;
    costs.build(spec);
    cluster::ClusterResult result =
        cluster::simulateCluster(spec.scenarioAt(0), costs);
    ASSERT_EQ(result.tenants.size(), 3u);
    std::size_t offered = 0;
    for (const cluster::TenantStats &tier : result.tenants) {
        EXPECT_FALSE(tier.name.empty());
        offered += tier.offered;
    }
    // Tenant accounting partitions the offered requests.
    EXPECT_EQ(offered, result.offered);
}

// ----------------------------------------------- KV-tiering + disagg

TEST(ScenarioBuilders, KvOffloadEnablesTiering)
{
    cluster::ClusterSpec spec =
        scenario::buildScenario("kv_offload", quickParams());
    EXPECT_TRUE(spec.kvTier.enabled());
    EXPECT_EQ(spec.kvTier.policy, kv::OffloadPolicy::LruBySession);
    EXPECT_EQ(spec.router, cluster::RouterPolicy::SessionAffinity);
    ASSERT_NE(spec.traffic, nullptr);
    EXPECT_STREQ(spec.traffic->kind(), "sessions");
    for (const cluster::ReplicaSpec &replica : spec.replicas)
        EXPECT_DOUBLE_EQ(replica.platform.gpu.hbmCapacityGiB, 0.6);

    // Knobs override the defaults: policy by name, link by numbers.
    json::Object params = quickParams();
    params.set("policy", "static-watermark");
    params.set("link-bw-gbs", 32.0);
    cluster::ClusterSpec tuned =
        scenario::buildScenario("kv_offload", params);
    EXPECT_EQ(tuned.kvTier.policy,
              kv::OffloadPolicy::StaticWatermark);
    for (const cluster::ReplicaSpec &replica : tuned.replicas)
        EXPECT_DOUBLE_EQ(replica.platform.link.bwGBs, 32.0);

    json::Object bad = quickParams();
    bad.set("policy", "mru");
    EXPECT_THROW(scenario::buildScenario("kv_offload", bad),
                 FatalError);
}

TEST(ScenarioBuilders, DisaggSplitsPrefillAndDecodePools)
{
    json::Object params = quickParams();
    params.set("prefill-replicas", 1);
    params.set("decode-replicas", 2);
    cluster::ClusterSpec spec =
        scenario::buildScenario("disagg", params);
    ASSERT_EQ(spec.replicas.size(), 3u);
    EXPECT_EQ(spec.replicas[0].role, cluster::ReplicaRole::Prefill);
    EXPECT_EQ(spec.replicas[1].role, cluster::ReplicaRole::Decode);
    EXPECT_EQ(spec.replicas[2].role, cluster::ReplicaRole::Decode);
    EXPECT_TRUE(spec.disaggregated());

    cluster::CostCache costs;
    costs.build(spec);
    cluster::ClusterResult result =
        cluster::simulateCluster(spec.scenarioAt(0), costs);
    EXPECT_TRUE(result.kv.enabled);
    EXPECT_GT(result.kv.handoffs, 0u);
    // The prefill pool hands every request off; only decode replicas
    // retire them.
    EXPECT_EQ(result.replicas[0].completed, 0u);
}

TEST(ScenarioBuilders, DisaggCollapsedMatchesCoLocated)
{
    // Zero prefill replicas collapse disagg to classic co-located
    // serving: the same fleet under steady-poisson, byte for byte.
    json::Object collapsed_params = quickParams();
    collapsed_params.set("prefill-replicas", 0);
    collapsed_params.set("decode-replicas", 2);
    collapsed_params.set("rate", 40.0);
    cluster::ClusterSpec collapsed =
        scenario::buildScenario("disagg", collapsed_params);
    EXPECT_FALSE(collapsed.disaggregated());

    json::Object plain_params = quickParams();
    plain_params.set("rate", 40.0);
    cluster::ClusterSpec plain =
        scenario::buildScenario("steady-poisson", plain_params);

    cluster::CostCache costs;
    costs.build(plain);
    std::string a = json::write(
        cluster::simulateCluster(collapsed.scenarioAt(0), costs)
            .toJson());
    std::string b = json::write(
        cluster::simulateCluster(plain.scenarioAt(0), costs).toJson());
    EXPECT_EQ(a, b);
}

TEST(ScenarioRegistry, JsonListingCarriesParams)
{
    json::Value listing = scenario::scenarioListToJson();
    ASSERT_TRUE(listing.isArray());
    const json::Value::Array &list = listing.asArray();
    ASSERT_GE(list.size(), 7u);
    bool saw_kv_policy = false;
    std::vector<std::string> names;
    for (const json::Value &entry : list) {
        ASSERT_TRUE(entry.isObject());
        const json::Object &doc = entry.asObject();
        ASSERT_TRUE(doc.has("name"));
        ASSERT_TRUE(doc.has("description"));
        ASSERT_TRUE(doc.has("params"));
        ASSERT_TRUE(doc.at("params").isArray());
        names.push_back(doc.at("name").asString());
        if (doc.at("name").asString() != "kv_offload")
            continue;
        for (const json::Value &param : doc.at("params").asArray())
            if (param.asObject().at("name").asString() == "policy")
                saw_kv_policy = true;
    }
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    EXPECT_TRUE(saw_kv_policy);
}

// -------------------------------------------------- arrival-process serde

TEST(ArrivalSerde, RoundTripsEveryKind)
{
    std::vector<std::shared_ptr<serving::ArrivalProcess>> processes;
    processes.push_back(
        std::make_shared<serving::PoissonProcess>(42.0, 16));
    processes.push_back(std::make_shared<serving::MmppProcess>(
        std::vector<serving::MmppProcess::State>{{10.0, 2.0},
                                                 {90.0, 0.5}},
        16));
    serving::SessionProcess::Params chat;
    chat.sessionRatePerSec = 8.0;
    chat.meanTurns = 3.0;
    chat.thinkSec = 1.5;
    chat.cachedFrac = 0.6;
    chat.sessions = 16;
    processes.push_back(std::make_shared<serving::SessionProcess>(chat));
    processes.push_back(std::make_shared<serving::TieredProcess>(
        std::vector<serving::TieredProcess::Tier>{{"a", 5.0},
                                                  {"b", 10.0}},
        16));

    for (const auto &original : processes) {
        auto reparsed =
            serving::arrivalProcessFromJson(original->toJson());
        EXPECT_STREQ(reparsed->kind(), original->kind());
        EXPECT_DOUBLE_EQ(reparsed->meanRatePerSec(),
                         original->meanRatePerSec());
        EXPECT_EQ(reparsed->tenantCount(), original->tenantCount());
        // Byte-identical JSON and byte-identical timelines.
        EXPECT_EQ(json::write(reparsed->toJson()),
                  json::write(original->toJson()));
        auto a = original->generate(2e9, 7);
        auto b = reparsed->generate(2e9, 7);
        ASSERT_EQ(a.size(), b.size()) << original->kind();
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_DOUBLE_EQ(a[i].timeNs, b[i].timeNs);
            EXPECT_EQ(a[i].session, b[i].session);
            EXPECT_EQ(a[i].tenant, b[i].tenant);
            EXPECT_DOUBLE_EQ(a[i].cachedFrac, b[i].cachedFrac);
        }
    }
}

TEST(ArrivalSerde, UnknownTypeListsKnownOnes)
{
    json::Object doc;
    doc.set("type", "fractal");
    try {
        serving::arrivalProcessFromJson(json::Value(std::move(doc)));
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("fractal"), std::string::npos) << what;
        EXPECT_NE(what.find("poisson"), std::string::npos) << what;
        EXPECT_NE(what.find("tiered"), std::string::npos) << what;
    }
}

TEST(ArrivalSerde, ClusterSpecCarriesTrafficAndTenants)
{
    cluster::ClusterSpec spec;
    spec.model = workload::gpt2();
    cluster::ReplicaSpec replica;
    replica.platform = hw::platforms::gh200();
    spec.replicas = {replica};
    spec.traffic = std::make_shared<serving::TieredProcess>(
        std::vector<serving::TieredProcess::Tier>{{"gold", 6.0},
                                                  {"bronze", 12.0}},
        32);
    cluster::TenantSpec gold;
    gold.name = "gold";
    gold.ttftSloMs = 200.0;
    gold.e2eSloMs = 800.0;
    cluster::TenantSpec bronze;
    bronze.name = "bronze";
    spec.tenants = {gold, bronze};

    cluster::ClusterSpec loaded =
        cluster::ClusterSpec::fromJson(spec.toJson());
    ASSERT_NE(loaded.traffic, nullptr);
    EXPECT_STREQ(loaded.traffic->kind(), "tiered");
    EXPECT_DOUBLE_EQ(loaded.traffic->meanRatePerSec(), 18.0);
    ASSERT_EQ(loaded.tenants.size(), 2u);
    EXPECT_EQ(loaded.tenants[0].name, "gold");
    EXPECT_DOUBLE_EQ(loaded.tenants[0].ttftSloMs, 200.0);
    EXPECT_DOUBLE_EQ(loaded.tenants[1].e2eSloMs, 2000.0);
}

// ------------------------------------------------------ arrival edge cases

TEST(ArrivalEdgeCases, ZeroRateMmppStateIsValidAndRuns)
{
    // A silent MMPP state (rate 0) is a legal traffic lull, not a
    // config error; the generator must step through it.
    auto traffic = std::make_shared<serving::MmppProcess>(
        std::vector<serving::MmppProcess::State>{{0.0, 1.0},
                                                 {40.0, 1.0}},
        16);
    EXPECT_NO_THROW(traffic->validate());

    cluster::ClusterSpec spec =
        scenario::buildScenario("steady-poisson", quickParams());
    spec.traffic = traffic;
    cluster::CostCache costs;
    costs.build(spec);
    cluster::ClusterResult result =
        cluster::simulateCluster(spec.scenarioAt(0), costs);
    EXPECT_GT(result.offered, 0u);
    EXPECT_EQ(result.offered, result.completed + result.lost);

    // A non-positive dwell, though, can never be left.
    serving::MmppProcess stuck({{0.0, 0.0}}, 16);
    EXPECT_THROW(stuck.validate(), FatalError);
}

TEST(ArrivalEdgeCases, FullyCachedFollowUpsAreRejected)
{
    serving::SessionProcess::Params params;
    params.cachedFrac = 0.95; // the documented ceiling is inclusive
    EXPECT_NO_THROW(serving::SessionProcess(params).validate());

    params.cachedFrac = 1.0; // a zero-compute prefill is not a turn
    try {
        serving::SessionProcess(params).validate();
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("cached-frac"),
                  std::string::npos)
            << err.what();
    }
}

TEST(ArrivalEdgeCases, ZeroWeightTierIsRejected)
{
    serving::TieredProcess empty(
        {{"gold", 6.0}, {"idle", 0.0}}, 16);
    EXPECT_THROW(empty.validate(), FatalError);
}

} // namespace
} // namespace skipsim
