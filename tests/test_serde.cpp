/**
 * @file
 * Tests for platform/model JSON serialization: full round trips for
 * every catalog entry, partial-document defaults, and validation of
 * malformed configurations.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.hh"
#include "common/logging.hh"
#include "exec/run_spec.hh"
#include "exec/sweep_spec.hh"
#include "hw/catalog.hh"
#include "hw/serde.hh"
#include "json/parser.hh"
#include "json/schema.hh"
#include "json/writer.hh"
#include "skip/profile.hh"
#include "workload/model_config.hh"
#include "workload/serde.hh"

namespace skipsim
{
namespace
{

// -------------------------------------------------------------- platforms

TEST(PlatformSerde, RoundTripAllCatalogEntries)
{
    for (const auto &original : hw::platforms::all()) {
        hw::Platform parsed =
            hw::platformFromJson(hw::platformToJson(original));
        EXPECT_EQ(parsed.name, original.name);
        EXPECT_EQ(parsed.coupling, original.coupling);
        EXPECT_EQ(parsed.unifiedMemory, original.unifiedMemory);
        EXPECT_DOUBLE_EQ(parsed.cpu.singleThreadScore,
                         original.cpu.singleThreadScore);
        EXPECT_DOUBLE_EQ(parsed.cpu.launchOverheadNs,
                         original.cpu.launchOverheadNs);
        EXPECT_DOUBLE_EQ(parsed.gpu.fp16Tflops,
                         original.gpu.fp16Tflops);
        EXPECT_DOUBLE_EQ(parsed.gpu.memBwGBs, original.gpu.memBwGBs);
        EXPECT_DOUBLE_EQ(parsed.gpu.minKernelNs,
                         original.gpu.minKernelNs);
        EXPECT_DOUBLE_EQ(parsed.gpu.maxGemmEff,
                         original.gpu.maxGemmEff);
        EXPECT_DOUBLE_EQ(parsed.link.bwGBs, original.link.bwGBs);
        EXPECT_DOUBLE_EQ(parsed.gpu.busyPowerW,
                         original.gpu.busyPowerW);
    }
}

TEST(PlatformSerde, PartialDocumentKeepsDefaults)
{
    hw::Platform p = hw::platformFromJson(json::parse(
        R"({"name": "mini", "gpu": {"fp16_tflops": 100.0}})"));
    EXPECT_EQ(p.name, "mini");
    EXPECT_DOUBLE_EQ(p.gpu.fp16Tflops, 100.0);
    EXPECT_DOUBLE_EQ(p.cpu.singleThreadScore, 1.0); // default
}

TEST(PlatformSerde, BadCouplingThrows)
{
    EXPECT_THROW(
        hw::platformFromJson(json::parse(R"({"coupling": "XX"})")),
        FatalError);
}

TEST(PlatformSerde, NonPositiveRatesThrow)
{
    EXPECT_THROW(hw::platformFromJson(json::parse(
                     R"({"gpu": {"fp16_tflops": 0}})")),
                 FatalError);
    EXPECT_THROW(hw::platformFromJson(json::parse(
                     R"({"cpu": {"single_thread_score": -1}})")),
                 FatalError);
}

TEST(PlatformSerde, FileRoundTrip)
{
    std::string path = testing::TempDir() + "/skipsim_platform.json";
    hw::savePlatform(path, hw::platforms::gh200());
    hw::Platform loaded = hw::loadPlatform(path);
    EXPECT_EQ(loaded.name, "GH200");
    EXPECT_DOUBLE_EQ(loaded.cpu.launchOverheadNs, 2771.6);
}

TEST(PlatformSerde, LoadedPlatformIsUsable)
{
    std::string path = testing::TempDir() + "/skipsim_platform2.json";
    hw::savePlatform(path, hw::platforms::intelH100());
    hw::Platform loaded = hw::loadPlatform(path);
    skip::ProfileResult original = skip::profilePrefill(
        workload::gpt2(), hw::platforms::intelH100(), 1, 128);
    skip::ProfileResult reloaded =
        skip::profilePrefill(workload::gpt2(), loaded, 1, 128);
    EXPECT_DOUBLE_EQ(reloaded.metrics.ilNs, original.metrics.ilNs);
}

// ----------------------------------------------------------------- models

TEST(ModelSerde, RoundTripAllCatalogEntries)
{
    for (const auto &original : workload::allModels()) {
        workload::ModelConfig parsed =
            workload::modelFromJson(workload::modelToJson(original));
        EXPECT_EQ(parsed.name, original.name);
        EXPECT_EQ(parsed.family, original.family);
        EXPECT_EQ(parsed.layers, original.layers);
        EXPECT_EQ(parsed.hidden, original.hidden);
        EXPECT_EQ(parsed.heads, original.heads);
        EXPECT_EQ(parsed.kvHeads, original.kvHeads);
        EXPECT_EQ(parsed.intermediate, original.intermediate);
        EXPECT_EQ(parsed.vocab, original.vocab);
        EXPECT_EQ(parsed.activation, original.activation);
        EXPECT_EQ(parsed.norm, original.norm);
        EXPECT_EQ(parsed.rotary, original.rotary);
        EXPECT_EQ(parsed.fusedQkv, original.fusedQkv);
        EXPECT_EQ(parsed.biases, original.biases);
        EXPECT_EQ(parsed.pooler, original.pooler);
        EXPECT_NEAR(parsed.paramsM(), original.paramsM(), 1e-9);
    }
}

TEST(ModelSerde, PartialDocumentKeepsDefaults)
{
    workload::ModelConfig m = workload::modelFromJson(
        json::parse(R"({"name": "tiny", "layers": 2, "hidden": 128,
                        "heads": 2})"));
    EXPECT_EQ(m.name, "tiny");
    EXPECT_EQ(m.layers, 2);
    EXPECT_EQ(m.kvHeads, 2); // defaults to heads
}

TEST(ModelSerde, ValidationRejectsInconsistentDims)
{
    EXPECT_THROW(workload::modelFromJson(json::parse(
                     R"({"hidden": 100, "heads": 3})")),
                 FatalError);
    EXPECT_THROW(workload::modelFromJson(json::parse(
                     R"({"heads": 8, "kv_heads": 3, "hidden": 64})")),
                 FatalError);
    EXPECT_THROW(workload::modelFromJson(json::parse(
                     R"({"layers": 0})")),
                 FatalError);
    EXPECT_THROW(workload::modelFromJson(json::parse(
                     R"({"family": "mystery"})")),
                 FatalError);
    EXPECT_THROW(workload::modelFromJson(json::parse(
                     R"({"activation": "swish"})")),
                 FatalError);
    EXPECT_THROW(workload::modelFromJson(json::parse(
                     R"({"norm": "batch_norm"})")),
                 FatalError);
}

TEST(ModelSerde, FileRoundTripAndProfile)
{
    std::string path = testing::TempDir() + "/skipsim_model.json";
    workload::saveModel(path, workload::llama32_1b());
    workload::ModelConfig loaded = workload::loadModel(path);
    EXPECT_EQ(loaded.name, "Llama-3.2-1B");

    skip::ProfileResult run = skip::profilePrefill(
        loaded, hw::platforms::gh200(), 1, 128);
    EXPECT_EQ(run.metrics.numKernels, 570u);
}

// --------------------------------------------------------- schema version

TEST(SchemaVersion, SpecsStampCurrentVersion)
{
    EXPECT_EQ(exec::RunSpec().toJson().asObject()
                  .at("schema_version").asInt(),
              json::kSchemaVersion);

    exec::SweepSpec sweep;
    sweep.models = {workload::gpt2()};
    sweep.platforms = {hw::platforms::gh200()};
    EXPECT_EQ(sweep.toJson().asObject().at("schema_version").asInt(),
              json::kSchemaVersion);

    cluster::ClusterSpec cspec;
    cspec.model = workload::gpt2();
    cluster::ReplicaSpec replica;
    replica.platform = hw::platforms::gh200();
    cspec.replicas = {replica};
    EXPECT_EQ(cspec.toJson().asObject().at("schema_version").asInt(),
              json::kSchemaVersion);
}

TEST(SchemaVersion, RoundTripPreservesSpecs)
{
    exec::RunSpec run = exec::RunSpec::of("GPT2")
                            .on("GH200")
                            .batch(4)
                            .strOpt("scenario", "mmpp-diurnal");
    const exec::RunSpec run2 = exec::RunSpec::fromJson(run.toJson());
    EXPECT_EQ(run2.batch(), 4);
    EXPECT_EQ(run2.strOpt("scenario", ""), "mmpp-diurnal");

    exec::SweepSpec sweep;
    sweep.models = {workload::gpt2()};
    sweep.platforms = {hw::platforms::gh200()};
    sweep.strOptions["scenario"] = "chat-sessions";
    exec::SweepSpec sweep2 = exec::SweepSpec::fromJson(sweep.toJson());
    EXPECT_EQ(sweep2.strOptions.at("scenario"), "chat-sessions");
    // str_options propagate onto every expanded point.
    const exec::RunSpec point = sweep2.at(0);
    EXPECT_EQ(point.strOpt("scenario", ""), "chat-sessions");
}

TEST(SchemaVersion, MissingVersionIsAccepted)
{
    // Documents from before the field existed still load.
    exec::RunSpec run = exec::RunSpec::fromJson(
        json::parse(R"({"model": "GPT2", "platform": "GH200"})"));
    EXPECT_EQ(run.model().name, "GPT2");
}

TEST(SchemaVersion, UnknownVersionIsRejected)
{
    EXPECT_THROW(exec::RunSpec::fromJson(json::parse(
                     R"({"schema_version": 99, "model": "GPT2"})")),
                 FatalError);
    EXPECT_THROW(exec::SweepSpec::fromJson(json::parse(
                     R"({"schema_version": 99,
                         "models": ["GPT2"],
                         "platforms": ["GH200"]})")),
                 FatalError);
    EXPECT_THROW(cluster::ClusterSpec::fromJson(json::parse(
                     R"({"schema_version": 99, "model": "GPT2",
                         "replicas": [{"platform": "GH200"}]})")),
                 FatalError);

    // The error says which document kind and which versions this build
    // reads.
    try {
        exec::RunSpec::fromJson(
            json::parse(R"({"schema_version": 99})"));
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("schema_version 99"),
                  std::string::npos)
            << err.what();
        EXPECT_NE(std::string(err.what()).find("RunSpec"),
                  std::string::npos)
            << err.what();
    }
}

} // namespace
} // namespace skipsim
