/**
 * @file
 * Tests for the serving layer (latency model + dynamic-batching
 * simulation), the operator breakdown and the ASCII timeline renderer.
 */

#include <gtest/gtest.h>

#include "analysis/sweep.hh"
#include "common/logging.hh"
#include "hw/catalog.hh"
#include "serving/latency_model.hh"
#include "serving/server_sim.hh"
#include "skip/op_breakdown.hh"
#include "skip/profile.hh"
#include "trace/timeline.hh"

namespace skipsim
{
namespace
{

/** A synthetic sweep with latency(batch) = base + slope * batch. */
analysis::SweepResult
linearSweep(double base_ns, double slope_ns)
{
    analysis::SweepResult sweep;
    sweep.modelName = "synthetic";
    sweep.platformName = "test";
    for (int batch : {1, 2, 4, 8, 16, 32}) {
        analysis::SweepPoint point;
        point.batch = batch;
        point.metrics.ilNs = base_ns + slope_ns * batch;
        sweep.points.push_back(point);
    }
    return sweep;
}

// ----------------------------------------------------------- latency model

TEST(LatencyModel, InterpolatesAndExtrapolates)
{
    serving::LatencyModel model(linearSweep(1e6, 1e5));
    EXPECT_NEAR(model.latencyNs(1), 1.1e6, 1.0);
    EXPECT_NEAR(model.latencyNs(3), 1.3e6, 1.0);   // interpolated
    EXPECT_NEAR(model.latencyNs(64), 7.4e6, 1e3);  // extrapolated
    EXPECT_EQ(model.maxMeasuredBatch(), 32);
    EXPECT_EQ(model.modelName(), "synthetic");
}

TEST(LatencyModel, RejectsDegenerateInputs)
{
    analysis::SweepResult sweep;
    sweep.points.resize(1);
    sweep.points[0].batch = 1;
    EXPECT_THROW(serving::LatencyModel{sweep}, FatalError);

    serving::LatencyModel model(linearSweep(1e6, 1e5));
    EXPECT_THROW(model.latencyNs(0), FatalError);
}

TEST(LatencyModel, WorksOnRealSweep)
{
    analysis::SweepResult sweep = analysis::runBatchSweep(
        workload::gpt2(), hw::platforms::gh200(), {1, 4, 16}, 256);
    serving::LatencyModel model(sweep);
    EXPECT_GT(model.latencyNs(1), 0.0);
    EXPECT_GE(model.latencyNs(64), model.latencyNs(16));
}

// ------------------------------------------------------------- serving sim

serving::ServingConfig
config(double rate, int max_batch = 32, double wait_ns = 5e6)
{
    serving::ServingConfig c;
    c.arrivalRatePerSec = rate;
    c.horizonSec = 20.0;
    c.maxBatch = max_batch;
    c.maxWaitNs = wait_ns;
    return c;
}

TEST(ServingSim, LowLoadServesSinglesFast)
{
    // 5 rps against a ~1.1 ms service: no queueing, batch ~1, latency
    // ~ service + batching wait.
    serving::LatencyModel model(linearSweep(1e6, 1e5));
    serving::ServingResult result =
        serving::simulateServing(model, config(5.0, 32, 0.0));
    EXPECT_GT(result.completed, 50u);
    EXPECT_NEAR(result.meanBatch, 1.0, 0.1);
    EXPECT_LT(result.p50LatencyNs, 1.5e6);
    EXPECT_LT(result.utilization, 0.05);
    EXPECT_EQ(result.leftInQueue, 0u);
}

TEST(ServingSim, HighLoadFormsBatches)
{
    // 5000 rps: batches grow toward the cap and utilization rises.
    serving::LatencyModel model(linearSweep(1e6, 1e5));
    serving::ServingResult low =
        serving::simulateServing(model, config(50.0));
    serving::ServingResult high =
        serving::simulateServing(model, config(5000.0));
    EXPECT_GT(high.meanBatch, 4.0 * low.meanBatch);
    EXPECT_GT(high.utilization, low.utilization);
    EXPECT_GT(high.throughputRps, 10.0 * low.throughputRps);
}

TEST(ServingSim, OverloadLeavesQueueBehind)
{
    // Service capacity ~ maxBatch / latency(maxBatch): 4 / 1.4ms ~
    // 2850 rps. Offer 4x that.
    serving::LatencyModel model(linearSweep(1e6, 1e5));
    serving::ServingResult result =
        serving::simulateServing(model, config(12000.0, 4));
    EXPECT_GT(result.leftInQueue, 0u);
    EXPECT_GT(result.utilization, 0.95);
    EXPECT_LT(result.throughputRps, 4000.0);
}

TEST(ServingSim, MaxWaitBoundsBatchingDelay)
{
    serving::LatencyModel model(linearSweep(1e6, 1e5));
    // Long wait allows batching even at modest load.
    serving::ServingResult patient =
        serving::simulateServing(model, config(2000.0, 32, 20e6));
    serving::ServingResult eager_cfg =
        serving::simulateServing(model, config(2000.0, 32, 0.0));
    EXPECT_GT(patient.meanBatch, eager_cfg.meanBatch);
}

TEST(ServingSim, DeterministicGivenSeed)
{
    serving::LatencyModel model(linearSweep(1e6, 1e5));
    serving::ServingResult a =
        serving::simulateServing(model, config(500.0));
    serving::ServingResult b =
        serving::simulateServing(model, config(500.0));
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_DOUBLE_EQ(a.p99LatencyNs, b.p99LatencyNs);
}

TEST(ServingSim, PercentilesOrdered)
{
    serving::LatencyModel model(linearSweep(1e6, 1e5));
    serving::ServingResult result =
        serving::simulateServing(model, config(2000.0));
    EXPECT_LE(result.p50LatencyNs, result.p95LatencyNs);
    EXPECT_LE(result.p95LatencyNs, result.p99LatencyNs);
    EXPECT_GT(result.meanLatencyNs, 0.0);
}

TEST(ServingSim, TtftSharesTheLatencyVocabulary)
{
    // One forward pass serves the whole request in this sim, so TTFT
    // (arrival -> first decode step) coincides with end-to-end
    // latency; the fields exist so single-instance and cluster
    // reports read the same.
    serving::LatencyModel model(linearSweep(1e6, 1e5));
    serving::ServingResult result =
        serving::simulateServing(model, config(2000.0));
    EXPECT_GT(result.p50TtftNs, 0.0);
    EXPECT_LE(result.p50TtftNs, result.p95TtftNs);
    EXPECT_LE(result.p95TtftNs, result.p99TtftNs);
    EXPECT_DOUBLE_EQ(result.p50TtftNs, result.p50LatencyNs);
    EXPECT_DOUBLE_EQ(result.p99TtftNs, result.p99LatencyNs);
}

TEST(ServingSim, InvalidConfigsThrow)
{
    serving::LatencyModel model(linearSweep(1e6, 1e5));
    EXPECT_THROW(serving::simulateServing(model, config(0.0)),
                 FatalError);
    EXPECT_THROW(serving::simulateServing(model, config(10.0, 0)),
                 FatalError);
    serving::ServingConfig bad = config(10.0);
    bad.horizonSec = 0.0;
    EXPECT_THROW(serving::simulateServing(model, bad), FatalError);
    bad = config(10.0);
    bad.maxWaitNs = -1.0;
    EXPECT_THROW(serving::simulateServing(model, bad), FatalError);
}

// ------------------------------------------------------------ op breakdown

TEST(OpBreakdown, AttributesCpuAndGpu)
{
    skip::ProfileResult run = skip::profilePrefill(
        workload::bertBaseUncased(), hw::platforms::intelH100(), 1, 256);
    skip::DependencyGraph dep = skip::DependencyGraph::build(run.trace);
    skip::OpBreakdown breakdown = skip::computeOpBreakdown(dep);

    ASSERT_FALSE(breakdown.byOp.empty());
    EXPECT_GT(breakdown.totalCpuNs, 0.0);

    // aten::linear dominates BERT's CPU time (6 calls x 12 layers).
    EXPECT_EQ(breakdown.byOp.front().opName, "aten::linear");
    EXPECT_EQ(breakdown.byOp.front().count, 73u); // 72 + pooler
    EXPECT_GT(breakdown.byOp.front().gpuNs, 0.0);
    EXPECT_EQ(breakdown.byOp.front().kernelLaunches, 73u);

    // Sorted by CPU time descending.
    for (std::size_t i = 1; i < breakdown.byOp.size(); ++i) {
        EXPECT_GE(breakdown.byOp[i - 1].cpuNs,
                  breakdown.byOp[i].cpuNs);
    }

    // Launch counts over all ops equal the kernel total.
    std::size_t launches = 0;
    for (const auto &stat : breakdown.byOp)
        launches += stat.kernelLaunches;
    EXPECT_EQ(launches, run.metrics.numKernels);
}

TEST(OpBreakdown, RenderAndJson)
{
    skip::ProfileResult run = skip::profilePrefill(
        workload::gpt2(), hw::platforms::gh200(), 1, 128);
    skip::DependencyGraph dep = skip::DependencyGraph::build(run.trace);
    skip::OpBreakdown breakdown = skip::computeOpBreakdown(dep);

    std::string text = breakdown.render(5);
    EXPECT_NE(text.find("Operator"), std::string::npos);

    json::Value doc = breakdown.toJson();
    EXPECT_EQ(doc.asObject().at("ops").asArray().size(),
              breakdown.byOp.size());
}

// ---------------------------------------------------------------- timeline

TEST(Timeline, RendersThreeRows)
{
    skip::ProfileResult run = skip::profilePrefill(
        workload::gpt2(), hw::platforms::intelH100(), 1, 128);
    trace::TimelineOptions opts;
    opts.width = 60;
    std::string out = trace::renderTimeline(run.trace, opts);
    EXPECT_NE(out.find("CPU ops"), std::string::npos);
    EXPECT_NE(out.find("CUDA API"), std::string::npos);
    EXPECT_NE(out.find("GPU"), std::string::npos);
    // Four lines: header + three rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Timeline, CpuBoundRunShowsBusyCpuSparseGpu)
{
    skip::ProfileResult run = skip::profilePrefill(
        workload::bertBaseUncased(), hw::platforms::gh200(), 1);
    trace::TimelineOptions opts;
    opts.width = 50;
    std::string out = trace::renderTimeline(run.trace, opts);

    auto row_of = [&](const std::string &label) {
        std::size_t pos = out.find(label);
        std::size_t bar = out.find('|', pos);
        return out.substr(bar + 1, opts.width);
    };
    auto busy_cols = [](const std::string &row) {
        std::size_t n = 0;
        for (char c : row) {
            if (c == '#' || c == '+')
                ++n;
        }
        return n;
    };
    EXPECT_GT(busy_cols(row_of("CPU ops")),
              2 * busy_cols(row_of("GPU")));
}

TEST(Timeline, InvalidInputsThrow)
{
    trace::Trace empty;
    EXPECT_THROW(trace::renderTimeline(empty), FatalError);

    skip::ProfileResult run = skip::profilePrefill(
        workload::gpt2(), hw::platforms::gh200(), 1, 128);
    trace::TimelineOptions opts;
    opts.width = 0;
    EXPECT_THROW(trace::renderTimeline(run.trace, opts), FatalError);
}

TEST(Timeline, WindowRestrictsRange)
{
    skip::ProfileResult run = skip::profilePrefill(
        workload::gpt2(), hw::platforms::gh200(), 1, 128);
    trace::TimelineOptions opts;
    opts.width = 40;
    opts.beginNs = 0;
    opts.endNs = run.trace.endNs() / 10;
    EXPECT_NO_THROW(trace::renderTimeline(run.trace, opts));

    opts.endNs = opts.beginNs;
    opts.beginNs = 100;
    opts.endNs = 50; // treated as unset -> full trace
    EXPECT_NO_THROW(trace::renderTimeline(run.trace, opts));
}

} // namespace
} // namespace skipsim
