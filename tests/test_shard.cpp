/**
 * @file
 * Sharded-engine suite: the deterministic K-way merge of
 * core::ShardedEngine (order, mailbox traffic, lookahead accounting),
 * the cluster-level shard-identity contract (report, obs JSON and
 * span export byte-identical across the jobs x shards matrix on a
 * fault-injected disaggregated spec), the staged-dispatch bandwidth
 * contention coupling, and the --shards / ClusterSpec::shards
 * validation surface.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hh"
#include "common/cli.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "core/engine.hh"
#include "core/sharded_engine.hh"
#include "exec/pool.hh"
#include "hw/catalog.hh"
#include "json/writer.hh"
#include "kv/tier.hh"
#include "obs/collector.hh"
#include "obs/span.hh"
#include "serving/arrival.hh"
#include "workload/model_config.hh"

using namespace skipsim;

namespace
{

// ----------------------------------------------------- merge order

TEST(ShardedEngine, MergeOrderMatchesSingleQueue)
{
    // The same randomized (time, priority) schedule, posted in the
    // same order, must execute identically on one queue and on a
    // three-way partition: the global seq serial plus the argmin
    // merge reproduce the single-queue total order exactly.
    const int n = 256;
    Rng rng(7);
    std::vector<double> times(n);
    std::vector<int> prios(n);
    for (int i = 0; i < n; ++i) {
        times[i] = rng.uniform(0.0, 1000.0);
        prios[i] = static_cast<int>(rng.below(4));
    }

    std::vector<int> single_order;
    core::Engine engine;
    for (int i = 0; i < n; ++i)
        engine.at(times[i], prios[i],
                  [&single_order, i](double) {
                      single_order.push_back(i);
                  });
    engine.run();

    std::vector<int> sharded_order;
    core::ShardedEngine sharded(3);
    for (int i = 0; i < n; ++i)
        sharded.shard(static_cast<std::size_t>(i) % 3)
            .at(times[i], prios[i],
                [&sharded_order, i](double) {
                    sharded_order.push_back(i);
                });
    EXPECT_EQ(sharded.pendingEvents(), static_cast<std::size_t>(n));
    EXPECT_FALSE(sharded.idle());
    EXPECT_EQ(sharded.run(), static_cast<std::size_t>(n));

    ASSERT_EQ(single_order.size(), sharded_order.size());
    EXPECT_EQ(single_order, sharded_order);
    EXPECT_TRUE(sharded.idle());
    EXPECT_EQ(sharded.stats().events, static_cast<std::uint64_t>(n));
    // Setup postings are never cross-shard.
    EXPECT_EQ(sharded.stats().crossShardMessages, 0u);
}

TEST(ShardedEngine, TieBreakIsPriorityThenSeq)
{
    // Three shards, four events at the same timestamp: priority
    // breaks the tie first, then the global posting serial.
    core::ShardedEngine engine(3);
    std::vector<std::string> order;
    auto record = [&order](std::string tag) {
        return [&order, tag](double) { order.push_back(tag); };
    };
    engine.shard(0).at(5.0, 2, record("p2"));
    engine.shard(1).at(5.0, 0, record("p0-first"));
    engine.shard(2).at(5.0, 1, record("p1"));
    engine.shard(0).at(5.0, 0, record("p0-second"));
    engine.run();
    EXPECT_EQ(order,
              (std::vector<std::string>{"p0-first", "p0-second", "p1",
                                        "p2"}));
}

// ------------------------------------------- mailboxes + lookahead

TEST(ShardedEngine, CrossShardPostingGoesThroughMailbox)
{
    core::ShardedEngine engine(2);
    bool delivered = false;
    engine.shard(0).at(10.0, 0, [&](double now) {
        // Handler on shard 0 schedules onto shard 1: this is the
        // mailbox path, counted as cross-shard traffic.
        engine.shard(1).at(now + 5.0, 0,
                           [&delivered](double) { delivered = true; });
        // Same-shard postings from a handler are not.
        engine.shard(0).at(now + 1.0, 0, nullptr);
    });
    EXPECT_EQ(engine.run(), 3u);
    EXPECT_TRUE(delivered);
    EXPECT_EQ(engine.stats().crossShardMessages, 1u);
    EXPECT_EQ(engine.stats().events, 3u);
}

TEST(ShardedEngine, LookaheadViolationAccounting)
{
    core::ShardedEngine engine(2, /*lookaheadNs=*/10.0);
    engine.shard(0).at(0.0, 0, [&](double now) {
        // Arrives sooner than the lookahead promises: a violation.
        engine.shard(1).at(now + 5.0, 0, nullptr);
        // At or past the lookahead horizon: fine.
        engine.shard(1).at(now + 20.0, 0, nullptr);
    });
    engine.run();
    EXPECT_EQ(engine.stats().crossShardMessages, 2u);
    EXPECT_EQ(engine.stats().lookaheadViolations, 1u);
    EXPECT_DOUBLE_EQ(engine.stats().lookaheadNs, 10.0);
}

TEST(ShardedEngine, WindowsBatchEventsUnderLookahead)
{
    // Lookahead 100: events at t=0/50/75 share the first window,
    // t=500 opens a second one.
    core::ShardedEngine engine(4, /*lookaheadNs=*/100.0);
    engine.shard(0).at(0.0, 0, nullptr);
    engine.shard(1).at(50.0, 0, nullptr);
    engine.shard(2).at(75.0, 0, nullptr);
    engine.shard(3).at(500.0, 0, nullptr);
    EXPECT_EQ(engine.run(), 4u);
    EXPECT_EQ(engine.stats().windows, 2u);
    EXPECT_EQ(engine.stats().events, 4u);
    EXPECT_EQ(engine.stats().shards, 4u);
}

TEST(ShardedEngine, RejectsDegenerateConfigs)
{
    EXPECT_THROW(core::ShardedEngine(0), PanicError);
    EXPECT_THROW(core::ShardedEngine(2, -1.0), PanicError);
    core::ShardedEngine engine(2);
    EXPECT_THROW(engine.shard(2), PanicError);
}

// ------------------------------------------------ validation (S6)

cluster::ClusterSpec
tinySpec()
{
    cluster::ClusterSpec spec;
    spec.model = workload::gpt2();
    cluster::ReplicaSpec replica;
    replica.platform = hw::platforms::gh200();
    replica.maxActive = 8;
    spec.replicas = {replica, replica};
    spec.arrivalRatePerSec = 40.0;
    spec.horizonSec = 2.0;
    spec.promptLen = 64;
    spec.genTokens = 4;
    spec.seed = 7;
    return spec;
}

TEST(ShardSpec, ValidateRejectsBadShardCounts)
{
    cluster::ClusterSpec spec = tinySpec();
    spec.shards = 0;
    try {
        spec.validate();
        FAIL() << "shards 0 accepted";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("shards"),
                  std::string::npos);
    }
    spec.shards = 3; // > the 2-replica fleet
    try {
        spec.validate();
        FAIL() << "shards > replicas accepted";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("replica"),
                  std::string::npos)
            << err.what();
    }
    spec.shards = 2;
    EXPECT_NO_THROW(spec.validate());
    spec.dispatchUs = -1.0;
    EXPECT_THROW(spec.validate(), FatalError);
}

TEST(ShardRunFlags, RejectsNonPositiveShards)
{
    auto parse = [](std::vector<const char *> argv) {
        argv.insert(argv.begin(), "test");
        CliArgs args(static_cast<int>(argv.size()), argv.data());
        return parseRunFlags(args);
    };
    // Regression: --shards 0 / negative must fail up front naming the
    // flag (same contract as --obs-interval-ms), not surface later as
    // a ShardedEngine panic.
    try {
        parse({"--shards", "0"});
        FAIL() << "shards 0 accepted";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("--shards"),
                  std::string::npos);
    }
    EXPECT_THROW(parse({"--shards=-2"}), FatalError);
    EXPECT_EQ(parse({"--shards", "4"}).shards, 4);
    EXPECT_EQ(parse({}).shards, 0); // unset sentinel: use the spec's
}

TEST(ShardSerde, ShardsAcceptedOnImportNeverEmitted)
{
    cluster::ClusterSpec spec = tinySpec();
    spec.shards = 2;
    spec.dispatchUs = 5.0;
    spec.stagedDispatch = true;
    std::string text = json::write(spec.toJson());
    // Execution topology must not leak into the spec echo (reports
    // embed it, and they are byte-identical at any shard count)...
    EXPECT_EQ(text.find("shards"), std::string::npos);
    // ...while the modelled dispatch hop is scenario identity and
    // round-trips.
    EXPECT_NE(text.find("dispatch-us"), std::string::npos);
    EXPECT_NE(text.find("staged-dispatch"), std::string::npos);
    cluster::ClusterSpec back =
        cluster::ClusterSpec::fromJson(spec.toJson());
    EXPECT_EQ(back.shards, 1);
    EXPECT_DOUBLE_EQ(back.dispatchUs, 5.0);
    EXPECT_TRUE(back.stagedDispatch);

    // Spec files may still pin the topology explicitly.
    json::Value doc = spec.toJson();
    json::Object obj = doc.asObject();
    obj.set("shards", 2.0);
    back = cluster::ClusterSpec::fromJson(json::Value(std::move(obj)));
    EXPECT_EQ(back.shards, 2);

    // Defaults stay silent: a default spec mentions neither knob.
    std::string plain = json::write(tinySpec().toJson());
    EXPECT_EQ(plain.find("dispatch-us"), std::string::npos);
    EXPECT_EQ(plain.find("staged-dispatch"), std::string::npos);
}

TEST(ShardRunFlags, RejectsOutOfRangeShardThreads)
{
    auto parse = [](std::vector<const char *> argv) {
        argv.insert(argv.begin(), "test");
        CliArgs args(static_cast<int>(argv.size()), argv.data());
        return parseRunFlags(args);
    };
    // Same up-front contract as --shards: a bad thread count must fail
    // at the CLI naming the flag, not surface later from the engine.
    try {
        parse({"--shard-threads", "0"});
        FAIL() << "shard-threads 0 accepted";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("--shard-threads"),
                  std::string::npos);
    }
    EXPECT_THROW(parse({"--shard-threads=-3"}), FatalError);

    // Oversubscription is rejected too, and the message names the
    // machine's actual capacity so the user can pick a sane value.
    const unsigned hw = std::thread::hardware_concurrency();
    const int cap = hw == 0 ? 1 : static_cast<int>(hw);
    std::string over = std::to_string(cap + 1);
    try {
        parse({"--shard-threads", over.c_str()});
        FAIL() << "shard-threads " << over << " accepted on a machine "
               << "with " << cap << " hardware thread(s)";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("--shard-threads"),
                  std::string::npos);
        EXPECT_NE(
            std::string(err.what()).find(std::to_string(cap)),
            std::string::npos);
    }
    std::string max = std::to_string(cap);
    EXPECT_EQ(parse({"--shard-threads", max.c_str()}).shardThreads,
              cap);
    EXPECT_EQ(parse({}).shardThreads, 0); // unset sentinel
}

TEST(ShardRunFlags, QueueKindValidated)
{
    auto parse = [](std::vector<const char *> argv) {
        argv.insert(argv.begin(), "test");
        CliArgs args(static_cast<int>(argv.size()), argv.data());
        return parseRunFlags(args);
    };
    try {
        parse({"--queue", "splay"});
        FAIL() << "queue kind 'splay' accepted";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("--queue"),
                  std::string::npos);
    }
    EXPECT_EQ(parse({"--queue", "heap"}).queue, "heap");
    EXPECT_EQ(parse({"--queue", "calendar"}).queue, "calendar");
    EXPECT_EQ(parse({}).queue, ""); // unset: keep the process default
}

TEST(ShardSerde, ShardThreadsAcceptedOnImportNeverEmitted)
{
    cluster::ClusterSpec spec = tinySpec();
    spec.shardThreads = 4;
    std::string text = json::write(spec.toJson());
    // Worker count is execution topology, not scenario identity:
    // reports stay byte-identical at any thread count, so the spec
    // echo must not mention it.
    EXPECT_EQ(text.find("shard-threads"), std::string::npos);
    cluster::ClusterSpec back =
        cluster::ClusterSpec::fromJson(spec.toJson());
    EXPECT_EQ(back.shardThreads, 1);

    // Spec files may still pin the topology explicitly.
    json::Value doc = spec.toJson();
    json::Object obj = doc.asObject();
    obj.set("shard-threads", 4.0);
    back = cluster::ClusterSpec::fromJson(json::Value(std::move(obj)));
    EXPECT_EQ(back.shardThreads, 4);
}

// ------------------------------------- jobs x shards identity (S3)

/**
 * The adversarial spec for the identity matrix: a disaggregated
 * prefill/decode fleet on a PCIe platform (staging lanes live), an
 * explicit dispatch hop (non-zero lookahead), staged dispatch, a
 * mid-run crash, and a two-point rate sweep so --jobs has something
 * to fan across.
 */
cluster::ClusterSpec
matrixSpec()
{
    cluster::ClusterSpec spec;
    spec.model = workload::gpt2();
    cluster::ReplicaSpec replica;
    replica.platform = hw::platforms::intelH100();
    replica.maxActive = 8;
    replica.role = cluster::ReplicaRole::Prefill;
    spec.replicas.push_back(replica);
    replica.role = cluster::ReplicaRole::Decode;
    spec.replicas.push_back(replica);
    spec.replicas.push_back(replica);
    spec.replicas.push_back(replica);
    spec.rates = {30.0, 60.0};
    spec.arrivalRatePerSec = 30.0;
    spec.horizonSec = 3.0;
    spec.promptLen = 64;
    spec.genTokens = 8;
    spec.sessions = 32;
    spec.dispatchUs = 5.0;
    spec.stagedDispatch = true;
    spec.seed = 7;
    cluster::FaultSpec fault;
    fault.atSec = 1.5;
    fault.replica = 2;
    fault.kind = cluster::FaultKind::Crash;
    spec.faults.push_back(fault);
    return spec;
}

TEST(ShardMatrix, ReportObsSpansIdenticalAcrossJobsAndShards)
{
    cluster::ClusterSpec base = matrixSpec();
    cluster::CostCache costs;
    costs.build(base);

    struct Axis
    {
        int shards;
        int threads;
    };
    // The threads axis exercises the worker-team execution mode: the
    // byte-identity contract must hold when whole shard windows run
    // on a parallel team, not just across partition counts.
    const std::vector<Axis> axes = {
        {1, 1}, {2, 1}, {4, 1}, {2, 2}, {4, 2}, {4, 4}};
    std::string reference;
    for (int jobs : {1, 8}) {
        for (const Axis &axis : axes) {
            const int shards = axis.shards;
            cluster::ClusterSpec spec = base;
            spec.shards = shards;
            spec.shardThreads = axis.threads;
            std::size_t n = spec.scenarioCount();
            ASSERT_EQ(n, 2u);
            std::vector<cluster::ClusterResult> results(n);
            std::vector<std::unique_ptr<obs::Collector>> collectors(n);
            std::vector<std::unique_ptr<obs::SpanLog>> spans(n);
            std::vector<core::ShardStats> stats(n);
            for (std::size_t i = 0; i < n; ++i) {
                collectors[i] = std::make_unique<obs::Collector>(50.0);
                spans[i] = std::make_unique<obs::SpanLog>();
            }
            exec::Pool pool(jobs);
            pool.run(n, [&](std::size_t i) {
                results[i] = cluster::simulateCluster(
                    spec.scenarioAt(i), costs, collectors[i].get(),
                    spans[i].get(), &stats[i]);
            });
            std::string doc;
            for (std::size_t i = 0; i < n; ++i) {
                doc += json::write(results[i].toJson());
                doc += json::write(collectors[i]->toJson());
                doc += spans[i]->toChromeText();
            }
            if (reference.empty())
                reference = doc;
            EXPECT_EQ(doc, reference)
                << "output diverged at jobs=" << jobs
                << " shards=" << shards
                << " shard-threads=" << axis.threads;
            for (std::size_t i = 0; i < n; ++i) {
                EXPECT_EQ(stats[i].shards,
                          static_cast<std::size_t>(shards));
                // The run must be a real partition (mailbox traffic
                // flows) yet never break its lookahead promise.
                if (shards > 1) {
                    EXPECT_GT(stats[i].crossShardMessages, 0u);
                }
                EXPECT_EQ(stats[i].lookaheadViolations, 0u);
                EXPECT_GT(stats[i].events, 0u);
                if (axis.threads > 1 && shards > 1) {
                    // Threaded identity must not be vacuous: the
                    // worker team has to actually commit events
                    // through parallel windows.
                    EXPECT_GT(stats[i].parallelWindows, 0u)
                        << "no parallel windows at shards=" << shards
                        << " shard-threads=" << axis.threads;
                    EXPECT_GT(stats[i].parallelEvents, 0u);
                }
            }
        }
    }
    ASSERT_FALSE(reference.empty());
}

// ------------------------------------ staged-dispatch contention (S1)

/**
 * KV-pressured disaggregated PCIe pair with a deliberately slow link:
 * every finished prefill pages its sequence's KV out over the prefill
 * replica's lane (the handoff into decode), and the squeezed HBM adds
 * eviction page-outs on top — so a staged dispatch (admission gated on
 * the prompt's staging transfer) queues behind that KV traffic.
 *
 * @p gen_tokens is the traffic dial: at 1 there is no decode phase,
 * hence no handoffs and no KV pressure — the lane carries only the
 * staging transfers themselves, while the prefill-side request flow
 * (arrivals, routing, prefill compute) is byte-for-byte the same as
 * the heavy run.
 */
cluster::ClusterSpec
contentionSpec(int gen_tokens, bool staged)
{
    cluster::ClusterSpec spec;
    spec.model = workload::gpt2();
    cluster::ReplicaSpec replica;
    replica.platform = hw::platforms::intelH100();
    replica.platform.gpu.hbmCapacityGiB = 0.30;
    replica.platform.link.bwGBs = 0.5; // slow lane: contention bites
    replica.maxActive = 8;
    cluster::ReplicaSpec prefill = replica;
    prefill.role = cluster::ReplicaRole::Prefill;
    cluster::ReplicaSpec decode = replica;
    decode.role = cluster::ReplicaRole::Decode;
    spec.replicas = {prefill, decode};
    spec.arrivalRatePerSec = 25.0;
    spec.horizonSec = 8.0;
    spec.promptLen = 256; // big KV footprint: ~10 MB/seq page-outs
    spec.genTokens = gen_tokens;
    spec.sessions = 64;
    spec.seed = 7;
    spec.stagedDispatch = staged;
    spec.kvTier.policy = kv::OffloadPolicy::LruBySession;
    spec.kvTier.hostCapacityGiB = 1.0;
    spec.kvTier.watermarkFrac = 0.9;
    return spec;
}

TEST(ShardContention, StagedDispatchQueuesBehindKvOffloadTraffic)
{
    cluster::CostCache costs;
    costs.build(contentionSpec(16, false));

    auto run = [&](int gen_tokens, bool staged) {
        return cluster::simulateCluster(
            contentionSpec(gen_tokens, staged), costs);
    };
    cluster::ClusterResult heavy_off = run(16, false);
    cluster::ClusterResult heavy_on = run(16, true);
    cluster::ClusterResult light_off = run(1, false);
    cluster::ClusterResult light_on = run(1, true);

    ASSERT_GT(heavy_on.kv.offloads, 0u)
        << "spec no longer generates offload traffic";
    // The two unstaged controls must agree at the median: decode-side
    // traffic does not touch prefill compute, so any staged-mode gap
    // between heavy and light is lane contention, not workload drift.
    EXPECT_DOUBLE_EQ(heavy_off.p50TtftNs, light_off.p50TtftNs);

    // Gating admission on the staging transfer costs exactly the
    // uncontended transfer time when the lane is idle (the light
    // delta); under heavy KV traffic the median dispatch must queue
    // behind page-outs and pay several times that.
    double delta_heavy = heavy_on.p50TtftNs - heavy_off.p50TtftNs;
    double delta_light = light_on.p50TtftNs - light_off.p50TtftNs;
    EXPECT_GT(delta_light, 0.0);
    EXPECT_GT(delta_heavy, 2.0 * delta_light);
    // The tail pays too: p99 dispatch latency rises under offload.
    EXPECT_GT(heavy_on.p99TtftNs - heavy_off.p99TtftNs, delta_light);
}

} // namespace
