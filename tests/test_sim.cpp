/**
 * @file
 * Unit tests for the discrete-event simulator: launch/queue timing
 * semantics (paper Fig. 4), determinism, memcpy handling on LC vs CC
 * platforms, and trace well-formedness.
 */

#include <gtest/gtest.h>

#include "check/invariants.hh"
#include "common/logging.hh"
#include "hw/catalog.hh"
#include "sim/simulator.hh"
#include "workload/builder.hh"
#include "workload/op_graph.hh"

namespace skipsim::sim
{
namespace
{

using workload::KernelLaunch;
using workload::OpNode;
using workload::OperatorGraph;

/** A platform with round numbers for hand-checkable timing. */
hw::Platform
toyPlatform()
{
    hw::Platform p;
    p.name = "toy";
    p.coupling = hw::Coupling::LooselyCoupled;
    p.unifiedMemory = false;
    p.cpu.singleThreadScore = 1.0;
    p.cpu.launchOverheadNs = 2000.0;
    p.cpu.launchCpuNs = 1000.0;
    p.cpu.syncCallNs = 500.0;
    p.gpu.fp16Tflops = 1000.0;
    p.gpu.memBwGBs = 1000.0;
    p.gpu.minKernelNs = 1500.0;
    p.gpu.maxGemmEff = 0.5;
    p.gpu.gemmHalfWorkFlops = 1e9;
    p.gpu.gemmHalfRows = 1000.0;
    p.gpu.memEff = 1.0;
    p.gpu.interKernelGapNs = 100.0;
    p.link.bwGBs = 10.0;
    p.link.latencyNs = 1000.0;
    return p;
}

SimOptions
noJitter()
{
    SimOptions opts;
    opts.jitter = false;
    return opts;
}

OperatorGraph
singleKernelGraph(double cpu_ns = 10000.0)
{
    OperatorGraph graph;
    hw::KernelWork w;
    w.cls = hw::KernelClass::Null;
    graph.roots.push_back(
        workload::makeKernelOp("aten::op", cpu_ns, "k0", w));
    return graph;
}

TEST(Simulator, SingleKernelTiming)
{
    Simulator simulator(toyPlatform(), noJitter());
    SimResult result = simulator.run(singleKernelGraph());

    auto kernels = result.trace.ofKind(trace::EventKind::Kernel);
    auto runtimes = result.trace.ofKind(trace::EventKind::Runtime);
    ASSERT_EQ(kernels.size(), 1u);
    // cudaLaunchKernel + cudaDeviceSynchronize.
    ASSERT_EQ(runtimes.size(), 2u);

    // The launch begins after the op's pre-dispatch phase (60% of 10us).
    const auto &launch = runtimes[0];
    EXPECT_EQ(launch.tsBeginNs, 6000);
    EXPECT_EQ(launch.durNs, 1000);

    // Kernel starts launchOverheadNs after the launch call begins.
    EXPECT_EQ(kernels[0].tsBeginNs, launch.tsBeginNs + 2000);
    EXPECT_EQ(kernels[0].durNs, 1500); // null kernel: minKernelNs
}

TEST(Simulator, OperatorEventSpansChildren)
{
    Simulator simulator(toyPlatform(), noJitter());
    SimResult result = simulator.run(singleKernelGraph());
    auto ops = result.trace.ofKind(trace::EventKind::Operator);
    ASSERT_EQ(ops.size(), 1u);
    // 10us of CPU + 1us launch call.
    EXPECT_EQ(ops[0].durNs, 11000);
}

TEST(Simulator, QueuedKernelsRunBackToBack)
{
    // Two heavy kernels launched quickly: the second must wait.
    OperatorGraph graph;
    hw::KernelWork w;
    w.cls = hw::KernelClass::Elementwise;
    w.bytes = 1e7; // 10 us on the toy GPU
    graph.roots.push_back(workload::makeKernelOp("op1", 1000.0, "k", w));
    graph.roots.push_back(workload::makeKernelOp("op2", 1000.0, "k", w));

    Simulator simulator(toyPlatform(), noJitter());
    SimResult result = simulator.run(graph);
    auto kernels = result.trace.ofKind(trace::EventKind::Kernel);
    ASSERT_EQ(kernels.size(), 2u);
    // Second kernel starts at first end + inter-kernel gap, not at its
    // own launch + overhead.
    EXPECT_EQ(kernels[1].tsBeginNs, kernels[0].tsEndNs() + 100);
}

TEST(Simulator, IdleStreamKernelsDoNotQueue)
{
    // Slow CPU (big ops) with tiny kernels: no queuing, so every
    // kernel starts exactly launch + overhead.
    OperatorGraph graph;
    for (int i = 0; i < 5; ++i) {
        hw::KernelWork w;
        w.cls = hw::KernelClass::Null;
        graph.roots.push_back(
            workload::makeKernelOp("op", 50000.0, "k", w));
    }
    Simulator simulator(toyPlatform(), noJitter());
    SimResult result = simulator.run(graph);

    auto kernels = result.trace.ofKind(trace::EventKind::Kernel);
    auto runtimes = result.trace.ofKind(trace::EventKind::Runtime);
    ASSERT_EQ(kernels.size(), 5u);
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        EXPECT_EQ(kernels[i].tsBeginNs,
                  runtimes[i].tsBeginNs + 2000)
            << "kernel " << i;
    }
}

TEST(Simulator, CorrelationIdsLinkLaunchesToKernels)
{
    Simulator simulator(toyPlatform(), noJitter());
    SimResult result =
        simulator.run(workload::buildNullKernelGraph(10));
    EXPECT_TRUE(result.trace.validate().empty());
    EXPECT_EQ(result.numKernels, 10u);
}

TEST(Simulator, DeterministicWithSameSeed)
{
    SimOptions opts;
    opts.jitter = true;
    opts.seed = 99;
    workload::BuildOptions build;
    build.batch = 2;
    workload::OperatorGraph graph =
        workload::buildPrefillGraph(workload::gpt2(), build);

    Simulator a(hw::platforms::intelH100(), opts);
    Simulator b(hw::platforms::intelH100(), opts);
    SimResult ra = a.run(graph);
    SimResult rb = b.run(graph);
    ASSERT_EQ(ra.trace.size(), rb.trace.size());
    EXPECT_DOUBLE_EQ(ra.wallNs, rb.wallNs);
    for (std::size_t i = 0; i < ra.trace.size(); ++i) {
        EXPECT_EQ(ra.trace.events()[i].tsBeginNs,
                  rb.trace.events()[i].tsBeginNs);
    }
}

TEST(Simulator, DifferentSeedsJitterTimings)
{
    SimOptions opts_a;
    opts_a.jitter = true;
    opts_a.seed = 1;
    SimOptions opts_b;
    opts_b.jitter = true;
    opts_b.seed = 2;
    workload::OperatorGraph graph = workload::buildNullKernelGraph(100);
    SimResult ra = Simulator(toyPlatform(), opts_a).run(graph);
    SimResult rb = Simulator(toyPlatform(), opts_b).run(graph);
    EXPECT_NE(ra.wallNs, rb.wallNs);
}

TEST(Simulator, MemcpyEmittedOnLooselyCoupled)
{
    workload::BuildOptions build;
    workload::OperatorGraph graph =
        workload::buildPrefillGraph(workload::bertBaseUncased(), build);

    SimResult lc = Simulator(hw::platforms::intelH100(), noJitter())
        .run(graph);
    EXPECT_EQ(lc.trace.countOf(trace::EventKind::Memcpy), 1u);
}

TEST(Simulator, MemcpySkippedOnUnifiedMemory)
{
    workload::BuildOptions build;
    workload::OperatorGraph graph =
        workload::buildPrefillGraph(workload::bertBaseUncased(), build);

    SimResult cc = Simulator(hw::platforms::gh200(), noJitter())
        .run(graph);
    EXPECT_EQ(cc.trace.countOf(trace::EventKind::Memcpy), 0u);
}

TEST(Simulator, SyncWaitsForLastKernel)
{
    OperatorGraph graph;
    hw::KernelWork w;
    w.cls = hw::KernelClass::Elementwise;
    w.bytes = 1e8; // 100 us kernel, far outlasting CPU work
    graph.roots.push_back(workload::makeKernelOp("op", 1000.0, "k", w));

    Simulator simulator(toyPlatform(), noJitter());
    SimResult result = simulator.run(graph);
    auto kernels = result.trace.ofKind(trace::EventKind::Kernel);
    ASSERT_EQ(kernels.size(), 1u);
    EXPECT_GE(result.wallNs,
              static_cast<double>(kernels[0].tsEndNs()));

    auto runtimes = result.trace.ofKind(trace::EventKind::Runtime);
    const auto &sync = runtimes.back();
    EXPECT_EQ(sync.name, "cudaDeviceSynchronize");
    EXPECT_GE(sync.tsEndNs(), kernels[0].tsEndNs());
}

TEST(Simulator, WallCoversCpuAndGpu)
{
    Simulator simulator(toyPlatform(), noJitter());
    SimResult result = simulator.run(singleKernelGraph());
    EXPECT_GE(result.wallNs, static_cast<double>(result.trace.endNs()));
    EXPECT_GT(result.gpuBusyNs, 0.0);
}

TEST(Simulator, SlowerCpuStretchesOperators)
{
    hw::Platform fast = toyPlatform();
    hw::Platform slow = toyPlatform();
    slow.cpu.singleThreadScore = 0.5;

    OperatorGraph graph = singleKernelGraph(20000.0);
    SimResult rf = Simulator(fast, noJitter()).run(graph);
    SimResult rs = Simulator(slow, noJitter()).run(graph);

    auto fast_op = rf.trace.ofKind(trace::EventKind::Operator)[0];
    auto slow_op = rs.trace.ofKind(trace::EventKind::Operator)[0];
    // 20us of framework time doubles; the 1us launch call does not.
    EXPECT_EQ(fast_op.durNs, 21000);
    EXPECT_EQ(slow_op.durNs, 41000);
}

TEST(Simulator, InvalidJitterFractionThrows)
{
    SimOptions opts;
    opts.jitterFrac = 0.5;
    EXPECT_THROW(Simulator(toyPlatform(), opts), FatalError);
}

TEST(Simulator, JitterStaysBounded)
{
    SimOptions opts;
    opts.jitter = true;
    opts.jitterFrac = 0.02;
    Simulator simulator(toyPlatform(), opts);
    SimResult result = simulator.run(workload::buildNullKernelGraph(500));
    for (const auto &ev : result.trace.events()) {
        if (ev.kind == trace::EventKind::Kernel) {
            EXPECT_GT(ev.durNs, 1500 * 0.9);
            EXPECT_LT(ev.durNs, 1500 * 1.1);
        }
    }
}

TEST(Simulator, TraceTimestampsMonotoneOnCpu)
{
    Simulator simulator(hw::platforms::amdA100(), {});
    workload::BuildOptions build;
    SimResult result = simulator.run(
        workload::buildPrefillGraph(workload::gpt2(), build));
    std::int64_t prev = -1;
    for (const auto &ev : result.trace.events()) {
        if (ev.kind == trace::EventKind::Runtime) {
            EXPECT_GE(ev.tsBeginNs, prev);
            prev = ev.tsBeginNs;
        }
    }
}

TEST(Simulator, StreamKernelsNeverOverlap)
{
    Simulator simulator(hw::platforms::gh200(), {});
    workload::BuildOptions build;
    build.batch = 8;
    SimResult result = simulator.run(
        workload::buildPrefillGraph(workload::bertBaseUncased(), build));
    std::int64_t prev_end = -1;
    for (const auto &ev : result.trace.events()) {
        if (ev.onGpu()) {
            EXPECT_GE(ev.tsBeginNs, prev_end);
            prev_end = ev.tsEndNs();
        }
    }
}

TEST(Simulator, TracesSatisfyEveryCheckedInvariant)
{
    // Beyond trace.validate()'s structural checks, the semantic
    // invariant suite (causality, per-stream FIFO + no-overlap,
    // launch-queue depth) must hold on real model workloads across
    // coupled and discrete platforms, with and without jitter.
    workload::BuildOptions build;
    build.batch = 4;
    workload::OperatorGraph graph =
        workload::buildPrefillGraph(workload::gpt2(), build);
    SimOptions jittered;
    jittered.jitter = true;
    jittered.seed = 11;
    for (const auto &platform :
         {hw::platforms::gh200(), hw::platforms::intelH100()}) {
        for (const auto &opts : {noJitter(), jittered}) {
            SimResult result = Simulator(platform, opts).run(graph);
            check::TraceCheckReport report =
                check::validateTrace(result.trace);
            EXPECT_TRUE(report.ok())
                << platform.name << ": " << report.render();
            // Every graph kernel forms a correlated pair; discrete
            // platforms add staging memcpy pairs on top.
            EXPECT_GE(report.pairsChecked, result.numKernels);
        }
    }
}

TEST(Simulator, PlatformMetaRecorded)
{
    Simulator simulator(hw::platforms::gh200(), noJitter());
    SimResult result = simulator.run(workload::buildNullKernelGraph(1));
    EXPECT_EQ(result.trace.meta("platform"), "GH200");
}

} // namespace
} // namespace skipsim::sim
