/**
 * @file
 * Unit tests for the SKIP core: dependency-graph construction (time
 * containment + correlation linkage, paper Sec. IV-A) and the metric
 * definitions TKLQT/AKD/IL/idle times (Eqs. 1-5) on hand-built traces
 * with known answers.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "hw/catalog.hh"
#include "skip/dep_graph.hh"
#include "skip/metrics.hh"
#include "skip/profile.hh"

namespace skipsim::skip
{
namespace
{

using trace::EventKind;
using trace::Trace;
using trace::TraceEvent;

TraceEvent
ev(EventKind kind, const std::string &name, std::int64_t begin,
   std::int64_t dur, std::uint64_t corr = 0)
{
    TraceEvent event;
    event.kind = kind;
    event.name = name;
    event.tsBeginNs = begin;
    event.durNs = dur;
    event.tid = 1;
    event.correlationId = corr;
    event.streamId =
        (kind == EventKind::Kernel || kind == EventKind::Memcpy) ? 7 : -1;
    return event;
}

/**
 * A hand-crafted trace mirroring the paper's Fig. 4:
 *
 *   parent op [0, 100)
 *     child op [10, 60)
 *       launch l1 [20, 25) -> kernel k1 [30, 50)   (t_l = 10)
 *     launch l2 [70, 75)   -> kernel k2 [90, 120)  (t_l = 20)
 *   parent op2 [120, 140)
 *     launch l3 [125, 130) -> kernel k3 [150, 160) (t_l = 25)
 */
Trace
fig4Trace()
{
    Trace trace;
    trace.add(ev(EventKind::Operator, "aten::parent", 0, 100));
    trace.add(ev(EventKind::Operator, "aten::child", 10, 50));
    trace.add(ev(EventKind::Runtime, "cudaLaunchKernel", 20, 5, 1));
    trace.add(ev(EventKind::Kernel, "k1", 30, 20, 1));
    trace.add(ev(EventKind::Runtime, "cudaLaunchKernel", 70, 5, 2));
    trace.add(ev(EventKind::Kernel, "k2", 90, 30, 2));
    trace.add(ev(EventKind::Operator, "aten::parent2", 120, 20));
    trace.add(ev(EventKind::Runtime, "cudaLaunchKernel", 125, 5, 3));
    trace.add(ev(EventKind::Kernel, "k3", 150, 10, 3));
    return trace;
}

// ------------------------------------------------------- dependency graph

TEST(DepGraph, ParentChildByContainment)
{
    DependencyGraph graph = DependencyGraph::build(fig4Trace());
    // Root ops: parent (id 0) and parent2 (id 6).
    ASSERT_EQ(graph.rootOps().size(), 2u);
    EXPECT_EQ(graph.rootOps()[0], 0u);
    EXPECT_EQ(graph.rootOps()[1], 6u);

    // child (id 1) is inside parent (id 0).
    ASSERT_TRUE(graph.parentOf(1).has_value());
    EXPECT_EQ(*graph.parentOf(1), 0u);
    EXPECT_FALSE(graph.parentOf(0).has_value());
}

TEST(DepGraph, LaunchBelongsToDeepestContainingOp)
{
    DependencyGraph graph = DependencyGraph::build(fig4Trace());
    // l1 (id 2) is inside child (id 1), not directly inside parent.
    ASSERT_TRUE(graph.parentOf(2).has_value());
    EXPECT_EQ(*graph.parentOf(2), 1u);
    // l2 (id 4) is inside parent only.
    ASSERT_TRUE(graph.parentOf(4).has_value());
    EXPECT_EQ(*graph.parentOf(4), 0u);
}

TEST(DepGraph, RootAncestorWalksUp)
{
    DependencyGraph graph = DependencyGraph::build(fig4Trace());
    EXPECT_EQ(graph.rootAncestorOf(2), 0u);
    EXPECT_EQ(graph.rootAncestorOf(8), 8u); // kernels have no CPU parent
}

TEST(DepGraph, KernelsLinkedByCorrelation)
{
    DependencyGraph graph = DependencyGraph::build(fig4Trace());
    auto kernels = graph.kernels();
    ASSERT_EQ(kernels.size(), 3u);
    EXPECT_EQ(kernels[0].launchToStartNs, 10);
    EXPECT_EQ(kernels[1].launchToStartNs, 20);
    EXPECT_EQ(kernels[2].launchToStartNs, 25);
    ASSERT_TRUE(kernels[0].rootOpId.has_value());
    EXPECT_EQ(*kernels[0].rootOpId, 0u);
    EXPECT_EQ(*kernels[2].rootOpId, 6u);
}

TEST(DepGraph, KernelsInStreamOrder)
{
    Trace trace = fig4Trace();
    // Shuffle insertion: add a later kernel before an earlier one.
    DependencyGraph graph = DependencyGraph::build(std::move(trace));
    std::int64_t prev = -1;
    for (const auto &link : graph.kernels()) {
        std::int64_t begin = graph.trace().byId(link.kernelId).tsBeginNs;
        EXPECT_GE(begin, prev);
        prev = begin;
    }
}

TEST(DepGraph, OrphanKernelThrows)
{
    Trace trace;
    trace.add(ev(EventKind::Kernel, "k", 0, 10, 42));
    EXPECT_THROW(DependencyGraph::build(std::move(trace)), FatalError);
}

TEST(DepGraph, ChildrenListsPopulated)
{
    DependencyGraph graph = DependencyGraph::build(fig4Trace());
    const auto &kids = graph.childrenOf(0);
    // parent (id 0) contains child (1) and l2 (4).
    ASSERT_EQ(kids.size(), 2u);
    EXPECT_EQ(kids[0], 1u);
    EXPECT_EQ(kids[1], 4u);
}

TEST(DepGraph, SeparateThreadsDoNotNest)
{
    Trace trace;
    TraceEvent a = ev(EventKind::Operator, "t1-op", 0, 100);
    a.tid = 1;
    TraceEvent b = ev(EventKind::Operator, "t2-op", 10, 20);
    b.tid = 2;
    trace.add(a);
    trace.add(b);
    DependencyGraph graph = DependencyGraph::build(std::move(trace));
    EXPECT_FALSE(graph.parentOf(1).has_value());
    EXPECT_EQ(graph.rootOps().size(), 2u);
}

TEST(DepGraph, MemcpyExcludedFromKernelsOnly)
{
    Trace trace = fig4Trace();
    trace.add(ev(EventKind::Runtime, "cudaMemcpyAsync", 130, 5, 9));
    trace.add(ev(EventKind::Memcpy, "Memcpy HtoD", 140, 5, 9));
    DependencyGraph graph = DependencyGraph::build(std::move(trace));
    EXPECT_EQ(graph.kernels().size(), 4u);
    EXPECT_EQ(graph.computeKernelsOnly().size(), 3u);
}

// ----------------------------------------------------------------- metrics

TEST(Metrics, TklqtSumsLaunchToStart)
{
    MetricsReport report =
        computeMetrics(DependencyGraph::build(fig4Trace()));
    // Eq. 2: 10 + 20 + 25.
    EXPECT_DOUBLE_EQ(report.tklqtNs, 55.0);
}

TEST(Metrics, AkdIsMeanKernelDuration)
{
    MetricsReport report =
        computeMetrics(DependencyGraph::build(fig4Trace()));
    // Eq. 3: (20 + 30 + 10) / 3.
    EXPECT_DOUBLE_EQ(report.akdNs, 20.0);
}

TEST(Metrics, InferenceLatencySpansFirstOpToLastKernel)
{
    MetricsReport report =
        computeMetrics(DependencyGraph::build(fig4Trace()));
    // Eq. 4: ts_e(k3)=160 - ts_b(parent)=0.
    EXPECT_DOUBLE_EQ(report.ilNs, 160.0);
}

TEST(Metrics, GpuIdleIsIlMinusKernelTime)
{
    MetricsReport report =
        computeMetrics(DependencyGraph::build(fig4Trace()));
    // Eq. 5: 160 - 60.
    EXPECT_DOUBLE_EQ(report.gpuIdleNs, 100.0);
    EXPECT_DOUBLE_EQ(report.gpuBusyNs, 60.0);
}

TEST(Metrics, CpuBusyAndIdle)
{
    MetricsReport report =
        computeMetrics(DependencyGraph::build(fig4Trace()));
    // Root ops cover [0,100) and [120,140): busy 120, idle 40.
    EXPECT_DOUBLE_EQ(report.cpuBusyNs, 120.0);
    EXPECT_DOUBLE_EQ(report.cpuIdleNs, 40.0);
}

TEST(Metrics, CountsAndAverages)
{
    MetricsReport report =
        computeMetrics(DependencyGraph::build(fig4Trace()));
    EXPECT_EQ(report.numKernels, 3u);
    EXPECT_EQ(report.numOps, 3u);
    EXPECT_NEAR(report.avgLaunchNs, 55.0 / 3.0, 1e-9);
}

TEST(Metrics, EmptyTraceAllZero)
{
    MetricsReport report =
        computeMetrics(DependencyGraph::build(Trace{}));
    EXPECT_DOUBLE_EQ(report.tklqtNs, 0.0);
    EXPECT_DOUBLE_EQ(report.ilNs, 0.0);
    EXPECT_EQ(report.numKernels, 0u);
}

TEST(Metrics, ByKernelAggregation)
{
    Trace trace;
    trace.add(ev(EventKind::Operator, "op", 0, 100));
    trace.add(ev(EventKind::Runtime, "l", 10, 2, 1));
    trace.add(ev(EventKind::Kernel, "gemm", 20, 30, 1));
    trace.add(ev(EventKind::Runtime, "l", 40, 2, 2));
    trace.add(ev(EventKind::Kernel, "gemm", 60, 40, 2));
    trace.add(ev(EventKind::Runtime, "l", 50, 2, 3));
    trace.add(ev(EventKind::Kernel, "softmax", 110, 5, 3));
    MetricsReport report =
        computeMetrics(DependencyGraph::build(std::move(trace)));
    ASSERT_EQ(report.byKernel.size(), 2u);
    EXPECT_EQ(report.byKernel[0].name, "gemm"); // sorted by count
    EXPECT_EQ(report.byKernel[0].count, 2u);
    EXPECT_DOUBLE_EQ(report.byKernel[0].totalDurNs, 70.0);
    EXPECT_DOUBLE_EQ(report.byKernel[0].meanDurNs(), 35.0);
}

TEST(Metrics, TopKByCriteria)
{
    Trace trace;
    trace.add(ev(EventKind::Operator, "op", 0, 1000));
    // "frequent": 3 launches, short; "heavy": 1 launch, long + big wait.
    for (int i = 0; i < 3; ++i) {
        auto corr = static_cast<std::uint64_t>(i + 1);
        trace.add(ev(EventKind::Runtime, "l", 10 + i * 20, 2, corr));
        trace.add(ev(EventKind::Kernel, "frequent", 15 + i * 20, 4,
                     corr));
    }
    trace.add(ev(EventKind::Runtime, "l", 100, 2, 9));
    trace.add(ev(EventKind::Kernel, "heavy", 400, 500, 9));
    MetricsReport report =
        computeMetrics(DependencyGraph::build(std::move(trace)));

    auto by_count = report.topK(1, TopKBy::Count);
    ASSERT_EQ(by_count.size(), 1u);
    EXPECT_EQ(by_count[0].name, "frequent");

    auto by_dur = report.topK(1, TopKBy::Duration);
    EXPECT_EQ(by_dur[0].name, "heavy");

    auto by_launch = report.topK(1, TopKBy::LaunchOverhead);
    EXPECT_EQ(by_launch[0].name, "heavy");

    EXPECT_EQ(report.topK(10, TopKBy::Count).size(), 2u);
}

TEST(Metrics, RenderAndJsonContainHeadlineNumbers)
{
    MetricsReport report =
        computeMetrics(DependencyGraph::build(fig4Trace()));
    std::string text = report.render();
    EXPECT_NE(text.find("TKLQT"), std::string::npos);

    json::Value doc = report.toJson();
    EXPECT_DOUBLE_EQ(doc.asObject().at("tklqt_ns").asDouble(), 55.0);
    EXPECT_EQ(doc.asObject().at("num_kernels").asInt(), 3);
    EXPECT_EQ(doc.asObject().at("kernels").asArray().size(), 3u);
}

// --------------------------------------------------------- profile session

TEST(Profile, EndToEndBertRun)
{
    ProfileResult result = profilePrefill(
        workload::bertBaseUncased(), hw::platforms::intelH100(), 1);
    EXPECT_EQ(result.modelName, "Bert-Base-Uncased");
    EXPECT_EQ(result.platformName, "Intel+H100");
    EXPECT_EQ(result.metrics.numKernels, 299u);
    EXPECT_GT(result.ttftNs(), 0.0);
    EXPECT_GE(result.wallNs, result.ttftNs());
}

TEST(Profile, TraceCarriesRunMetadata)
{
    ProfileResult result = profilePrefill(
        workload::gpt2(), hw::platforms::gh200(), 4, 256);
    EXPECT_EQ(result.trace.meta("model"), "GPT2");
    EXPECT_EQ(result.trace.meta("platform"), "GH200");
    EXPECT_EQ(result.trace.meta("batch"), "4");
    EXPECT_EQ(result.trace.meta("seq_len"), "256");
    EXPECT_EQ(result.trace.meta("mode"), "eager");
}

TEST(Profile, MetricsConsistentWithinRun)
{
    ProfileResult result = profilePrefill(
        workload::gpt2(), hw::platforms::amdA100(), 2);
    const auto &m = result.metrics;
    EXPECT_NEAR(m.gpuBusyNs + m.gpuIdleNs, m.ilNs, 1.0);
    EXPECT_GE(m.ilNs, m.gpuBusyNs);
    EXPECT_GE(m.tklqtNs,
              static_cast<double>(m.numKernels) * 2000.0);
}

TEST(Profile, FlashModeReducesKernelCount)
{
    ProfileResult eager = profilePrefill(
        workload::llama32_1b(), hw::platforms::intelH100(), 1, 256);
    ProfileResult fa2 = profilePrefill(
        workload::llama32_1b(), hw::platforms::intelH100(), 1, 256,
        workload::ExecMode::FlashAttention2);
    EXPECT_LT(fa2.metrics.numKernels, eager.metrics.numKernels);
}

} // namespace
} // namespace skipsim::skip
