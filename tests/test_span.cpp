/**
 * @file
 * Lifecycle span tests: the SpanLog recording hooks (stage partition,
 * KV-fetch carve and clamp, restart collapse, disaggregated handoff),
 * the Chrome-trace export round trip and its malformed-document
 * errors, the checkSpans structural validator, latency attribution
 * over hand-built span sets, and the cluster-integration determinism
 * contract (byte-identical span export across repeated runs).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "check/span_check.hh"
#include "cluster/cluster.hh"
#include "common/logging.hh"
#include "hw/catalog.hh"
#include "json/parser.hh"
#include "json/writer.hh"
#include "obs/attribution.hh"
#include "obs/span.hh"
#include "workload/model_config.hh"

using namespace skipsim;

namespace
{

/** Top-level stage spans of @p request, in begin order. */
std::vector<obs::Span>
stagesOf(const std::vector<obs::Span> &spans, std::int64_t request)
{
    std::int64_t root = -1;
    for (const obs::Span &s : spans) {
        if (s.request == request && s.parent < 0)
            root = s.id;
    }
    std::vector<obs::Span> stages;
    for (const obs::Span &s : spans) {
        if (s.request == request && s.parent == root)
            stages.push_back(s);
    }
    std::sort(stages.begin(), stages.end(),
              [](const obs::Span &a, const obs::Span &b) {
                  if (a.beginNs != b.beginNs)
                      return a.beginNs < b.beginNs;
                  return a.id < b.id;
              });
    return stages;
}

/** The request root span of @p request (asserts it exists). */
obs::Span
rootOf(const std::vector<obs::Span> &spans, std::int64_t request)
{
    for (const obs::Span &s : spans) {
        if (s.request == request && s.parent < 0)
            return s;
    }
    ADD_FAILURE() << "no root span for request " << request;
    return obs::Span{};
}

/** A small, fast-to-simulate cluster scenario. */
cluster::ClusterSpec
smallClusterSpec(int replicas = 2)
{
    cluster::ClusterSpec spec;
    spec.model = workload::modelByName("GPT2");
    cluster::ReplicaSpec replica;
    replica.platform = hw::platforms::byName("GH200");
    replica.maxActive = 16;
    spec.replicas.assign(static_cast<std::size_t>(replicas), replica);
    spec.arrivalRatePerSec = 60.0;
    spec.horizonSec = 3.0;
    spec.promptLen = 128;
    spec.genTokens = 8;
    spec.sessions = 16;
    return spec;
}

// ---------------------------------------------------------- SpanLog

TEST(SpanLog, BasicLifecyclePartitionsTheRequestInterval)
{
    obs::SpanLog log;
    log.onArrival(0, 0.0);
    log.onRoute(0, 1000.0, 0, "round-robin");
    log.onAdmit(0, 3000.0, 0.0, false);
    log.onFirstToken(0, 5000.0);
    log.onDecodeIter(0, 5000.0, 5500.0, 4);
    log.onDecodeIter(0, 5500.0, 6100.0, 3);
    log.onComplete(0, 6100.0);

    ASSERT_EQ(log.requestCount(), 1u);
    const std::vector<obs::Span> &spans = log.spans();
    // root + 4 stages + route + 2 decode iters
    ASSERT_EQ(spans.size(), 8u);

    obs::Span root = rootOf(spans, 0);
    EXPECT_EQ(root.stage, obs::kStageRequest);
    EXPECT_EQ(root.beginNs, 0);
    EXPECT_EQ(root.durNs, 6100);

    std::vector<obs::Span> stages = stagesOf(spans, 0);
    ASSERT_EQ(stages.size(), 4u);
    EXPECT_EQ(stages[0].stage, obs::kStageQueue);
    EXPECT_EQ(stages[0].beginNs, 0);
    EXPECT_EQ(stages[0].durNs, 1000);
    EXPECT_EQ(stages[1].stage, obs::kStagePrefillWait);
    EXPECT_EQ(stages[1].beginNs, 1000);
    EXPECT_EQ(stages[1].durNs, 2000);
    EXPECT_EQ(stages[1].replica, 0);
    EXPECT_EQ(stages[2].stage, obs::kStagePrefill);
    EXPECT_EQ(stages[2].beginNs, 3000);
    EXPECT_EQ(stages[2].durNs, 2000);
    EXPECT_EQ(stages[3].stage, obs::kStageDecode);
    EXPECT_EQ(stages[3].beginNs, 5000);
    EXPECT_EQ(stages[3].durNs, 1100);

    // The route annotation is a zero-duration child of the queue
    // stage; the decode iterations are children of the decode stage.
    int routes = 0;
    int iters = 0;
    for (const obs::Span &s : spans) {
        if (s.stage == obs::kSpanRoute) {
            ++routes;
            EXPECT_EQ(s.parent, stages[0].id);
            EXPECT_EQ(s.durNs, 0);
            EXPECT_EQ(s.detail, "round-robin");
            EXPECT_EQ(s.replica, 0);
        }
        if (s.stage == obs::kSpanDecodeIter) {
            ++iters;
            EXPECT_EQ(s.parent, stages[3].id);
        }
    }
    EXPECT_EQ(routes, 1);
    EXPECT_EQ(iters, 2);

    // Ids seal in order starting at 0 for the first request.
    EXPECT_EQ(root.id, 0);
    check::SpanCheckReport report = check::checkSpans(spans);
    EXPECT_TRUE(report.ok()) << report.render();
    EXPECT_EQ(report.requestsChecked, 1u);
}

TEST(SpanLog, KvFetchStallIsCarvedAndClamped)
{
    obs::SpanLog log;
    // Request 0: a 300 ns stall fits inside the 800 ns prefill stage.
    log.onArrival(0, 0.0);
    log.onRoute(0, 100.0, 1, "kv-aware");
    log.onAdmit(0, 200.0, 300.0, false);
    log.onFirstToken(0, 1000.0);
    log.onComplete(0, 1400.0);
    // Request 1: the raw stall (5000 ns) outlasts the stage, so the
    // carve clamps at the stage close and prefill collapses to zero.
    log.onArrival(1, 0.0);
    log.onRoute(1, 100.0, 0, "kv-aware");
    log.onAdmit(1, 200.0, 5000.0, false);
    log.onFirstToken(1, 1000.0);
    log.onComplete(1, 1400.0);

    std::vector<obs::Span> s0 = stagesOf(log.spans(), 0);
    ASSERT_EQ(s0.size(), 5u);
    EXPECT_EQ(s0[2].stage, obs::kStageKvFetch);
    EXPECT_EQ(s0[2].beginNs, 200);
    EXPECT_EQ(s0[2].durNs, 300);
    EXPECT_EQ(s0[3].stage, obs::kStagePrefill);
    EXPECT_EQ(s0[3].beginNs, 500);
    EXPECT_EQ(s0[3].durNs, 500);

    std::vector<obs::Span> s1 = stagesOf(log.spans(), 1);
    ASSERT_EQ(s1.size(), 5u);
    EXPECT_EQ(s1[2].stage, obs::kStageKvFetch);
    EXPECT_EQ(s1[2].beginNs, 200);
    EXPECT_EQ(s1[2].durNs, 800); // clamped to the stage close
    EXPECT_EQ(s1[3].stage, obs::kStagePrefill);
    EXPECT_EQ(s1[3].beginNs, 1000);
    EXPECT_EQ(s1[3].durNs, 0);

    check::SpanCheckReport report = check::checkSpans(log.spans());
    EXPECT_TRUE(report.ok()) << report.render();
}

TEST(SpanLog, RestartCollapsesTheAttemptIntoOneDisruptedStage)
{
    obs::SpanLog log;
    log.onArrival(0, 0.0);
    log.onRoute(0, 100.0, 0, "rr");
    log.onAdmit(0, 200.0, 0.0, false);
    log.onRestart(0, 700.0);
    log.onRoute(0, 800.0, 1, "rr after crash");
    log.onAdmit(0, 900.0, 0.0, false);
    log.onFirstToken(0, 1200.0);
    log.onComplete(0, 1500.0);

    std::vector<obs::Span> stages = stagesOf(log.spans(), 0);
    ASSERT_EQ(stages.size(), 5u);
    EXPECT_EQ(stages[0].stage, obs::kStageDisrupted);
    EXPECT_EQ(stages[0].beginNs, 0);
    EXPECT_EQ(stages[0].durNs, 700);
    EXPECT_EQ(stages[0].replica, 0); // died on the first replica
    EXPECT_EQ(stages[1].stage, obs::kStageQueue);
    EXPECT_EQ(stages[1].beginNs, 700);
    EXPECT_EQ(stages[2].stage, obs::kStagePrefillWait);
    EXPECT_EQ(stages[3].stage, obs::kStagePrefill);
    EXPECT_EQ(stages[4].stage, obs::kStageDecode);
    EXPECT_EQ(stages[4].beginNs + stages[4].durNs, 1500);

    check::SpanCheckReport report = check::checkSpans(log.spans());
    EXPECT_TRUE(report.ok()) << report.render();
}

TEST(SpanLog, DisaggregatedHandoffBecomesItsOwnStage)
{
    obs::SpanLog log;
    log.onArrival(0, 0.0);
    log.onRoute(0, 100.0, 0, "prefill-pool");
    log.onAdmit(0, 200.0, 0.0, false);
    log.onFirstToken(0, 600.0);
    log.onHandoffStart(0, 600.0);
    // Decode-pool re-dispatch: the handoff stage stays open and gains
    // the route annotation instead of re-opening a queue stage.
    log.onRoute(0, 700.0, 1, "decode-pool");
    log.onAdmit(0, 800.0, 0.0, true);
    log.onDecodeIter(0, 800.0, 900.0, 2);
    log.onComplete(0, 1000.0);

    std::vector<obs::Span> stages = stagesOf(log.spans(), 0);
    ASSERT_EQ(stages.size(), 5u);
    EXPECT_EQ(stages[0].stage, obs::kStageQueue);
    EXPECT_EQ(stages[1].stage, obs::kStagePrefillWait);
    EXPECT_EQ(stages[2].stage, obs::kStagePrefill);
    EXPECT_EQ(stages[3].stage, obs::kStageHandoff);
    EXPECT_EQ(stages[3].beginNs, 600);
    EXPECT_EQ(stages[3].durNs, 200);
    EXPECT_EQ(stages[4].stage, obs::kStageDecode);
    EXPECT_EQ(stages[4].beginNs, 800);
    EXPECT_EQ(stages[4].durNs, 200);

    // The decode-pool route child hangs off the handoff stage.
    bool found = false;
    for (const obs::Span &s : log.spans()) {
        if (s.stage == obs::kSpanRoute && s.detail == "decode-pool") {
            found = true;
            EXPECT_EQ(s.parent, stages[3].id);
            EXPECT_EQ(s.replica, 1);
        }
    }
    EXPECT_TRUE(found);

    check::SpanCheckReport report = check::checkSpans(log.spans());
    EXPECT_TRUE(report.ok()) << report.render();
}

TEST(SpanLog, IncompleteRequestsAreNeverSealed)
{
    obs::SpanLog log;
    log.onArrival(0, 0.0);
    log.onRoute(0, 100.0, 0, "rr");
    log.onAdmit(0, 200.0, 0.0, false);
    // Never completes: nothing sealed, nothing exported.
    EXPECT_EQ(log.requestCount(), 0u);
    EXPECT_TRUE(log.spans().empty());
    // Hooks on unknown/never-arrived ids are ignored.
    log.onFirstToken(7, 500.0);
    log.onComplete(7, 900.0);
    EXPECT_TRUE(log.spans().empty());
}

// ------------------------------------------------- Chrome round trip

TEST(SpanFile, ChromeExportRoundTripsEverySealedSpan)
{
    obs::SpanLog log;
    log.setMeta("ttft_slo_ms", "250");
    log.onArrival(0, 0.0);
    log.onRoute(0, 1000.0, 0, "rr");
    log.onAdmit(0, 3000.0, 450.0, false);
    log.onFirstToken(0, 5000.0);
    log.onDecodeIter(0, 5000.0, 5500.0, 4);
    log.onComplete(0, 6100.0);

    obs::SpanFile file =
        obs::spansFromChromeJson(log.toChromeJson());
    EXPECT_EQ(file.meta.at("kind"), "spans");
    EXPECT_EQ(file.meta.at("ttft_slo_ms"), "250");
    ASSERT_EQ(file.spans.size(), log.spans().size());
    for (std::size_t i = 0; i < file.spans.size(); ++i) {
        const obs::Span &got = file.spans[i];
        const obs::Span &want = log.spans()[i];
        EXPECT_EQ(got.id, want.id);
        EXPECT_EQ(got.parent, want.parent);
        EXPECT_EQ(got.request, want.request);
        EXPECT_EQ(got.stage, want.stage);
        EXPECT_EQ(got.beginNs, want.beginNs);
        EXPECT_EQ(got.durNs, want.durNs);
        EXPECT_EQ(got.replica, want.replica);
        EXPECT_EQ(got.detail, want.detail);
    }
}

TEST(SpanFile, MalformedDocumentsAreFatal)
{
    EXPECT_THROW(obs::spansFromChromeJson(json::Value(3.0)),
                 FatalError);
    EXPECT_THROW(obs::spansFromChromeJson(
                     json::parse("{\"skipsimMeta\": {}}")),
                 FatalError);
    // An "X" event carrying span_id but missing the other span args
    // names the offending event index.
    try {
        obs::spansFromChromeJson(json::parse(
            "{\"traceEvents\": [{\"ph\": \"X\", \"name\": \"queue\","
            " \"args\": {\"span_id\": 1}}]}"));
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("event 0"),
                  std::string::npos);
    }
    // Foreign "X" events without span args are skipped, not fatal.
    obs::SpanFile file = obs::spansFromChromeJson(json::parse(
        "{\"traceEvents\": [{\"ph\": \"X\", \"name\": \"gemm\","
        " \"args\": {\"thread\": 0}}, {\"ph\": \"b\", \"id\": 0}]}"));
    EXPECT_TRUE(file.spans.empty());
}

// -------------------------------------------------------- checkSpans

TEST(SpanCheck, DetectsPartitionGapsOverlapsAndOrphans)
{
    obs::SpanLog log;
    log.onArrival(0, 0.0);
    log.onRoute(0, 100.0, 0, "rr");
    log.onAdmit(0, 200.0, 0.0, false);
    log.onFirstToken(0, 600.0);
    log.onComplete(0, 1000.0);
    std::vector<obs::Span> spans = log.spans();

    // Open a gap: shrink the prefill stage's duration.
    std::vector<obs::Span> gapped = spans;
    for (obs::Span &s : gapped) {
        if (s.stage == obs::kStagePrefill)
            s.durNs -= 50;
    }
    check::SpanCheckReport gap = check::checkSpans(gapped);
    EXPECT_FALSE(gap.ok());
    EXPECT_TRUE(gap.has("span-stage-gap")) << gap.render();

    // Overlap: grow it instead.
    std::vector<obs::Span> overlapped = spans;
    for (obs::Span &s : overlapped) {
        if (s.stage == obs::kStagePrefill)
            s.durNs += 50;
    }
    check::SpanCheckReport overlap = check::checkSpans(overlapped);
    EXPECT_FALSE(overlap.ok());
    EXPECT_TRUE(overlap.has("span-stage-overlap")) << overlap.render();

    // Orphan: a span pointing at a parent id that was never sealed.
    std::vector<obs::Span> orphaned = spans;
    orphaned.back().parent = 9999;
    EXPECT_TRUE(
        check::checkSpans(orphaned).has("span-orphan"));

    // Drop the root: stages with no request root.
    std::vector<obs::Span> rootless;
    for (const obs::Span &s : spans) {
        if (s.parent >= 0)
            rootless.push_back(s);
    }
    check::SpanCheckReport missing = check::checkSpans(rootless);
    EXPECT_FALSE(missing.ok());
    EXPECT_TRUE(missing.has("span-orphan") ||
                missing.has("span-missing-root"))
        << missing.render();
}

// ------------------------------------------------------- attribution

TEST(Attribution, HandBuiltBreakdownAndSloDominance)
{
    obs::SpanLog log;
    // Request 0: ttft 600 ns, e2e 1000 ns.
    log.onArrival(0, 0.0);
    log.onRoute(0, 100.0, 0, "rr");
    log.onAdmit(0, 200.0, 0.0, false);
    log.onFirstToken(0, 600.0);
    log.onComplete(0, 1000.0);
    // Request 1: ttft 800 ns, e2e 1600 ns.
    log.onArrival(1, 0.0);
    log.onRoute(1, 300.0, 1, "rr");
    log.onAdmit(1, 400.0, 0.0, false);
    log.onFirstToken(1, 800.0);
    log.onComplete(1, 1600.0);

    // SLOs in ms; 0.0005 ms = 500 ns, so both requests violate ttft
    // and only request 1 violates e2e (1600 > 1200).
    obs::AttributionReport report =
        obs::attributeSpans(log.spans(), 0.0005, 0.0012);
    EXPECT_EQ(report.requests, 2u);
    EXPECT_DOUBLE_EQ(report.meanTtftNs, 700.0);
    EXPECT_DOUBLE_EQ(report.meanE2eNs, 1300.0);

    // E2E totals: queue 400, prefill_wait 200, prefill 800, decode
    // 1200 -> shares over 2600 summed interval time.
    std::map<std::string, obs::StageStat> e2e;
    double share_sum = 0.0;
    for (const obs::StageStat &s : report.e2eStages) {
        e2e[s.stage] = s;
        share_sum += s.share;
    }
    ASSERT_EQ(e2e.size(), 4u);
    EXPECT_DOUBLE_EQ(e2e[obs::kStageQueue].totalNs, 400.0);
    EXPECT_DOUBLE_EQ(e2e[obs::kStagePrefillWait].totalNs, 200.0);
    EXPECT_DOUBLE_EQ(e2e[obs::kStagePrefill].totalNs, 800.0);
    EXPECT_DOUBLE_EQ(e2e[obs::kStageDecode].totalNs, 1200.0);
    EXPECT_DOUBLE_EQ(e2e[obs::kStageDecode].share, 1200.0 / 2600.0);
    EXPECT_NEAR(share_sum, 1.0, 1e-12);
    EXPECT_EQ(e2e[obs::kStageQueue].count, 2u);
    EXPECT_DOUBLE_EQ(e2e[obs::kStageQueue].meanNs, 200.0);

    // Stage rows come out in lifecycle order.
    ASSERT_EQ(report.e2eStages.size(), 4u);
    EXPECT_EQ(report.e2eStages[0].stage, obs::kStageQueue);
    EXPECT_EQ(report.e2eStages[3].stage, obs::kStageDecode);

    // The TTFT window excludes decode entirely.
    for (const obs::StageStat &s : report.ttftStages)
        EXPECT_NE(s.stage, obs::kStageDecode);

    // SLO table: ttft violators (both) dominated by prefill (800 of
    // 1400 ttft-window ns); e2e violators (request 1) by decode.
    ASSERT_EQ(report.sloRows.size(), 2u);
    EXPECT_EQ(report.sloRows[0].klass, "ttft");
    EXPECT_EQ(report.sloRows[0].violations, 2u);
    EXPECT_EQ(report.sloRows[0].dominantStage, obs::kStagePrefill);
    EXPECT_DOUBLE_EQ(report.sloRows[0].dominantTotalNs, 800.0);
    EXPECT_EQ(report.sloRows[1].klass, "e2e");
    EXPECT_EQ(report.sloRows[1].violations, 1u);
    EXPECT_EQ(report.sloRows[1].dominantStage, obs::kStageDecode);

    // Relaxed SLOs -> no violation rows.
    obs::AttributionReport relaxed =
        obs::attributeSpans(log.spans(), 1000.0, 1000.0);
    EXPECT_TRUE(relaxed.sloRows.empty());
    // The JSON document always carries the fixed top-level keys.
    json::Value doc = relaxed.toJson();
    EXPECT_TRUE(doc.asObject().has("ttft_stages"));
    EXPECT_TRUE(doc.asObject().has("e2e_stages"));
    EXPECT_TRUE(doc.asObject().has("slo_violations"));
}

// ------------------------------------------------ cluster integration

TEST(ClusterSpans, SimulationSpansAreValidAndByteIdentical)
{
    cluster::ClusterSpec spec = smallClusterSpec(2);

    obs::SpanLog first;
    cluster::ClusterResult result =
        cluster::simulateCluster(spec, nullptr, &first);
    ASSERT_GT(first.requestCount(), 0u);
    EXPECT_EQ(first.requestCount(),
              static_cast<std::size_t>(result.completed));

    check::SpanCheckReport report = check::checkSpans(first.spans());
    EXPECT_TRUE(report.ok()) << report.render();
    EXPECT_EQ(report.requestsChecked, first.requestCount());

    // A fresh run (fresh cost cache and all) must export the same
    // bytes: span ids are sealed in deterministic event order.
    obs::SpanLog second;
    cluster::simulateCluster(spec, nullptr, &second);
    EXPECT_EQ(first.toChromeText(), second.toChromeText());

    // And attribution over those spans is equally deterministic.
    EXPECT_EQ(json::write(obs::attributeSpans(first.spans(),
                                              spec.ttftSloMs,
                                              spec.e2eSloMs)
                              .toJson()),
              json::write(obs::attributeSpans(second.spans(),
                                              spec.ttftSloMs,
                                              spec.e2eSloMs)
                              .toJson()));
}

TEST(ClusterSpans, FaultRestartsShowUpAsDisruptedStages)
{
    cluster::ClusterSpec spec = smallClusterSpec(2);
    cluster::FaultSpec crash;
    crash.atSec = 1.0;
    crash.replica = 0;
    crash.kind = cluster::FaultKind::Crash;
    spec.faults.push_back(crash);

    obs::SpanLog spans;
    cluster::simulateCluster(spec, nullptr, &spans);
    ASSERT_GT(spans.requestCount(), 0u);

    std::size_t disrupted = 0;
    for (const obs::Span &s : spans.spans()) {
        if (s.stage == obs::kStageDisrupted)
            ++disrupted;
    }
    EXPECT_GT(disrupted, 0u);

    // The partition invariant survives the restarts.
    check::SpanCheckReport report = check::checkSpans(spans.spans());
    EXPECT_TRUE(report.ok()) << report.render();
}

} // namespace
