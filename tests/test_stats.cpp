/**
 * @file
 * Unit tests for the stats substrate: summary accumulators,
 * percentiles, linear fits, series and knee detection.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "stats/knee.hh"
#include "stats/series.hh"
#include "stats/summary.hh"

namespace skipsim::stats
{
namespace
{

// ---------------------------------------------------------------- summary

TEST(Summary, CountSumMean)
{
    Summary s;
    s.addAll({1.0, 2.0, 3.0, 4.0});
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
}

TEST(Summary, MinMaxTracked)
{
    Summary s;
    s.addAll({5.0, -2.0, 7.0});
    EXPECT_DOUBLE_EQ(s.min(), -2.0);
    EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(Summary, VarianceMatchesDefinition)
{
    Summary s;
    s.addAll({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
    // Known dataset: population var 4, sample var 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Summary, SingleSampleVarianceZero)
{
    Summary s;
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, EmptyAccessorsThrow)
{
    Summary s;
    EXPECT_THROW(s.mean(), FatalError);
    EXPECT_THROW(s.min(), FatalError);
    EXPECT_THROW(s.max(), FatalError);
}

TEST(Summary, WelfordStableForLargeOffsets)
{
    Summary s;
    for (int i = 0; i < 1000; ++i)
        s.add(1e9 + (i % 2));
    EXPECT_NEAR(s.variance(), 0.25025, 1e-3);
}

// ------------------------------------------------------------- percentile

TEST(Percentile, MedianOfOddCount)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
}

TEST(Percentile, MedianOfEvenCountInterpolates)
{
    EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Percentile, Extremes)
{
    std::vector<double> xs{5.0, 1.0, 3.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
}

TEST(Percentile, InterpolatesBetweenOrderStats)
{
    EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25.0), 2.5);
}

TEST(Percentile, SingleSample)
{
    EXPECT_DOUBLE_EQ(percentile({7.0}, 99.0), 7.0);
}

TEST(Percentile, InvalidInputsThrow)
{
    EXPECT_THROW(percentile({}, 50.0), FatalError);
    EXPECT_THROW(percentile({1.0}, -1.0), FatalError);
    EXPECT_THROW(percentile({1.0}, 101.0), FatalError);
}

TEST(Percentile, NanRankRejectedNotUndefined)
{
    // A NaN p compares false against every bound, so a naive
    // (p < 0 || p > 100) guard lets it through into the rank
    // arithmetic and the float->size_t cast becomes UB.
    const double nan = std::nan("");
    EXPECT_THROW(percentile({1.0, 2.0}, nan), FatalError);
    EXPECT_THROW(percentiles({1.0, 2.0}, {50.0, nan}), FatalError);
}

TEST(Percentiles, MatchesSingleCallPerEntry)
{
    std::vector<double> xs{9.0, 1.0, 5.0, 3.0, 7.0};
    std::vector<double> ps{0.0, 25.0, 50.0, 95.0, 100.0};
    std::vector<double> batch = percentiles(xs, ps);
    ASSERT_EQ(batch.size(), ps.size());
    for (std::size_t i = 0; i < ps.size(); ++i)
        EXPECT_DOUBLE_EQ(batch[i], percentile(xs, ps[i]));
}

TEST(Percentiles, PreservesRequestOrderNotSortedOrder)
{
    std::vector<double> out =
        percentiles({0.0, 10.0}, {99.0, 1.0, 50.0});
    ASSERT_EQ(out.size(), 3u);
    EXPECT_DOUBLE_EQ(out[0], 9.9);
    EXPECT_DOUBLE_EQ(out[1], 0.1);
    EXPECT_DOUBLE_EQ(out[2], 5.0);
}

TEST(Percentiles, EmptyRequestListIsEmpty)
{
    EXPECT_TRUE(percentiles({1.0, 2.0}, {}).empty());
}

TEST(Percentiles, InvalidInputsThrow)
{
    EXPECT_THROW(percentiles({}, {50.0}), FatalError);
    EXPECT_THROW(percentiles({1.0}, {50.0, 101.0}), FatalError);
    EXPECT_THROW(percentiles({1.0}, {-0.5}), FatalError);
}

// ---------------------------------------------------------------- geomean

TEST(Geomean, MatchesClosedForm)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Geomean, RejectsNonPositive)
{
    EXPECT_THROW(geomean({1.0, 0.0}), FatalError);
    EXPECT_THROW(geomean({}), FatalError);
}

// -------------------------------------------------------------- linear fit

TEST(LinearFit, ExactLine)
{
    LinearFit fit = fitLinear({0.0, 1.0, 2.0}, {1.0, 3.0, 5.0});
    EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
    EXPECT_NEAR(fit.slope, 2.0, 1e-12);
    EXPECT_NEAR(fit.at(10.0), 21.0, 1e-12);
}

TEST(LinearFit, LeastSquaresOnNoisyData)
{
    LinearFit fit =
        fitLinear({1.0, 2.0, 3.0, 4.0}, {2.1, 3.9, 6.1, 7.9});
    EXPECT_NEAR(fit.slope, 2.0, 0.1);
}

TEST(LinearFit, DegenerateInputsThrow)
{
    EXPECT_THROW(fitLinear({1.0}, {1.0}), FatalError);
    EXPECT_THROW(fitLinear({1.0, 1.0}, {1.0, 2.0}), FatalError);
    EXPECT_THROW(fitLinear({1.0, 2.0}, {1.0}), FatalError);
}

// ----------------------------------------------------------------- series

TEST(Series, KeepsSortedByX)
{
    Series s("test");
    s.add(4.0, 40.0);
    s.add(1.0, 10.0);
    s.add(2.0, 20.0);
    auto xs = s.xs();
    EXPECT_EQ(xs, (std::vector<double>{1.0, 2.0, 4.0}));
    EXPECT_EQ(s.ys(), (std::vector<double>{10.0, 20.0, 40.0}));
}

TEST(Series, ExactLookup)
{
    Series s;
    s.add(8.0, 80.0);
    EXPECT_DOUBLE_EQ(s.at(8.0), 80.0);
    EXPECT_TRUE(s.hasX(8.0));
    EXPECT_FALSE(s.hasX(9.0));
    EXPECT_THROW(s.at(9.0), FatalError);
}

TEST(Series, InterpolationInside)
{
    Series s;
    s.add(0.0, 0.0);
    s.add(10.0, 100.0);
    EXPECT_DOUBLE_EQ(s.interpolate(5.0), 50.0);
}

TEST(Series, InterpolationClampsOutside)
{
    Series s;
    s.add(1.0, 10.0);
    s.add(2.0, 20.0);
    EXPECT_DOUBLE_EQ(s.interpolate(0.0), 10.0);
    EXPECT_DOUBLE_EQ(s.interpolate(9.0), 20.0);
}

TEST(Series, InterpolateEmptyThrows)
{
    Series s;
    EXPECT_THROW(s.interpolate(1.0), FatalError);
}

TEST(Series, FirstCrossBelowFindsCrossover)
{
    Series a("challenger");
    Series b("baseline");
    for (double x : {1.0, 2.0, 4.0, 8.0}) {
        a.add(x, 10.0);       // flat challenger
        b.add(x, 3.0 * x);    // rising baseline
    }
    auto cross = firstCrossBelow(a, b);
    ASSERT_TRUE(cross.has_value());
    EXPECT_DOUBLE_EQ(*cross, 4.0);
}

TEST(Series, FirstCrossBelowNoneWhenAlwaysAbove)
{
    Series a;
    Series b;
    for (double x : {1.0, 2.0}) {
        a.add(x, 100.0);
        b.add(x, 1.0);
    }
    EXPECT_FALSE(firstCrossBelow(a, b).has_value());
}

// ------------------------------------------------------------------- knee

TEST(Knee, DetectsPlateauThenRise)
{
    Series s;
    s.add(1.0, 10.0);
    s.add(2.0, 11.0);
    s.add(4.0, 10.5);
    s.add(8.0, 50.0);
    s.add(16.0, 200.0);
    KneeResult knee = detectKnee(s, 1.5);
    ASSERT_TRUE(knee.kneeX.has_value());
    EXPECT_DOUBLE_EQ(*knee.kneeX, 8.0);
    EXPECT_DOUBLE_EQ(knee.lastPlateauX, 4.0);
    EXPECT_NEAR(knee.plateauLevel, 10.5, 1.0);
}

TEST(Knee, NoKneeOnFlatSeries)
{
    Series s;
    for (double x : {1.0, 2.0, 4.0, 8.0})
        s.add(x, 5.0);
    KneeResult knee = detectKnee(s, 1.5);
    EXPECT_FALSE(knee.kneeX.has_value());
    EXPECT_DOUBLE_EQ(knee.lastPlateauX, 8.0);
}

TEST(Knee, ToleratesSlowDriftWithinMargin)
{
    Series s;
    s.add(1.0, 10.0);
    s.add(2.0, 12.0);
    s.add(4.0, 13.0);
    s.add(8.0, 14.0);
    s.add(16.0, 100.0);
    KneeResult knee = detectKnee(s, 1.6);
    ASSERT_TRUE(knee.kneeX.has_value());
    EXPECT_DOUBLE_EQ(*knee.kneeX, 16.0);
}

TEST(Knee, ImmediateRiseKneesAtSecondPoint)
{
    Series s;
    s.add(1.0, 1.0);
    s.add(2.0, 100.0);
    s.add(4.0, 200.0);
    KneeResult knee = detectKnee(s, 1.5, 1);
    ASSERT_TRUE(knee.kneeX.has_value());
    EXPECT_DOUBLE_EQ(*knee.kneeX, 2.0);
}

TEST(Knee, InvalidArgumentsThrow)
{
    Series s;
    EXPECT_THROW(detectKnee(s), FatalError);
    s.add(1.0, 1.0);
    EXPECT_THROW(detectKnee(s, 1.0), FatalError);
    EXPECT_THROW(detectKnee(s, 0.5), FatalError);
}

TEST(Knee, SeedPointsClampedToSize)
{
    Series s;
    s.add(1.0, 5.0);
    s.add(2.0, 50.0);
    KneeResult knee = detectKnee(s, 1.5, 10);
    // With both points seeding the plateau there is nothing left to
    // rise, so no knee is reported.
    EXPECT_FALSE(knee.kneeX.has_value());
}

} // namespace
} // namespace skipsim::stats
