/**
 * @file
 * Tests for tensor-parallel graph construction and its simulated
 * behaviour: per-rank work sharding, collective insertion, platform
 * link requirements, and the emergent deepening of the CPU-bound
 * region under TP.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "hw/catalog.hh"
#include "sim/simulator.hh"
#include "skip/profile.hh"
#include "workload/builder.hh"

namespace skipsim::workload
{
namespace
{

OperatorGraph
llamaGraph(int tp, int batch = 1)
{
    BuildOptions opts;
    opts.batch = batch;
    opts.tensorParallel = tp;
    return buildPrefillGraph(llama32_1b(), opts);
}

TEST(TensorParallel, DegreeOneIsIdentity)
{
    OperatorGraph tp1 = llamaGraph(1);
    BuildOptions opts;
    OperatorGraph base = buildPrefillGraph(llama32_1b(), opts);
    EXPECT_EQ(tp1.numKernelLaunches(), base.numKernelLaunches());
    EXPECT_DOUBLE_EQ(tp1.totalFlops(), base.totalFlops());
    EXPECT_EQ(tp1.kernelSequence(), base.kernelSequence());
}

TEST(TensorParallel, AddsCollectivesPerLayer)
{
    OperatorGraph tp4 = llamaGraph(4);
    std::size_t all_reduce = 0;
    std::size_t all_gather = 0;
    for (const auto &name : tp4.kernelSequence()) {
        if (name == "nccl_all_reduce_f16")
            ++all_reduce;
        if (name == "nccl_all_gather_f16")
            ++all_gather;
    }
    EXPECT_EQ(all_reduce, 2u * 16u); // attention + MLP per layer
    EXPECT_EQ(all_gather, 1u);       // lm head
    EXPECT_EQ(tp4.numKernelLaunches(),
              llamaGraph(1).numKernelLaunches() + 33u);
}

TEST(TensorParallel, ShardsGpuWork)
{
    double flops1 = llamaGraph(1).totalFlops();
    double flops4 = llamaGraph(4).totalFlops();
    // Per-rank GEMM work shrinks toward 1/4 (collectives add a little
    // and grouped KV replication keeps K/V projections whole).
    EXPECT_LT(flops4, 0.45 * flops1);
    EXPECT_GT(flops4, 0.2 * flops1);
}

TEST(TensorParallel, CpuWorkDoesNotShrink)
{
    // Every rank still dispatches the full operator stream — the heart
    // of the TP-vs-CPU-boundedness interaction.
    double cpu1 = llamaGraph(1).totalCpuNs();
    double cpu4 = llamaGraph(4).totalCpuNs();
    EXPECT_GT(cpu4, cpu1);
}

TEST(TensorParallel, InvalidDegreesThrow)
{
    BuildOptions opts;
    opts.tensorParallel = 0;
    EXPECT_THROW(buildPrefillGraph(llama32_1b(), opts), FatalError);
    opts.tensorParallel = 3; // 32 heads % 3 != 0
    EXPECT_THROW(buildPrefillGraph(llama32_1b(), opts), FatalError);
    opts.tensorParallel = 64; // exceeds head count
    EXPECT_THROW(buildPrefillGraph(llama32_1b(), opts), FatalError);
}

TEST(TensorParallel, CollectiveNeedsPeerLink)
{
    OperatorGraph tp2 = llamaGraph(2);
    hw::Platform no_link = hw::platforms::gh200();
    no_link.gpu.nvlinkGBs = 0.0;
    sim::Simulator simulator(no_link);
    EXPECT_THROW(simulator.run(tp2), FatalError);

    sim::Simulator ok(hw::platforms::gh200());
    EXPECT_NO_THROW(ok.run(tp2));
}

TEST(TensorParallel, SpeedsUpGpuBoundPrefill)
{
    // Llama BS=8 is GPU-bound on GH200: TP=4 must cut latency, though
    // sublinearly (collectives + unsharded work).
    sim::SimOptions opts;
    opts.jitter = false;
    sim::Simulator simulator(hw::platforms::gh200(), opts);
    double t1 = simulator.run(llamaGraph(1, 8)).wallNs;
    double t4 = simulator.run(llamaGraph(4, 8)).wallNs;
    EXPECT_LT(t4, t1);
    EXPECT_GT(t4, t1 / 4.0);
}

TEST(TensorParallel, DeepensCpuBoundRegion)
{
    // Sharding shrinks GPU time but not dispatch: at BS=1 the TP=4
    // run is more CPU-bound (higher GPU idle share) than TP=1.
    auto idle_share = [](int tp) {
        BuildOptions opts;
        opts.tensorParallel = tp;
        OperatorGraph graph = buildPrefillGraph(llama32_1b(), opts);
        sim::Simulator simulator(hw::platforms::gh200());
        sim::SimResult result = simulator.run(graph);
        skip::MetricsReport metrics = skip::computeMetrics(
            skip::DependencyGraph::build(std::move(result.trace)));
        return metrics.gpuIdleNs / metrics.ilNs;
    };
    EXPECT_GT(idle_share(4), idle_share(1));
}

TEST(TensorParallel, SlowLinkHurtsCollectives)
{
    // Intel+H100's PCIe peer link (100 GB/s) makes TP collectives far
    // more expensive than GH200's NVLink fabric.
    OperatorGraph tp4 = llamaGraph(4, 8);
    sim::SimOptions opts;
    opts.jitter = false;

    auto collective_time = [&](const hw::Platform &platform) {
        sim::Simulator simulator(platform, opts);
        sim::SimResult result = simulator.run(tp4);
        double total = 0.0;
        for (const auto &ev : result.trace.events()) {
            if (ev.kind == trace::EventKind::Kernel &&
                startsWith(ev.name, "nccl_")) {
                total += static_cast<double>(ev.durNs);
            }
        }
        return total;
    };
    EXPECT_GT(collective_time(hw::platforms::intelH100()),
              3.0 * collective_time(hw::platforms::gh200()));
}

} // namespace
} // namespace skipsim::workload
