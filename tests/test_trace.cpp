/**
 * @file
 * Unit tests for the trace substrate: event model, trace container,
 * validation, and Chrome-trace JSON round trips.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "trace/chrome.hh"
#include "trace/event.hh"
#include "trace/trace.hh"

namespace skipsim::trace
{
namespace
{

TraceEvent
makeEvent(EventKind kind, const std::string &name, std::int64_t begin,
          std::int64_t dur, std::uint64_t corr = 0, int stream = -1)
{
    TraceEvent ev;
    ev.kind = kind;
    ev.name = name;
    ev.tsBeginNs = begin;
    ev.durNs = dur;
    ev.tid = 1;
    ev.correlationId = corr;
    ev.streamId = kind == EventKind::Kernel || kind == EventKind::Memcpy
        ? (stream < 0 ? 7 : stream)
        : -1;
    return ev;
}

// ------------------------------------------------------------------ event

TEST(TraceEvent, KindNamesRoundTrip)
{
    for (EventKind kind :
         {EventKind::Operator, EventKind::Runtime, EventKind::Kernel,
          EventKind::Memcpy}) {
        EXPECT_EQ(kindFromName(kindName(kind)), kind);
    }
}

TEST(TraceEvent, UnknownKindNameThrows)
{
    EXPECT_THROW(kindFromName("python_function"), FatalError);
}

TEST(TraceEvent, CpuGpuPredicates)
{
    EXPECT_TRUE(makeEvent(EventKind::Operator, "op", 0, 1).onCpu());
    EXPECT_TRUE(makeEvent(EventKind::Runtime, "rt", 0, 1).onCpu());
    EXPECT_TRUE(makeEvent(EventKind::Kernel, "k", 0, 1).onGpu());
    EXPECT_TRUE(makeEvent(EventKind::Memcpy, "m", 0, 1).onGpu());
}

TEST(TraceEvent, EndTimestamp)
{
    EXPECT_EQ(makeEvent(EventKind::Kernel, "k", 10, 5).tsEndNs(), 15);
}

// ------------------------------------------------------------------ trace

TEST(Trace, AssignsDenseIds)
{
    Trace trace;
    EXPECT_EQ(trace.add(makeEvent(EventKind::Operator, "a", 0, 1)), 0u);
    EXPECT_EQ(trace.add(makeEvent(EventKind::Operator, "b", 1, 1)), 1u);
    EXPECT_EQ(trace.size(), 2u);
}

TEST(Trace, SortByTimeOrdersByBeginThenId)
{
    Trace trace;
    trace.add(makeEvent(EventKind::Operator, "late", 100, 1));
    trace.add(makeEvent(EventKind::Operator, "early", 5, 1));
    trace.add(makeEvent(EventKind::Operator, "tie-a", 50, 1));
    trace.add(makeEvent(EventKind::Operator, "tie-b", 50, 1));
    trace.sortByTime();
    EXPECT_EQ(trace.events()[0].name, "early");
    EXPECT_EQ(trace.events()[1].name, "tie-a");
    EXPECT_EQ(trace.events()[3].name, "late");
}

TEST(Trace, ByIdWorksAfterSorting)
{
    Trace trace;
    std::uint64_t id = trace.add(makeEvent(EventKind::Operator, "x",
                                           100, 1));
    trace.add(makeEvent(EventKind::Operator, "y", 1, 1));
    trace.sortByTime();
    EXPECT_EQ(trace.byId(id).name, "x");
}

TEST(Trace, ByIdUnknownThrows)
{
    Trace trace;
    EXPECT_THROW(trace.byId(3), FatalError);
}

TEST(Trace, KindFilters)
{
    Trace trace;
    trace.add(makeEvent(EventKind::Operator, "op", 0, 1));
    trace.add(makeEvent(EventKind::Kernel, "k", 1, 1, 1));
    trace.add(makeEvent(EventKind::Kernel, "k", 2, 1, 2));
    EXPECT_EQ(trace.countOf(EventKind::Kernel), 2u);
    EXPECT_EQ(trace.ofKind(EventKind::Operator).size(), 1u);
}

TEST(Trace, BeginEndSpan)
{
    Trace trace;
    trace.add(makeEvent(EventKind::Operator, "a", 10, 5));
    trace.add(makeEvent(EventKind::Kernel, "k", 12, 20, 1));
    EXPECT_EQ(trace.beginNs(), 10);
    EXPECT_EQ(trace.endNs(), 32);
}

TEST(Trace, EmptySpanThrows)
{
    Trace trace;
    EXPECT_THROW(trace.beginNs(), FatalError);
    EXPECT_THROW(trace.endNs(), FatalError);
}

TEST(Trace, MetaRoundTrip)
{
    Trace trace;
    trace.setMeta("model", "GPT2");
    trace.setMeta("model", "Llama");
    trace.setMeta("batch", "4");
    EXPECT_EQ(trace.meta("model"), "Llama");
    EXPECT_EQ(trace.meta("batch"), "4");
    EXPECT_EQ(trace.meta("missing"), "");
    EXPECT_EQ(trace.metaEntries().size(), 2u);
}

// -------------------------------------------------------------- validate

TEST(TraceValidate, CleanTraceHasNoProblems)
{
    Trace trace;
    trace.add(makeEvent(EventKind::Runtime, "cudaLaunchKernel", 0, 2, 1));
    trace.add(makeEvent(EventKind::Kernel, "k", 3, 5, 1));
    EXPECT_TRUE(trace.validate().empty());
}

TEST(TraceValidate, NegativeDurationFlagged)
{
    Trace trace;
    trace.add(makeEvent(EventKind::Operator, "op", 0, -1));
    EXPECT_FALSE(trace.validate().empty());
}

TEST(TraceValidate, KernelWithoutStreamFlagged)
{
    Trace trace;
    TraceEvent ev = makeEvent(EventKind::Kernel, "k", 0, 1, 1);
    ev.streamId = -1;
    trace.add(ev);
    trace.add(makeEvent(EventKind::Runtime, "l", 0, 1, 1));
    EXPECT_FALSE(trace.validate().empty());
}

TEST(TraceValidate, OrphanKernelFlagged)
{
    Trace trace;
    trace.add(makeEvent(EventKind::Kernel, "k", 0, 1, 99));
    EXPECT_FALSE(trace.validate().empty());
}

TEST(TraceValidate, DuplicateCorrelationFlagged)
{
    Trace trace;
    trace.add(makeEvent(EventKind::Runtime, "l1", 0, 1, 5));
    trace.add(makeEvent(EventKind::Runtime, "l2", 2, 1, 5));
    trace.add(makeEvent(EventKind::Kernel, "k", 4, 1, 5));
    EXPECT_FALSE(trace.validate().empty());
}

TEST(TraceValidate, LaunchWithoutKernelIsLegal)
{
    Trace trace;
    trace.add(makeEvent(EventKind::Runtime, "cudaMemsetAsync", 0, 1, 3));
    EXPECT_TRUE(trace.validate().empty());
}

// ----------------------------------------------------------- chrome trace

Trace
sampleTrace()
{
    Trace trace;
    trace.setMeta("platform", "Intel+H100");
    trace.setMeta("model", "GPT2");
    TraceEvent op = makeEvent(EventKind::Operator, "aten::linear", 0, 100);
    trace.add(op);
    trace.add(makeEvent(EventKind::Runtime, "cudaLaunchKernel", 10, 2, 1));
    TraceEvent k = makeEvent(EventKind::Kernel, "gemm_f16", 14, 30, 1);
    k.flops = 1.5e9;
    k.bytes = 2.5e6;
    trace.add(k);
    TraceEvent mc = makeEvent(EventKind::Memcpy, "Memcpy HtoD", 50, 8, 2);
    trace.add(mc);
    trace.add(makeEvent(EventKind::Runtime, "cudaMemcpyAsync", 44, 2, 2));
    trace.sortByTime();
    return trace;
}

TEST(ChromeTrace, RoundTripPreservesEvents)
{
    Trace original = sampleTrace();
    Trace parsed = fromChromeText(toChromeText(original));
    ASSERT_EQ(parsed.size(), original.size());

    // Compare sorted views field by field.
    for (std::size_t i = 0; i < parsed.size(); ++i) {
        const TraceEvent &a = original.events()[i];
        const TraceEvent &b = parsed.events()[i];
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.tsBeginNs, b.tsBeginNs);
        EXPECT_EQ(a.durNs, b.durNs);
        EXPECT_EQ(a.correlationId, b.correlationId);
        EXPECT_EQ(a.streamId, b.streamId);
        EXPECT_DOUBLE_EQ(a.flops, b.flops);
        EXPECT_DOUBLE_EQ(a.bytes, b.bytes);
    }
}

TEST(ChromeTrace, RoundTripPreservesMeta)
{
    Trace parsed = fromChromeText(toChromeText(sampleTrace()));
    EXPECT_EQ(parsed.meta("platform"), "Intel+H100");
    EXPECT_EQ(parsed.meta("model"), "GPT2");
}

TEST(ChromeTrace, AcceptsMicrosecondOnlyEvents)
{
    // Kineto-style export with only us-resolution ts/dur.
    std::string text = R"({"traceEvents":[
        {"ph":"X","name":"k","cat":"kernel","ts":12.5,"dur":3.25,
         "pid":0,"tid":1007,"args":{"correlation":4,"stream":7}},
        {"ph":"X","name":"cudaLaunchKernel","cat":"cuda_runtime",
         "ts":10.0,"dur":2.0,"pid":0,"tid":1,
         "args":{"correlation":4}}]})";
    Trace trace = fromChromeText(text);
    ASSERT_EQ(trace.size(), 2u);
    const TraceEvent &k = trace.events()[1];
    EXPECT_EQ(k.kind, EventKind::Kernel);
    EXPECT_EQ(k.tsBeginNs, 12500);
    EXPECT_EQ(k.durNs, 3250);
    EXPECT_EQ(k.streamId, 7);
}

TEST(ChromeTrace, MicrosecondOnlyOutOfOrderEventsSortAndRoundTrip)
{
    // Kineto writes events in flush order, not time order, and carries
    // only us-resolution ts/dur. Import must time-sort and keep the
    // launch<->kernel correlation ids intact through a re-export.
    std::string text = R"({"traceEvents":[
        {"ph":"X","name":"gemm","cat":"kernel","ts":30.0,"dur":5.0,
         "pid":0,"tid":1007,"args":{"correlation":9,"stream":7}},
        {"ph":"X","name":"aten::linear","cat":"cpu_op","ts":1.0,
         "dur":40.0,"tid":3},
        {"ph":"X","name":"Memcpy HtoD","cat":"gpu_memcpy","ts":50.0,
         "dur":2.0,"pid":0,"tid":1000,"args":{"correlation":11}},
        {"ph":"X","name":"cudaMemcpyAsync","cat":"cuda_runtime",
         "ts":45.0,"dur":1.5,"tid":3,"args":{"correlation":11}},
        {"ph":"X","name":"cudaLaunchKernel","cat":"cuda_runtime",
         "ts":20.0,"dur":2.0,"tid":3,"args":{"correlation":9}}]})";
    Trace imported = fromChromeText(text);
    ASSERT_EQ(imported.size(), 5u);

    // Time-sorted on import despite the shuffled input array.
    for (std::size_t i = 1; i < imported.size(); ++i)
        EXPECT_LE(imported.events()[i - 1].tsBeginNs,
                  imported.events()[i].tsBeginNs);
    EXPECT_EQ(imported.events()[0].name, "aten::linear");
    EXPECT_EQ(imported.events()[1].name, "cudaLaunchKernel");
    EXPECT_EQ(imported.events()[1].correlationId, 9u);
    EXPECT_EQ(imported.events()[2].name, "gemm");
    EXPECT_EQ(imported.events()[2].correlationId, 9u);
    EXPECT_EQ(imported.events()[2].streamId, 7);
    EXPECT_EQ(imported.events()[2].tsBeginNs, 30000);
    EXPECT_EQ(imported.events()[2].durNs, 5000);

    // Round trip through our exporter preserves ordering, timestamps
    // and correlation ids exactly.
    Trace reparsed = fromChromeText(toChromeText(imported));
    ASSERT_EQ(reparsed.size(), imported.size());
    for (std::size_t i = 0; i < imported.size(); ++i) {
        const TraceEvent &a = imported.events()[i];
        const TraceEvent &b = reparsed.events()[i];
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(a.tsBeginNs, b.tsBeginNs);
        EXPECT_EQ(a.durNs, b.durNs);
        EXPECT_EQ(a.correlationId, b.correlationId);
        EXPECT_EQ(a.streamId, b.streamId);
    }
    EXPECT_TRUE(reparsed.validate().empty());
}

TEST(ChromeTrace, SkipsUnknownCategoriesAndPhases)
{
    std::string text = R"({"traceEvents":[
        {"ph":"X","name":"py","cat":"python_function","ts":0,"dur":1},
        {"ph":"M","name":"meta","cat":"kernel"},
        {"ph":"X","name":"op","cat":"cpu_op","ts":0,"dur":1,"tid":1}]})";
    Trace trace = fromChromeText(text);
    EXPECT_EQ(trace.size(), 1u);
    EXPECT_EQ(trace.events()[0].name, "op");
}

TEST(ChromeTrace, MissingTraceEventsThrows)
{
    EXPECT_THROW(fromChromeText("{}"), FatalError);
}

TEST(ChromeTrace, AcceptsLegacyBareArrayForm)
{
    // The legacy Chrome format is a bare top-level array of events.
    std::string text = R"([
        {"ph":"X","name":"op","cat":"cpu_op","ts":0,"dur":1,"tid":1},
        {"ph":"X","name":"k","cat":"kernel","ts":2.0,"dur":1.0,
         "tid":1007,"args":{"correlation":1,"stream":7}}])";
    Trace trace = fromChromeText(text);
    EXPECT_EQ(trace.size(), 2u);
}

TEST(ChromeTrace, NonContainerTopLevelThrows)
{
    EXPECT_THROW(fromChromeText("42"), FatalError);
    EXPECT_THROW(fromChromeText("\"trace\""), FatalError);
    EXPECT_THROW(fromChromeText(R"({"traceEvents": 7})"), FatalError);
}

TEST(ChromeTrace, TruncatedJsonThrowsCleanly)
{
    // A capture cut off mid-write must fail as a parse error, not
    // crash or silently yield a partial trace.
    std::string full = toChromeText(sampleTrace());
    EXPECT_THROW(fromChromeText(full.substr(0, full.size() / 2)),
                 FatalError);
    EXPECT_THROW(fromChromeText(""), FatalError);
}

TEST(ChromeTrace, MalformedEventNamesItsIndex)
{
    // Second event lacks ts/dur entirely; the error must carry the
    // event index so the bad record is findable in a large export.
    std::string text = R"({"traceEvents":[
        {"ph":"X","name":"ok","cat":"cpu_op","ts":0,"dur":1,"tid":1},
        {"ph":"X","name":"broken","cat":"kernel"}]})";
    try {
        fromChromeText(text);
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("event 1"),
                  std::string::npos)
            << "diagnostic missing the event index: " << err.what();
    }
    // Non-object entries in the array are diagnosed the same way.
    EXPECT_THROW(fromChromeText(R"({"traceEvents":[17]})"), FatalError);
}

TEST(ChromeTrace, FileRoundTrip)
{
    std::string path = testing::TempDir() + "/skipsim_trace_test.json";
    writeChromeFile(path, sampleTrace());
    Trace parsed = readChromeFile(path);
    EXPECT_EQ(parsed.size(), sampleTrace().size());
}

TEST(ChromeTrace, GpuTidEncodesStream)
{
    json::Value doc = toChromeJson(sampleTrace());
    bool found = false;
    for (const auto &item : doc.asObject().at("traceEvents").asArray()) {
        const auto &obj = item.asObject();
        if (obj.at("cat").asString() == "kernel") {
            EXPECT_EQ(obj.at("tid").asInt(), 1007);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(ChromeTrace, CounterAndInstantRoundTrip)
{
    Trace original = sampleTrace();
    CounterEvent c1;
    c1.name = "cluster.queue_depth{replica=\"0\"}";
    c1.tsNs = 12345;
    c1.value = 3.0;
    c1.tid = 0;
    original.addCounter(c1);
    CounterEvent c2;
    c2.name = "cluster.kv_bytes";
    c2.tsNs = 99;
    c2.value = 1.5e9;
    c2.tid = 2;
    original.addCounter(c2);
    InstantEvent marker;
    marker.name = "fault.crash";
    marker.tsNs = 777;
    marker.tid = 1;
    original.addInstant(marker);
    original.sortByTime();

    // Counters/instants sort by timestamp alongside the span stream.
    EXPECT_EQ(original.counters().front().name, "cluster.kv_bytes");

    Trace parsed = fromChromeText(toChromeText(original));
    ASSERT_EQ(parsed.counters().size(), 2u);
    ASSERT_EQ(parsed.instants().size(), 1u);
    EXPECT_EQ(parsed.size(), original.size());

    const CounterEvent &kv = parsed.counters()[0];
    EXPECT_EQ(kv.name, "cluster.kv_bytes");
    EXPECT_EQ(kv.tsNs, 99); // exact ns via the top-level ts_ns field
    EXPECT_DOUBLE_EQ(kv.value, 1.5e9);
    EXPECT_EQ(kv.tid, 2);
    const CounterEvent &depth = parsed.counters()[1];
    EXPECT_EQ(depth.name, "cluster.queue_depth{replica=\"0\"}");
    EXPECT_EQ(depth.tsNs, 12345);
    EXPECT_DOUBLE_EQ(depth.value, 3.0);

    const InstantEvent &fault = parsed.instants()[0];
    EXPECT_EQ(fault.name, "fault.crash");
    EXPECT_EQ(fault.tsNs, 777);
    EXPECT_EQ(fault.tid, 1);
}

TEST(ChromeTrace, ReadsForeignCounterAndInstantEvents)
{
    // Kineto-flavoured counters carry the value under an arbitrary
    // args member and only us-resolution timestamps; "I" instants are
    // the legacy spelling of "i".
    std::string text = R"({"traceEvents":[
        {"ph":"C","name":"GPU mem","ts":2.5,"pid":0,"tid":0,
         "args":{"bytes":4096}},
        {"ph":"I","name":"marker","ts":1.0,"tid":3},
        {"ph":"X","name":"op","cat":"cpu_op","ts":0,"dur":1,"tid":1}]})";
    Trace trace = fromChromeText(text);
    EXPECT_EQ(trace.size(), 1u);
    ASSERT_EQ(trace.counters().size(), 1u);
    EXPECT_EQ(trace.counters()[0].name, "GPU mem");
    EXPECT_EQ(trace.counters()[0].tsNs, 2500);
    EXPECT_DOUBLE_EQ(trace.counters()[0].value, 4096.0);
    ASSERT_EQ(trace.instants().size(), 1u);
    EXPECT_EQ(trace.instants()[0].name, "marker");
    EXPECT_EQ(trace.instants()[0].tsNs, 1000);
}

} // namespace
} // namespace skipsim::trace
