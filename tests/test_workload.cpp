/**
 * @file
 * Unit tests for the workload module: model catalog (Table III),
 * operator-graph builders (kernel counts, FLOP sanity), execution-mode
 * rewrites (FlashAttention2, torch.compile variants), and the
 * compile-time model (Table I structure).
 */

#include <set>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "workload/builder.hh"
#include "workload/compile_model.hh"
#include "workload/exec_mode.hh"
#include "workload/model_config.hh"

namespace skipsim::workload
{
namespace
{

BuildOptions
opts(int batch = 1, int seq = 512, ExecMode mode = ExecMode::Eager)
{
    BuildOptions o;
    o.batch = batch;
    o.seqLen = seq;
    o.mode = mode;
    return o;
}

// ----------------------------------------------------------- model catalog

TEST(ModelCatalog, PaperQuartetMatchesTableIII)
{
    auto quartet = paperQuartet();
    ASSERT_EQ(quartet.size(), 4u);
    EXPECT_EQ(quartet[0].name, "Bert-Base-Uncased");
    EXPECT_EQ(quartet[0].family, ModelFamily::EncoderOnly);
    EXPECT_EQ(quartet[1].name, "XLM-Roberta-Base");
    EXPECT_EQ(quartet[1].family, ModelFamily::EncoderOnly);
    EXPECT_EQ(quartet[2].name, "GPT2");
    EXPECT_EQ(quartet[2].family, ModelFamily::DecoderOnly);
    EXPECT_EQ(quartet[3].name, "Llama-3.2-1B");
    EXPECT_EQ(quartet[3].family, ModelFamily::DecoderOnly);
}

TEST(ModelCatalog, ParameterCountsMatchTableIII)
{
    // Table III: 110M / 279M / 137M / 1.24B (within 15%).
    EXPECT_NEAR(bertBaseUncased().paramsM(), 110.0, 110.0 * 0.15);
    EXPECT_NEAR(xlmRobertaBase().paramsM(), 279.0, 279.0 * 0.15);
    EXPECT_NEAR(gpt2().paramsM(), 137.0, 137.0 * 0.15);
    EXPECT_NEAR(llama32_1b().paramsM(), 1240.0, 1240.0 * 0.15);
}

TEST(ModelCatalog, SevenBModelsAreSevenB)
{
    for (const auto &model : sevenBSet()) {
        EXPECT_GT(model.paramsM(), 5500.0) << model.name;
        EXPECT_LT(model.paramsM(), 9000.0) << model.name;
    }
}

TEST(ModelCatalog, GemmaIsTwoB)
{
    EXPECT_NEAR(gemma2b().paramsM(), 2500.0, 800.0);
}

TEST(ModelCatalog, ExtensionModelsSized)
{
    EXPECT_NEAR(phi2().paramsM(), 2780.0, 500.0);
    EXPECT_NEAR(tinyLlama1b().paramsM(), 1100.0, 250.0);
    EXPECT_NEAR(qwen2_15b().paramsM(), 1540.0, 400.0);
    // GQA/MQA configurations are consistent.
    EXPECT_EQ(tinyLlama1b().kvHeads, 4);
    EXPECT_EQ(qwen2_15b().kvHeads, 2);
    EXPECT_EQ(phi2().kvHeads, phi2().heads);
}

TEST(ModelCatalog, HeadDimConsistent)
{
    EXPECT_EQ(bertBaseUncased().headDim(), 64);
    EXPECT_EQ(llama32_1b().headDim(), 64);
}

TEST(ModelCatalog, GqaModelsHaveFewerKvHeads)
{
    EXPECT_LT(llama32_1b().kvHeads, llama32_1b().heads);
    EXPECT_EQ(gpt2().kvHeads, gpt2().heads);
    EXPECT_EQ(falcon7b().kvHeads, 1); // multi-query attention
}

TEST(ModelCatalog, ByNameLookup)
{
    EXPECT_EQ(modelByName("gpt2").name, "GPT2");
    EXPECT_EQ(modelByName("LLAMA-3.2-1B").layers, 16);
    EXPECT_THROW(modelByName("gpt5"), FatalError);
}

TEST(ModelCatalog, AllNamesResolvable)
{
    for (const auto &name : modelNames())
        EXPECT_NO_THROW(modelByName(name));
}

TEST(ExecModes, NamesRoundTrip)
{
    for (ExecMode mode : allExecModes())
        EXPECT_EQ(execModeByName(execModeName(mode)), mode);
    EXPECT_THROW(execModeByName("jit"), FatalError);
}

// ------------------------------------------------------- eager kernel counts

TEST(Builder, BertEagerKernelCount)
{
    // 9 prologue + 12 layers x 24 + 2 pooler = 299 (the XLM-R anchor
    // behind the paper's 6.8x L=256 fusion speedup, Fig. 8).
    OperatorGraph graph = buildPrefillGraph(bertBaseUncased(), opts());
    EXPECT_EQ(graph.numKernelLaunches(), 299u);
    EXPECT_EQ(graph.numMemcpys(), 1u);
}

TEST(Builder, XlmRobertaSameStructureAsBert)
{
    OperatorGraph graph = buildPrefillGraph(xlmRobertaBase(), opts());
    EXPECT_EQ(graph.numKernelLaunches(), 299u);
}

TEST(Builder, Gpt2EagerKernelCount)
{
    // 3 prologue + 12 layers x 33 + 6 epilogue = 405 (the GPT2 anchor
    // behind the paper's 2.7x L=256 fusion speedup, Fig. 8).
    OperatorGraph graph = buildPrefillGraph(gpt2(), opts());
    EXPECT_EQ(graph.numKernelLaunches(), 405u);
}

TEST(Builder, LlamaEagerKernelCount)
{
    // 4 prologue + 16 layers x 35 + 6 epilogue = 570.
    OperatorGraph graph = buildPrefillGraph(llama32_1b(), opts());
    EXPECT_EQ(graph.numKernelLaunches(), 570u);
}

TEST(Builder, KernelCountIndependentOfBatch)
{
    for (int batch : {1, 4, 32}) {
        OperatorGraph graph =
            buildPrefillGraph(gpt2(), opts(batch));
        EXPECT_EQ(graph.numKernelLaunches(), 405u) << batch;
    }
}

TEST(Builder, KernelNamesDependOnBatchForGemms)
{
    auto seq1 = buildPrefillGraph(gpt2(), opts(1)).kernelSequence();
    auto seq8 = buildPrefillGraph(gpt2(), opts(8)).kernelSequence();
    ASSERT_EQ(seq1.size(), seq8.size());
    bool gemm_differs = false;
    for (std::size_t i = 0; i < seq1.size(); ++i) {
        if (startsWith(seq1[i], "gemm_") && seq1[i] != seq8[i])
            gemm_differs = true;
    }
    EXPECT_TRUE(gemm_differs);
}

TEST(Builder, SequenceDeterministicAcrossBuilds)
{
    auto a = buildPrefillGraph(gpt2(), opts()).kernelSequence();
    auto b = buildPrefillGraph(gpt2(), opts()).kernelSequence();
    EXPECT_EQ(a, b);
}

TEST(Builder, FirstKernelIsUniqueAnchor)
{
    // The word-embedding gather is the unique chain anchor that makes
    // the prologue-rooted long chain deterministic (PS = 1).
    auto seq = buildPrefillGraph(gpt2(), opts()).kernelSequence();
    std::size_t count = 0;
    for (const auto &name : seq) {
        if (name == seq.front())
            ++count;
    }
    EXPECT_EQ(count, 1u);
}

// -------------------------------------------------------------- flop sanity

TEST(Builder, FlopsScaleLinearlyWithBatch)
{
    double f1 = buildPrefillGraph(gpt2(), opts(1)).totalFlops();
    double f8 = buildPrefillGraph(gpt2(), opts(8)).totalFlops();
    EXPECT_NEAR(f8 / f1, 8.0, 0.2);
}

TEST(Builder, FlopsMatchTwoParamsTokensRule)
{
    // Prefill FLOPs ~ 2 * params * tokens for weight GEMMs (attention
    // adds the rest), so the total must be within ~2x of that rule.
    ModelConfig model = llama32_1b();
    OperatorGraph graph = buildPrefillGraph(model, opts());
    double expected = 2.0 * model.paramsM() * 1e6 * 512;
    EXPECT_GT(graph.totalFlops(), 0.6 * expected);
    EXPECT_LT(graph.totalFlops(), 2.5 * expected);
}

TEST(Builder, BiggerModelMoreFlops)
{
    double small = buildPrefillGraph(gpt2(), opts()).totalFlops();
    double large = buildPrefillGraph(llama2_7b(), opts()).totalFlops();
    EXPECT_GT(large, 10.0 * small);
}

TEST(Builder, CpuCostScaleMultiplies)
{
    BuildOptions base = opts();
    BuildOptions scaled = opts();
    scaled.cpuCostScale = 2.0;
    double cpu1 =
        buildPrefillGraph(gpt2(), base).totalCpuNs();
    double cpu2 =
        buildPrefillGraph(gpt2(), scaled).totalCpuNs();
    EXPECT_NEAR(cpu2 / cpu1, 2.0, 1e-9);
}

TEST(Builder, InvalidOptionsThrow)
{
    EXPECT_THROW(buildPrefillGraph(gpt2(), opts(0)), FatalError);
    EXPECT_THROW(buildPrefillGraph(gpt2(), opts(1, 0)), FatalError);
}

// ------------------------------------------------------------ FlashAttention

TEST(Builder, FlashAttentionReducesKernels)
{
    OperatorGraph eager = buildPrefillGraph(bertBaseUncased(), opts());
    OperatorGraph fa2 = buildPrefillGraph(
        bertBaseUncased(), opts(1, 512, ExecMode::FlashAttention2));
    // Encoder: 9 attention kernels fuse into 1 per layer.
    EXPECT_EQ(fa2.numKernelLaunches(),
              eager.numKernelLaunches() - 12u * 8u);
}

TEST(Builder, FlashAttentionEmitsFlashKernel)
{
    OperatorGraph fa2 = buildPrefillGraph(
        llama32_1b(), opts(1, 512, ExecMode::FlashAttention2));
    std::size_t flash = 0;
    for (const auto &name : fa2.kernelSequence()) {
        if (startsWith(name, "flash_fwd_kernel"))
            ++flash;
    }
    EXPECT_EQ(flash, 16u); // one per layer
}

TEST(Builder, FlashAttentionCutsBytes)
{
    // FA2 avoids materializing the S x S score matrix.
    OperatorGraph eager = buildPrefillGraph(gpt2(), opts(8));
    OperatorGraph fa2 =
        buildPrefillGraph(gpt2(), opts(8, 512,
                                       ExecMode::FlashAttention2));
    EXPECT_LT(fa2.totalBytes(), eager.totalBytes());
}

TEST(Builder, FlashAttentionKeepsGemmFlops)
{
    OperatorGraph eager = buildPrefillGraph(gpt2(), opts());
    OperatorGraph fa2 = buildPrefillGraph(
        gpt2(), opts(1, 512, ExecMode::FlashAttention2));
    EXPECT_NEAR(fa2.totalFlops() / eager.totalFlops(), 1.0, 0.1);
}

// ------------------------------------------------------------ compile modes

TEST(Builder, CompileDefaultFusesAndDropsCopies)
{
    OperatorGraph eager = buildPrefillGraph(gpt2(), opts());
    OperatorGraph compiled = buildPrefillGraph(
        gpt2(), opts(1, 512, ExecMode::CompileDefault));
    EXPECT_LT(compiled.numKernelLaunches(),
              eager.numKernelLaunches() / 2);
    for (const auto &name : compiled.kernelSequence())
        EXPECT_FALSE(startsWith(name, "copy_")) << name;
}

TEST(Builder, CompileDefaultEmitsTritonKernels)
{
    OperatorGraph compiled = buildPrefillGraph(
        gpt2(), opts(1, 512, ExecMode::CompileDefault));
    bool triton = false;
    for (const auto &name : compiled.kernelSequence()) {
        if (startsWith(name, "triton_fused_"))
            triton = true;
    }
    EXPECT_TRUE(triton);
}

TEST(Builder, CompileDefaultKeepsGemms)
{
    OperatorGraph eager = buildPrefillGraph(gpt2(), opts());
    OperatorGraph compiled = buildPrefillGraph(
        gpt2(), opts(1, 512, ExecMode::CompileDefault));
    auto count_gemms = [](const OperatorGraph &g) {
        std::size_t n = 0;
        for (const auto &name : g.kernelSequence()) {
            if (startsWith(name, "gemm_") || startsWith(name, "bmm_"))
                ++n;
        }
        return n;
    };
    EXPECT_EQ(count_gemms(compiled), count_gemms(eager));
}

TEST(Builder, CompileDefaultSavesBytes)
{
    OperatorGraph eager = buildPrefillGraph(gpt2(), opts());
    OperatorGraph compiled = buildPrefillGraph(
        gpt2(), opts(1, 512, ExecMode::CompileDefault));
    EXPECT_LT(compiled.totalBytes(), eager.totalBytes());
}

TEST(Builder, ReduceOverheadIsOneGraphLaunch)
{
    OperatorGraph graph = buildPrefillGraph(
        gpt2(), opts(1, 512, ExecMode::CompileReduceOverhead));
    EXPECT_EQ(graph.numKernelLaunches(), 1u);
    auto seq = graph.kernelSequence();
    ASSERT_EQ(seq.size(), 1u);
    EXPECT_EQ(seq[0], "cuda_graph_exec");
}

TEST(Builder, ReduceOverheadPreservesWork)
{
    OperatorGraph def = buildPrefillGraph(
        gpt2(), opts(1, 512, ExecMode::CompileDefault));
    OperatorGraph ro = buildPrefillGraph(
        gpt2(), opts(1, 512, ExecMode::CompileReduceOverhead));
    EXPECT_NEAR(ro.totalFlops(), def.totalFlops(), 1.0);
    EXPECT_NEAR(ro.totalBytes(), def.totalBytes(), 1.0);
}

TEST(Builder, MaxAutotuneSpeedsGemms)
{
    OperatorGraph ro = buildPrefillGraph(
        gpt2(), opts(1, 512, ExecMode::CompileReduceOverhead));
    OperatorGraph ma = buildPrefillGraph(
        gpt2(), opts(1, 512, ExecMode::CompileMaxAutotune));
    // Autotuned GEMMs are modeled as fewer effective FLOPs.
    EXPECT_LT(ma.totalFlops(), ro.totalFlops());
}

TEST(Builder, CompiledCpuCostWellBelowEager)
{
    // Compiled modes keep the wrapper/guard cost but shed per-op
    // dispatch, landing well under eager's framework time.
    OperatorGraph eager = buildPrefillGraph(gpt2(), opts());
    OperatorGraph ro = buildPrefillGraph(
        gpt2(), opts(1, 512, ExecMode::CompileReduceOverhead));
    EXPECT_LT(ro.totalCpuNs(), eager.totalCpuNs() / 2.0);
    OperatorGraph def = buildPrefillGraph(
        gpt2(), opts(1, 512, ExecMode::CompileDefault));
    EXPECT_LT(def.totalCpuNs(), eager.totalCpuNs());
}

// --------------------------------------------------------- nullKernel graph

TEST(Builder, NullKernelGraphShape)
{
    OperatorGraph graph = buildNullKernelGraph(100);
    EXPECT_EQ(graph.numKernelLaunches(), 100u);
    EXPECT_EQ(graph.numOps(), 100u);
    EXPECT_DOUBLE_EQ(graph.totalFlops(), 0.0);
    EXPECT_THROW(buildNullKernelGraph(0), FatalError);
}

// --------------------------------------------------------- decode extension

TEST(Builder, DecodeStepUsesSequenceLengthOne)
{
    OperatorGraph decode =
        buildDecodeStepGraph(gpt2(), opts(), 512);
    OperatorGraph prefill = buildPrefillGraph(gpt2(), opts());
    EXPECT_EQ(decode.numKernelLaunches(),
              prefill.numKernelLaunches());
    EXPECT_LT(decode.totalFlops(), prefill.totalFlops() / 50.0);
}

TEST(Builder, DecodeStepScalesWithContext)
{
    OperatorGraph short_ctx =
        buildDecodeStepGraph(gpt2(), opts(), 128);
    OperatorGraph long_ctx =
        buildDecodeStepGraph(gpt2(), opts(), 4096);
    EXPECT_GT(long_ctx.totalFlops(), short_ctx.totalFlops());
    EXPECT_THROW(buildDecodeStepGraph(gpt2(), opts(), 0), FatalError);
}

// ----------------------------------------------------------- compile times

TEST(CompileTime, OrderingMatchesTableI)
{
    OperatorGraph eager = buildPrefillGraph(gemma2b(), opts(1, 1024));
    double t_eager = compileTimeNs(ExecMode::Eager, eager, 1.0);
    double t_def = compileTimeNs(ExecMode::CompileDefault, eager, 1.0);
    double t_ro =
        compileTimeNs(ExecMode::CompileReduceOverhead, eager, 1.0);
    double t_ma = compileTimeNs(ExecMode::CompileMaxAutotune, eager, 1.0);
    EXPECT_LT(t_eager, t_def);
    EXPECT_LT(t_def, t_ro);
    EXPECT_LT(t_ro, t_ma);
}

TEST(CompileTime, TableIValuesWithinBand)
{
    // Paper Table I: 0.40644 / 6.2844 / 12.7469 / 387.3 seconds.
    OperatorGraph eager = buildPrefillGraph(gemma2b(), opts(1, 1024));
    EXPECT_NEAR(compileTimeNs(ExecMode::Eager, eager, 1.0) / 1e9,
                0.40644, 0.40644 * 0.15);
    EXPECT_NEAR(compileTimeNs(ExecMode::CompileDefault, eager, 1.0) / 1e9,
                6.2844, 6.2844 * 0.15);
    EXPECT_NEAR(compileTimeNs(ExecMode::CompileReduceOverhead, eager,
                              1.0) / 1e9,
                12.7469, 12.7469 * 0.15);
    EXPECT_NEAR(compileTimeNs(ExecMode::CompileMaxAutotune, eager,
                              1.0) / 1e9,
                387.3, 387.3 * 0.15);
}

TEST(CompileTime, SlowerCpuCompilesSlower)
{
    OperatorGraph eager = buildPrefillGraph(gpt2(), opts());
    double fast = compileTimeNs(ExecMode::CompileDefault, eager, 1.0);
    double slow = compileTimeNs(ExecMode::CompileDefault, eager, 0.5);
    EXPECT_NEAR(slow / fast, 2.0, 1e-9);
    EXPECT_THROW(compileTimeNs(ExecMode::Eager, eager, 0.0), FatalError);
}

TEST(CompileTime, UniqueGemmShapesCounted)
{
    OperatorGraph eager = buildPrefillGraph(gpt2(), opts());
    std::size_t shapes = uniqueGemmShapes(eager);
    // GPT2: c_attn, c_proj, c_fc, mlp c_proj, lm_head + 2 bmm shapes.
    EXPECT_GE(shapes, 5u);
    EXPECT_LE(shapes, 9u);
}

// -------------------------------------------------- parameterized model sweep

class AllModelsBuild : public ::testing::TestWithParam<std::string>
{};

TEST_P(AllModelsBuild, EagerGraphWellFormed)
{
    ModelConfig model = modelByName(GetParam());
    OperatorGraph graph = buildPrefillGraph(model, opts(2, 256));
    EXPECT_GT(graph.numKernelLaunches(), 100u);
    EXPECT_GT(graph.totalFlops(), 0.0);
    EXPECT_GT(graph.totalBytes(), 0.0);
    EXPECT_GT(graph.totalCpuNs(), 0.0);
    EXPECT_EQ(graph.kernelSequence().size(), graph.numKernelLaunches());
}

TEST_P(AllModelsBuild, AllModesBuild)
{
    ModelConfig model = modelByName(GetParam());
    for (ExecMode mode : allExecModes()) {
        OperatorGraph graph =
            buildPrefillGraph(model, opts(1, 128, mode));
        EXPECT_GE(graph.numKernelLaunches(), 1u)
            << execModeName(mode);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, AllModelsBuild,
    ::testing::Values("Bert-Base-Uncased", "XLM-Roberta-Base", "GPT2",
                      "Llama-3.2-1B", "Gemma-2B", "Llama-2-7B",
                      "Mistral-7B", "Qwen-7B", "Falcon-7B", "Phi-2",
                      "TinyLlama-1.1B", "Qwen2-1.5B"),
    [](const auto &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace skipsim::workload
